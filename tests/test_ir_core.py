"""IR lowering, mem2reg, CFG analyses, verifier, and cloning."""

import pytest

from repro.errors import IRError
from repro.glsl import parse_shader, preprocess
from repro.ir import lower_shader, promote_to_ssa, verify_function
from repro.ir.cfg import (
    compute_dominators, compute_postdominators, dominates, find_natural_loops,
    reverse_postorder,
)
from repro.ir.clone import clone_function
from repro.ir.instructions import (
    Br, Construct, ExtractElem, Phi, Ret, Sample, StoreOutput,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Constant


def lower(source, ssa=True):
    module = lower_shader(parse_shader(preprocess(source).text))
    if ssa:
        promote_to_ssa(module.function)
    verify_function(module.function)
    return module


def ops(module):
    return [i.opcode for i in module.function.instructions()]


# ---------------------------------------------------------------------------
# Lowering artifacts
# ---------------------------------------------------------------------------


def test_matrix_multiply_scalarized():
    module = lower("""
uniform mat4 m;
out vec4 frag;
void main() { frag = m * vec4(1.0, 2.0, 3.0, 4.0); }
""")
    assert not any(o == "call" for o in ops(module))
    # 4 column loads, 4 splats/muls, 3 adds: well over the 2 source lines.
    assert ops(module).count("bin") >= 7


def test_scalar_vector_multiply_splat_artifact():
    module = lower("""
uniform float f;
out vec4 frag;
void main() { frag = vec4(1.0) * f; }
""")
    constructs = [i for i in module.function.instructions()
                  if isinstance(i, Construct)]
    assert constructs, "scalar should be splatted into a vector (artifact)"


def test_output_initialized_and_stored():
    module = lower("out vec4 frag;\nvoid main() { }")
    stores = [i for i in module.function.instructions()
              if isinstance(i, StoreOutput)]
    assert len(stores) == 1
    assert stores[0].var == "frag"


def test_texture_lowered_to_sample():
    module = lower("""
uniform sampler2D t;
in vec2 uv;
out vec4 frag;
void main() { frag = texture(t, uv); }
""")
    samples = [i for i in module.function.instructions()
               if isinstance(i, Sample)]
    assert len(samples) == 1
    assert samples[0].sampler == "t"
    assert samples[0].sampler_kind == "sampler2D"


def test_const_array_becomes_const_slot():
    module = lower("""
out vec4 frag;
void main() {
    const float w[2] = float[](0.25, 0.75);
    frag = vec4(w[0] + w[1]);
}
""")
    const_slots = [s for s in module.function.slots if s.const_init]
    assert len(const_slots) == 1
    assert [c.value for c in const_slots[0].const_init] == [0.25, 0.75]


def test_function_inlining_no_calls_left():
    module = lower("""
out vec4 frag;
float dbl(float x) { return x * 2.0; }
void main() { frag = vec4(dbl(dbl(1.5))); }
""")
    from repro.ir.instructions import Call
    user_calls = [i for i in module.function.instructions()
                  if isinstance(i, Call) and i.callee == "dbl"]
    assert not user_calls


def test_inlined_early_return():
    module = lower("""
out vec4 frag;
uniform float u;
float pick(float x) {
    if (x > 0.5) { return 1.0; }
    return 0.0;
}
void main() { frag = vec4(pick(u)); }
""")
    verify_function(module.function)


def test_out_parameter_copy_back():
    module = lower("""
out vec4 frag;
void fill(out float r) { r = 7.0; }
void main() { float v = 0.0; fill(v); frag = vec4(v); }
""")
    verify_function(module.function)


def test_unused_function_not_lowered():
    module = lower("""
out vec4 frag;
float unused(float x) { return x + 1.0; }
void main() { frag = vec4(0.0); }
""")
    assert len(list(module.function.instructions())) < 8


def test_discard_is_terminator():
    module = lower("""
out vec4 frag;
in vec2 uv;
void main() {
    if (uv.x > 0.5) { discard; }
    frag = vec4(1.0);
}
""")
    from repro.ir.instructions import Discard
    discards = [i for i in module.function.instructions()
                if isinstance(i, Discard)]
    assert len(discards) == 1
    assert discards[0] is discards[0].block.terminator


# ---------------------------------------------------------------------------
# mem2reg
# ---------------------------------------------------------------------------


def test_mem2reg_promotes_all_scalar_slots():
    module = lower("""
out vec4 frag;
in vec2 uv;
void main() {
    float a = uv.x;
    if (a > 0.5) { a = a * 2.0; }
    frag = vec4(a);
}
""", ssa=False)
    promoted = promote_to_ssa(module.function)
    assert promoted > 0
    assert all(s.is_array for s in module.function.slots)
    from repro.ir.instructions import LoadVar, StoreVar
    assert not any(isinstance(i, (LoadVar, StoreVar))
                   for i in module.function.instructions())


def test_mem2reg_places_phi_at_merge():
    module = lower("""
out vec4 frag;
in vec2 uv;
void main() {
    float a = 0.0;
    if (uv.x > 0.5) { a = 1.0; } else { a = 2.0; }
    frag = vec4(a);
}
""")
    phis = [i for i in module.function.instructions() if isinstance(i, Phi)]
    assert len(phis) == 1
    assert len(phis[0].incoming) == 2


def test_mem2reg_loop_phi():
    module = lower("""
out vec4 frag;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 4; i++) { acc += 1.0; }
    frag = vec4(acc);
}
""")
    phis = [i for i in module.function.instructions() if isinstance(i, Phi)]
    assert len(phis) == 2  # acc and i


# ---------------------------------------------------------------------------
# CFG analyses
# ---------------------------------------------------------------------------


def _diamond():
    fn = Function("f")
    entry = fn.add_block(BasicBlock("entry"))
    then = fn.add_block(BasicBlock("then"))
    other = fn.add_block(BasicBlock("else"))
    merge = fn.add_block(BasicBlock("merge"))
    from repro.ir.instructions import CondBr
    entry.append(CondBr(Constant.bool_(True), then, other))
    then.append(Br(merge))
    other.append(Br(merge))
    merge.append(Ret())
    return fn, entry, then, other, merge


def test_dominators_of_diamond():
    fn, entry, then, other, merge = _diamond()
    idom = compute_dominators(fn)
    assert idom[entry] is None
    assert idom[then] is entry
    assert idom[other] is entry
    assert idom[merge] is entry
    assert dominates(idom, entry, merge)
    assert not dominates(idom, then, merge)


def test_postdominators_of_diamond():
    fn, entry, then, other, merge = _diamond()
    ipdom = compute_postdominators(fn)
    assert ipdom[entry] is merge
    assert ipdom[then] is merge
    assert ipdom[merge] is None


def test_reverse_postorder_starts_at_entry():
    fn, entry, *_ = _diamond()
    order = reverse_postorder(fn)
    assert order[0] is entry
    assert len(order) == 4


def test_natural_loop_detection():
    module = lower("""
out vec4 frag;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 4; i++) { acc += 1.0; }
    frag = vec4(acc);
}
""")
    loops = find_natural_loops(module.function)
    assert len(loops) == 1
    loop = loops[0]
    assert len(loop.latches) == 1
    assert loop.header in loop.blocks


def test_nested_loops_detected():
    module = lower("""
out vec4 frag;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 2; i++) {
        for (int j = 0; j < 2; j++) { acc += 1.0; }
    }
    frag = vec4(acc);
}
""")
    assert len(find_natural_loops(module.function)) == 2


# ---------------------------------------------------------------------------
# Verifier
# ---------------------------------------------------------------------------


def test_verifier_rejects_missing_terminator():
    fn = Function("f")
    fn.add_block(BasicBlock("entry"))
    with pytest.raises(IRError):
        verify_function(fn)


def test_verifier_rejects_use_before_def():
    fn = Function("f")
    block = fn.add_block(BasicBlock("entry"))
    from repro.ir.instructions import BinOp
    a = BinOp("add", Constant.float_(1.0), Constant.float_(2.0))
    b = BinOp("add", a, Constant.float_(1.0))
    block.append(b)  # b uses a, but a is appended after
    block.append(a)
    block.append(Ret())
    with pytest.raises(IRError):
        verify_function(fn)


def test_verifier_rejects_bad_phi_incoming():
    fn, entry, then, other, merge = _diamond()
    phi = Phi(Constant.float_(0.0).ty)
    phi.add_incoming(then, Constant.float_(1.0))  # missing the else edge
    merge.insert_at_front(phi)
    with pytest.raises(IRError):
        verify_function(fn)


def test_verifier_rejects_type_mismatch():
    fn = Function("f")
    block = fn.add_block(BasicBlock("entry"))
    from repro.ir.instructions import BinOp
    bad = BinOp("add", Constant.float_(1.0), Constant.int_(1))
    block.append(bad)
    block.append(Ret())
    with pytest.raises(IRError):
        verify_function(fn)


# ---------------------------------------------------------------------------
# Cloning
# ---------------------------------------------------------------------------


def test_clone_function_is_deep_and_verifies():
    module = lower("""
uniform sampler2D t;
in vec2 uv;
out vec4 frag;
void main() {
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 3; i++) {
        if (uv.x > 0.5) { acc += texture(t, uv); }
    }
    frag = acc;
}
""")
    clone = clone_function(module.function)
    verify_function(clone)
    originals = set(map(id, module.function.instructions()))
    for instr in clone.instructions():
        assert id(instr) not in originals
    assert len(clone.blocks) == len(module.function.blocks)
