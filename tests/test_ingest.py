"""Ingest pipeline tests: wild shaders end-to-end into the study corpus."""

import pytest

from repro.corpus.generator import (CorpusSpec, IMPORTED_FAMILY,
                                    default_corpus)
from repro.errors import ReproError
from repro.glsl.ingest import (SHADER_SUFFIXES, ingest_directory, ingest_file,
                               ingest_source, iter_shader_files)
from repro.harness.study import StudyConfig, run_study

WILD_DIR = "examples/wild"


def test_wild_directory_ingests_at_least_five_shaders():
    results = ingest_directory(WILD_DIR)
    assert len(results) >= 5
    for result in results:
        assert result.canonical.strip()
        assert result.shader.function("main") is not None


def test_iter_shader_files_is_sorted_and_filtered():
    paths = iter_shader_files(WILD_DIR)
    assert paths == sorted(paths)
    assert all(p.suffix in SHADER_SUFFIXES for p in paths)
    assert len(paths) >= 5


def test_ingest_file_names_after_stem():
    path = iter_shader_files(WILD_DIR)[0]
    result = ingest_file(path)
    assert result.name == path.stem
    assert result.loc_before > 0
    assert result.loc_after > 0


def test_ingested_canonical_is_core_subset():
    for result in ingest_directory(WILD_DIR):
        text = result.canonical
        for construct in ("struct", "switch", "do {", "#define", "#if"):
            assert construct not in text, (result.name, construct)


def test_ingest_is_deterministic():
    first = [r.canonical for r in ingest_directory(WILD_DIR)]
    second = [r.canonical for r in ingest_directory(WILD_DIR)]
    assert first == second


def test_ingest_source_defines_override():
    source = ("#ifdef FAST\nout float r;\nvoid main() { r = 1.0; }\n"
              "#else\n#error need FAST\n#endif\n")
    result = ingest_source(source, name="gated", defines={"FAST": "1"})
    assert "r = 1.0;" in result.canonical
    with pytest.raises(ReproError):
        ingest_source(source, name="gated")


# ---------------------------------------------------------------------------
# corpus integration
# ---------------------------------------------------------------------------


def test_corpus_merges_imported_family():
    cases = default_corpus(import_dir=WILD_DIR)
    imported = [c for c in cases if c.family == IMPORTED_FAMILY]
    assert len(imported) >= 5
    assert [c.name for c in imported] == sorted(c.name for c in imported)
    # Families arrive in sorted order with 'imported' slotted alphabetically.
    families = [c.family for c in cases]
    assert families == sorted(families)


def test_corpus_spec_round_trips_import_dir():
    spec = CorpusSpec(import_dir=WILD_DIR, max_shaders=20)
    again = CorpusSpec.from_dict(spec.to_dict())
    assert again.import_dir == WILD_DIR
    assert "--import-dir" in spec.to_cli_args()


def test_corpus_spec_digest_stable_without_import_dir():
    # Omitting import_dir must serialize exactly as before the field
    # existed, so historical job content digests stay valid.
    assert "import_dir" not in CorpusSpec().to_dict()


def test_imported_study_is_deterministic_across_jobs():
    cases = [c for c in default_corpus(import_dir=WILD_DIR)
             if c.family == IMPORTED_FAMILY][:3]
    serial = run_study(cases, StudyConfig(max_workers=1))
    parallel = run_study(cases, StudyConfig(max_workers=2))
    assert serial.to_json() == parallel.to_json()
