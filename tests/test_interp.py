"""Reference interpreter tests: arithmetic, builtins, control flow, textures."""

import math

import pytest

from helpers import run_source
from repro.ir.textures import ProceduralTexture


def scalar_expr(expr: str, prelude: str = "", **env):
    out = run_source(
        f"{prelude}\nout vec4 frag;\nvoid main() {{ frag = vec4({expr}); }}",
        **env)
    return out["frag"][0]


def test_basic_arithmetic():
    assert scalar_expr("1.0 + 2.0 * 3.0") == pytest.approx(7.0)
    assert scalar_expr("(1.0 + 2.0) * 3.0") == pytest.approx(9.0)
    assert scalar_expr("7.0 / 2.0") == pytest.approx(3.5)
    assert scalar_expr("-(3.0)") == pytest.approx(-3.0)


def test_integer_arithmetic_and_modulo():
    assert scalar_expr("float(7 % 3)") == pytest.approx(1.0)
    assert scalar_expr("float(7 / 2)") == pytest.approx(3.0)  # int division


def test_division_by_zero_guarded():
    value = scalar_expr("1.0 / 0.0")
    assert value > 1e20  # deterministic large value, no crash


@pytest.mark.parametrize("expr,expected", [
    ("sin(0.0)", 0.0),
    ("cos(0.0)", 1.0),
    ("sqrt(9.0)", 3.0),
    ("inversesqrt(4.0)", 0.5),
    ("exp2(3.0)", 8.0),
    ("log2(8.0)", 3.0),
    ("abs(-2.5)", 2.5),
    ("sign(-3.0)", -1.0),
    ("floor(1.7)", 1.0),
    ("ceil(1.2)", 2.0),
    ("fract(1.75)", 0.75),
    ("pow(2.0, 10.0)", 1024.0),
    ("mod(5.5, 2.0)", 1.5),
    ("min(1.0, 2.0)", 1.0),
    ("max(1.0, 2.0)", 2.0),
    ("clamp(5.0, 0.0, 1.0)", 1.0),
    ("mix(0.0, 10.0, 0.25)", 2.5),
    ("step(0.5, 0.7)", 1.0),
    ("step(0.5, 0.3)", 0.0),
    ("smoothstep(0.0, 1.0, 0.5)", 0.5),
    ("radians(180.0)", math.pi),
])
def test_scalar_builtins(expr, expected):
    assert scalar_expr(expr) == pytest.approx(expected, rel=1e-9)


def test_vector_builtins():
    assert scalar_expr("length(vec3(3.0, 4.0, 0.0))") == pytest.approx(5.0)
    assert scalar_expr("dot(vec3(1.0, 2.0, 3.0), vec3(4.0, 5.0, 6.0))") == \
        pytest.approx(32.0)
    assert scalar_expr(
        "distance(vec2(0.0), vec2(3.0, 4.0))") == pytest.approx(5.0)


def test_normalize_and_cross():
    out = run_source("""
out vec4 frag;
void main() {
    vec3 n = normalize(vec3(0.0, 0.0, 5.0));
    vec3 c = cross(vec3(1.0, 0.0, 0.0), vec3(0.0, 1.0, 0.0));
    frag = vec4(n.z, c.x, c.y, c.z);
}
""")
    assert out["frag"] == pytest.approx((1.0, 0.0, 0.0, 1.0))


def test_reflect():
    out = run_source("""
out vec4 frag;
void main() {
    vec3 r = reflect(vec3(1.0, -1.0, 0.0), vec3(0.0, 1.0, 0.0));
    frag = vec4(r, 0.0);
}
""")
    assert out["frag"][:2] == pytest.approx((1.0, 1.0))


def test_swizzle_read_write():
    out = run_source("""
out vec4 frag;
void main() {
    vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
    vec2 s = v.wy;
    v.xz = s;
    frag = v;
}
""")
    assert out["frag"] == pytest.approx((4.0, 2.0, 2.0, 4.0))


def test_if_else_execution():
    out = run_source("""
out vec4 frag;
uniform float u;
void main() {
    if (u > 0.25) { frag = vec4(1.0); } else { frag = vec4(2.0); }
}
""", uniforms={"u": 0.5})
    assert out["frag"][0] == 1.0
    out = run_source("""
out vec4 frag;
uniform float u;
void main() {
    if (u > 0.25) { frag = vec4(1.0); } else { frag = vec4(2.0); }
}
""", uniforms={"u": 0.0})
    assert out["frag"][0] == 2.0


def test_loop_accumulation():
    out = run_source("""
out vec4 frag;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 5; i++) { acc += float(i); }
    frag = vec4(acc);
}
""")
    assert out["frag"][0] == pytest.approx(10.0)


def test_loop_break_continue():
    out = run_source("""
out vec4 frag;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 10; i++) {
        if (i == 2) { continue; }
        if (i == 5) { break; }
        acc += float(i);
    }
    frag = vec4(acc);
}
""")
    assert out["frag"][0] == pytest.approx(0.0 + 1.0 + 3.0 + 4.0)


def test_nested_loops():
    out = run_source("""
out vec4 frag;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 3; j++) { acc += 1.0; }
    }
    frag = vec4(acc);
}
""")
    assert out["frag"][0] == pytest.approx(9.0)


def test_while_loop():
    out = run_source("""
out vec4 frag;
void main() {
    float x = 1.0;
    int i = 0;
    while (i < 4) { x = x * 2.0; i++; }
    frag = vec4(x);
}
""")
    assert out["frag"][0] == pytest.approx(16.0)


def test_discard_returns_empty():
    out = run_source("""
out vec4 frag;
void main() { discard; }
""")
    assert out == {}


def test_early_return():
    out = run_source("""
out vec4 frag;
uniform float u;
void main() {
    frag = vec4(1.0);
    if (u > 0.25) { return; }
    frag = vec4(2.0);
}
""", uniforms={"u": 1.0})
    assert out["frag"][0] == 1.0


def test_ternary_select():
    assert scalar_expr("true ? 3.0 : 4.0") == 3.0
    assert scalar_expr("1.0 > 2.0 ? 3.0 : 4.0") == 4.0


def test_uniform_defaults_when_missing():
    # Paper: uniforms default to 0.5 when unbound.
    assert scalar_expr("u", prelude="uniform float u;") == 0.5


def test_uniform_array_indexing():
    out = run_source("""
uniform vec3 ls[2];
out vec4 frag;
void main() { frag = vec4(ls[1], 0.0); }
""", uniforms={"ls": [(1.0, 2.0, 3.0), (4.0, 5.0, 6.0)]})
    assert out["frag"][:3] == pytest.approx((4.0, 5.0, 6.0))


def test_texture_sampling_deterministic():
    src = """
uniform sampler2D t;
in vec2 uv;
out vec4 frag;
void main() { frag = texture(t, uv); }
"""
    a = run_source(src, inputs={"uv": (0.25, 0.5)})
    b = run_source(src, inputs={"uv": (0.25, 0.5)})
    assert a == b
    c = run_source(src, inputs={"uv": (0.75, 0.1)})
    assert a != c


def test_texture_alpha_is_opaque():
    out = run_source("""
uniform sampler2D t;
out vec4 frag;
void main() { frag = texture(t, vec2(0.3)); }
""")
    assert out["frag"][3] == 1.0


def test_procedural_texture_wraps():
    tex = ProceduralTexture(seed=0)
    assert tex.sample((0.25, 0.5)) == pytest.approx(tex.sample((1.25, -0.5)))


def test_matrix_uniform_multiply():
    identity = ((1.0, 0.0, 0.0, 0.0), (0.0, 1.0, 0.0, 0.0),
                (0.0, 0.0, 1.0, 0.0), (0.0, 0.0, 0.0, 1.0))
    out = run_source("""
uniform mat4 m;
out vec4 frag;
void main() { frag = m * vec4(1.0, 2.0, 3.0, 4.0); }
""", uniforms={"m": identity})
    assert out["frag"] == pytest.approx((1.0, 2.0, 3.0, 4.0))


def test_mat3_constructor_and_multiply():
    out = run_source("""
out vec4 frag;
void main() {
    mat3 m = mat3(vec3(2.0, 0.0, 0.0), vec3(0.0, 3.0, 0.0), vec3(0.0, 0.0, 4.0));
    vec3 v = m * vec3(1.0, 1.0, 1.0);
    frag = vec4(v, 0.0);
}
""")
    assert out["frag"][:3] == pytest.approx((2.0, 3.0, 4.0))
