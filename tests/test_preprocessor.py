"""Preprocessor unit tests."""

import pytest

from repro.errors import PreprocessorError
from repro.glsl.preprocessor import preprocess


def text(source, defines=None):
    return preprocess(source, defines).text


def test_passthrough():
    assert text("float x;\n") == "float x;\n"


def test_version_extracted():
    result = preprocess("#version 450\nfloat x;\n")
    assert result.version == "450"
    assert "version" not in result.text


def test_object_macro_expansion():
    assert "float x = 3;" in text("#define N 3\nfloat x = N;\n")


def test_macro_word_boundary():
    out = text("#define N 3\nfloat NN = N;\n")
    assert "NN = 3" in out


def test_nested_macro_expansion():
    out = text("#define A B\n#define B 7\nint x = A;\n")
    assert "x = 7" in out


def test_recursive_macro_raises():
    with pytest.raises(PreprocessorError):
        text("#define A A\nint x = A;\n")


def test_function_macro():
    out = text("#define SQ(x) ((x) * (x))\nfloat y = SQ(2.0);\n")
    assert "((2.0) * (2.0))" in out


def test_function_macro_two_args():
    out = text("#define ADD(a, b) (a + b)\nfloat y = ADD(1.0, 2.0);\n")
    assert "(1.0 + 2.0)" in out


def test_function_macro_nested_parens_in_arg():
    out = text("#define ID(x) x\nfloat y = ID(f(1, 2));\n")
    assert "f(1, 2)" in out


def test_function_macro_wrong_arity_raises():
    with pytest.raises(PreprocessorError):
        text("#define ADD(a, b) (a + b)\nfloat y = ADD(1.0);\n")


def test_ifdef_taken_and_skipped():
    src = "#ifdef FOO\nint a;\n#endif\nint b;\n"
    assert "int a;" not in text(src)
    assert "int a;" in text(src, {"FOO": ""})


def test_ifndef():
    src = "#ifndef FOO\nint a;\n#endif\n"
    assert "int a;" in text(src)
    assert "int a;" not in text(src, {"FOO": ""})


def test_else_branch():
    src = "#ifdef FOO\nint a;\n#else\nint b;\n#endif\n"
    assert "int b;" in text(src)
    assert "int a;" in text(src, {"FOO": ""})
    assert "int b;" not in text(src, {"FOO": ""})


def test_if_with_comparison():
    src = "#define N 5\n#if N > 3\nint big;\n#endif\n"
    assert "int big;" in text(src)
    src2 = "#define N 2\n#if N > 3\nint big;\n#endif\n"
    assert "int big;" not in text(src2)


def test_elif_chain():
    src = ("#define N 5\n#if N == 3\nint three;\n#elif N == 5\nint five;\n"
           "#else\nint other;\n#endif\n")
    out = text(src)
    assert "int five;" in out
    assert "int three;" not in out
    assert "int other;" not in out


def test_defined_operator():
    src = "#if defined(FOO) && !defined(BAR)\nint x;\n#endif\n"
    assert "int x;" in text(src, {"FOO": ""})
    assert "int x;" not in text(src, {"FOO": "", "BAR": ""})


def test_nested_conditionals():
    src = ("#ifdef A\n#ifdef B\nint ab;\n#endif\nint a;\n#endif\n")
    out = text(src, {"A": "", "B": ""})
    assert "int ab;" in out and "int a;" in out
    out = text(src, {"A": ""})
    assert "int ab;" not in out and "int a;" in out


def test_undef():
    src = "#define X 1\n#undef X\n#ifdef X\nint a;\n#endif\n"
    assert "int a;" not in text(src)


def test_unterminated_if_raises():
    with pytest.raises(PreprocessorError):
        text("#ifdef FOO\nint a;\n")


def test_else_without_if_raises():
    with pytest.raises(PreprocessorError):
        text("#else\n")


def test_line_continuation_in_define():
    src = "#define LONG 1 + \\\n 2\nint x = LONG;\n"
    assert " ".join(text(src).split()) == "int x = 1 + 2;"


def test_block_comments_removed_before_directives():
    src = "/* #define X 1 */\n#ifdef X\nint a;\n#endif\n"
    assert "int a;" not in text(src)


def test_undefined_identifier_in_if_is_zero():
    assert "int a;" not in text("#if UNDEFINED_THING\nint a;\n#endif\n")


def test_extension_recorded():
    result = preprocess("#extension GL_EXT_foo : enable\n")
    assert result.extensions == ["GL_EXT_foo : enable"]
