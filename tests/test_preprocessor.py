"""Preprocessor unit tests."""

import pytest

from repro.errors import PreprocessorError
from repro.glsl.preprocessor import preprocess


def text(source, defines=None):
    return preprocess(source, defines).text


def test_passthrough():
    assert text("float x;\n") == "float x;\n"


def test_version_extracted():
    result = preprocess("#version 450\nfloat x;\n")
    assert result.version == "450"
    assert "version" not in result.text


def test_object_macro_expansion():
    assert "float x = 3;" in text("#define N 3\nfloat x = N;\n")


def test_macro_word_boundary():
    out = text("#define N 3\nfloat NN = N;\n")
    assert "NN = 3" in out


def test_nested_macro_expansion():
    out = text("#define A B\n#define B 7\nint x = A;\n")
    assert "x = 7" in out


def test_recursive_macro_raises():
    with pytest.raises(PreprocessorError):
        text("#define A A\nint x = A;\n")


def test_function_macro():
    out = text("#define SQ(x) ((x) * (x))\nfloat y = SQ(2.0);\n")
    assert "((2.0) * (2.0))" in out


def test_function_macro_two_args():
    out = text("#define ADD(a, b) (a + b)\nfloat y = ADD(1.0, 2.0);\n")
    assert "(1.0 + 2.0)" in out


def test_function_macro_nested_parens_in_arg():
    out = text("#define ID(x) x\nfloat y = ID(f(1, 2));\n")
    assert "f(1, 2)" in out


def test_function_macro_wrong_arity_raises():
    with pytest.raises(PreprocessorError):
        text("#define ADD(a, b) (a + b)\nfloat y = ADD(1.0);\n")


def test_ifdef_taken_and_skipped():
    src = "#ifdef FOO\nint a;\n#endif\nint b;\n"
    assert "int a;" not in text(src)
    assert "int a;" in text(src, {"FOO": ""})


def test_ifndef():
    src = "#ifndef FOO\nint a;\n#endif\n"
    assert "int a;" in text(src)
    assert "int a;" not in text(src, {"FOO": ""})


def test_else_branch():
    src = "#ifdef FOO\nint a;\n#else\nint b;\n#endif\n"
    assert "int b;" in text(src)
    assert "int a;" in text(src, {"FOO": ""})
    assert "int b;" not in text(src, {"FOO": ""})


def test_if_with_comparison():
    src = "#define N 5\n#if N > 3\nint big;\n#endif\n"
    assert "int big;" in text(src)
    src2 = "#define N 2\n#if N > 3\nint big;\n#endif\n"
    assert "int big;" not in text(src2)


def test_elif_chain():
    src = ("#define N 5\n#if N == 3\nint three;\n#elif N == 5\nint five;\n"
           "#else\nint other;\n#endif\n")
    out = text(src)
    assert "int five;" in out
    assert "int three;" not in out
    assert "int other;" not in out


def test_defined_operator():
    src = "#if defined(FOO) && !defined(BAR)\nint x;\n#endif\n"
    assert "int x;" in text(src, {"FOO": ""})
    assert "int x;" not in text(src, {"FOO": "", "BAR": ""})


def test_nested_conditionals():
    src = ("#ifdef A\n#ifdef B\nint ab;\n#endif\nint a;\n#endif\n")
    out = text(src, {"A": "", "B": ""})
    assert "int ab;" in out and "int a;" in out
    out = text(src, {"A": ""})
    assert "int ab;" not in out and "int a;" in out


def test_undef():
    src = "#define X 1\n#undef X\n#ifdef X\nint a;\n#endif\n"
    assert "int a;" not in text(src)


def test_unterminated_if_raises():
    with pytest.raises(PreprocessorError):
        text("#ifdef FOO\nint a;\n")


def test_else_without_if_raises():
    with pytest.raises(PreprocessorError):
        text("#else\n")


def test_line_continuation_in_define():
    src = "#define LONG 1 + \\\n 2\nint x = LONG;\n"
    assert " ".join(text(src).split()) == "int x = 1 + 2;"


def test_block_comments_removed_before_directives():
    src = "/* #define X 1 */\n#ifdef X\nint a;\n#endif\n"
    assert "int a;" not in text(src)


def test_undefined_identifier_in_if_is_zero():
    assert "int a;" not in text("#if UNDEFINED_THING\nint a;\n#endif\n")


def test_extension_recorded():
    result = preprocess("#extension GL_EXT_foo : enable\n")
    assert result.extensions == ["GL_EXT_foo : enable"]


# ---------------------------------------------------------------------------
# Inactive-region semantics: conditions inside skipped groups must not be
# evaluated (C preprocessor rule) — previously `#if garbage(` inside an
# inactive `#if 0` block raised instead of being skipped.
# ---------------------------------------------------------------------------


def test_inactive_if_condition_not_evaluated():
    src = "#if 0\n#if WEIRD_MACRO(1,\nint a;\n#endif\n#endif\nint b;\n"
    out = text(src)
    assert "int a;" not in out
    assert "int b;" in out


def test_inactive_elif_condition_not_evaluated():
    src = "#if 1\nint a;\n#elif )bad syntax(\nint b;\n#endif\n"
    out = text(src)
    assert "int a;" in out
    assert "int b;" not in out


def test_elif_after_taken_branch_not_evaluated():
    # The first branch was taken, so the #elif condition is dead and must
    # not be evaluated even if it would divide by zero.
    src = "#define N 0\n#if 1\nint a;\n#elif 1 / N\nint b;\n#endif\n"
    out = text(src)
    assert "int a;" in out
    assert "int b;" not in out


def test_nested_inactive_ifdef_garbage_directive_skipped():
    src = "#ifdef NOPE\n#if\n#endif\n#endif\nint x;\n"
    assert "int x;" in text(src)


# ---------------------------------------------------------------------------
# Condition evaluation: hex/octal literals, C integer division, unary ops.
# Previously hex literals were mangled (0x10 -> 00) and division used
# Python float semantics (#if 1/2 was true).
# ---------------------------------------------------------------------------


def test_if_hex_literal():
    assert "int a;" in text("#if 0x10 == 16\nint a;\n#endif\n")


def test_if_hex_literal_with_suffix():
    assert "int a;" in text("#if 0xFFu > 0xFE\nint a;\n#endif\n")


def test_if_octal_literal():
    assert "int a;" in text("#if 010 == 8\nint a;\n#endif\n")


def test_if_integer_division_truncates():
    # 1/2 == 0 in C; Python float division would make this branch live.
    assert "int a;" not in text("#if 1 / 2\nint a;\n#endif\n")


def test_if_division_truncates_toward_zero():
    assert "int a;" in text("#if -7 / 2 == -3\nint a;\n#endif\n")


def test_if_modulo_c_semantics():
    assert "int a;" in text("#if -7 % 2 == -1\nint a;\n#endif\n")


def test_if_unary_not():
    assert "int a;" in text("#if !0\nint a;\n#endif\n")
    assert "int b;" not in text("#if !5\nint b;\n#endif\n")


def test_if_unary_bitwise_not():
    assert "int a;" in text("#if ~0 == -1\nint a;\n#endif\n")


def test_if_unary_minus():
    assert "int a;" in text("#if -(1) < 0\nint a;\n#endif\n")


def test_if_shift_and_bitwise_ops():
    assert "int a;" in text("#if (1 << 4) == 0x10\nint a;\n#endif\n")
    assert "int b;" in text("#if (6 & 3) == 2 && (6 | 3) == 7\nint b;\n#endif\n")


def test_if_short_circuit_guards_division():
    # defined(X) && ... must not evaluate the division when X is undefined.
    src = "#if defined(X) && 10 / X > 1\nint a;\n#endif\nint b;\n"
    out = text(src)
    assert "int a;" not in out
    assert "int b;" in out


def test_if_ternary_condition():
    assert "int a;" in text("#if 1 ? 2 : 0\nint a;\n#endif\n")


def test_if_active_division_by_zero_raises():
    with pytest.raises(PreprocessorError):
        text("#if 1 / 0\nint a;\n#endif\n")


def test_if_float_literal_rejected():
    with pytest.raises(PreprocessorError):
        text("#if 1.5\nint a;\n#endif\n")


# ---------------------------------------------------------------------------
# Comment stripping: accurate positions and preserved newlines.
# Previously "unterminated block comment" carried no line number.
# ---------------------------------------------------------------------------


def test_unterminated_block_comment_reports_line():
    src = "float a;\nfloat b;\n/* never closed\nfloat c;\n"
    with pytest.raises(PreprocessorError) as excinfo:
        text(src)
    assert "line 3" in str(excinfo.value)
    assert excinfo.value.line == 3


def test_block_comment_preserves_newlines():
    # A multi-line comment must not shift following code onto earlier
    # lines, or downstream parse errors would point at the wrong place.
    src = "float a;\n/* one\ntwo */\nfloat b;\n"
    out = text(src)
    assert out.splitlines().index("float b;") == 3


def test_directive_lines_preserved_as_blanks():
    # Directive and inactive lines become empty lines so that lexer/parser
    # diagnostics reference original file line numbers.
    src = "#define N 3\n#if 0\nint dead;\n#endif\nfloat x = N;\n"
    lines = text(src).splitlines()
    assert lines[4] == "float x = 3;"


def test_error_directive_raises_when_active():
    with pytest.raises(PreprocessorError) as excinfo:
        text("#error custom message\n")
    assert "custom message" in str(excinfo.value)


def test_error_directive_skipped_when_inactive():
    assert "int x;" in text("#if 0\n#error nope\n#endif\nint x;\n")
