"""Differential testing: batched measurement vs the scalar reference.

The lane-batched interpreter and the seed-batched measurement path
(``REPRO_MEASURE=batched``, the default) must be pure optimizations:
bit-identical per-lane interpreter outputs and stats, bit-identical
:class:`ExecutionReport` timing samples for every measurement seed, and
byte-identical :class:`StudyResult` JSON versus the scalar
one-instruction-at-a-time walk, under every ``REPRO_MEASURE`` mode and
``max_workers`` setting — for every pass pipeline and for a seeded slice
of the synthesized corpus.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import ShaderCompiler, optimize_source
from repro.corpus import MOTIVATING_SHADER, default_corpus
from repro.gpu.platform import all_platforms
from repro.harness.environment import (
    SAMPLE_FRAGMENTS, ShaderExecutionEnvironment, measure_mode,
)
from repro.harness.study import StudyConfig, run_study
from repro.harness.uniforms import (
    batch_fragment_inputs, default_textures, default_uniform_values,
    fragment_inputs,
)
from repro.ir.interp import Interpreter
from repro.ir.interp_batch import BatchedInterpreter
from repro.passes import OptimizationFlags
from repro.search.engine import EvaluationEngine

#: Every single-pass pipeline plus the empty and all-on combinations.
PASS_PIPELINES = ([OptimizationFlags.none()]
                  + [OptimizationFlags.from_index(1 << bit)
                     for bit in range(8)]
                  + [OptimizationFlags.from_index(255)])


@pytest.fixture(scope="module")
def corpus_slice():
    """A seeded slice of the synthesized corpus plus hand-picked cases
    covering divergent branches, loops, discard, and texture sampling."""
    corpus = default_corpus(synth_seed=20180417, synth_count=2)
    synth = [case for case in corpus if case.family.startswith("synth_")]
    picked = [case for case in corpus
              if case.family in ("sprite", "blur", "phong")][:3]
    return synth[:2] + picked


def assert_report_identical(a, b, context=""):
    """Bit-exact ExecutionReport equality (no tolerance)."""
    assert a.measurement.mean_ns == b.measurement.mean_ns, context
    assert a.measurement.std_ns == b.measurement.std_ns, context
    assert a.measurement.repeat_means == b.measurement.repeat_means, context
    assert a.cost == b.cost, context
    assert a.true_ns == b.true_ns, context


# ---------------------------------------------------------------------------
# Per-lane interpreter equivalence, for every pass pipeline
# ---------------------------------------------------------------------------


def test_batched_interpreter_matches_scalar_per_lane_every_pipeline():
    """For every pass pipeline's emitted variant, on every platform's
    JIT-compiled module, every lane of one batched pass must reproduce
    the scalar interpreter's outputs and stats exactly."""
    compiler = ShaderCompiler(MOTIVATING_SHADER)
    for flags in PASS_PIPELINES:
        text = compiler.compile(flags).output
        for platform in all_platforms():
            module = platform.jit.compile(text)
            interface = module.interface
            uniforms = default_uniform_values(interface)
            textures = default_textures(interface)
            lanes = batch_fragment_inputs(interface, SAMPLE_FRAGMENTS)
            assert lanes == [fragment_inputs(interface, position)
                             for position in SAMPLE_FRAGMENTS]

            batch = BatchedInterpreter(module, uniforms=uniforms,
                                       inputs=lanes, textures=textures)
            batched_outputs = batch.run()
            for lane, inputs in enumerate(lanes):
                interp = Interpreter(module, uniforms=uniforms, inputs=inputs,
                                     textures=textures)
                context = (flags.index, platform.name, lane)
                assert interp.run() == batched_outputs[lane], context
                lane_stats = batch.stats[lane]
                assert interp.stats.steps == lane_stats.steps, context
                assert interp.stats.block_visits == lane_stats.block_visits, \
                    context
                assert (list(interp.stats.block_visits)
                        == list(lane_stats.block_visits)), \
                    f"visit order drifted: {context}"
                assert (interp.stats.texture_samples
                        == lane_stats.texture_samples), context


# ---------------------------------------------------------------------------
# ExecutionReport equivalence across modes, seeds, and the corpus slice
# ---------------------------------------------------------------------------


def test_reports_identical_across_modes_every_pipeline():
    for flags in PASS_PIPELINES:
        text = optimize_source(MOTIVATING_SHADER, flags)
        for platform in all_platforms():
            env = ShaderExecutionEnvironment(platform)
            scalar = env.run(text, seed=13, mode="scalar")
            batched = env.run(text, seed=13, mode="batched")
            assert_report_identical(scalar, batched,
                                    (flags.index, platform.name))


def test_run_many_matches_scalar_per_seed_on_corpus_slice(corpus_slice):
    seeds = [2018, 3, 77]
    for case in corpus_slice:
        for platform in all_platforms()[:3]:
            env = ShaderExecutionEnvironment(platform)
            scalar = [env.run(case.source, seed=seed, mode="scalar")
                      for seed in seeds]
            batched = env.run_many(case.source, seeds, mode="batched")
            assert len(batched) == len(seeds)
            for seed, a, b in zip(seeds, scalar, batched):
                assert_report_identical(a, b, (case.name, platform.name, seed))


def test_scalar_mode_run_many_equals_per_seed_runs(corpus_slice):
    case = corpus_slice[0]
    env = ShaderExecutionEnvironment(all_platforms()[0])
    seeds = [5, 6]
    many = env.run_many(case.source, seeds, mode="scalar")
    for seed, report in zip(seeds, many):
        assert_report_identical(env.run(case.source, seed=seed, mode="scalar"),
                                report, seed)


# ---------------------------------------------------------------------------
# Engine-level seed batching through the result cache
# ---------------------------------------------------------------------------


def test_engine_measure_many_matches_per_seed_measures():
    platforms = all_platforms()[:2]
    seeds = [11, 12, 13]
    reference = EvaluationEngine(platforms=platforms)
    expected = [reference.measure(MOTIVATING_SHADER, platforms[0].name, seed)
                for seed in seeds]

    engine = EvaluationEngine(platforms=platforms)
    samples = engine.measure_many(MOTIVATING_SHADER, platforms[0].name, seeds)
    assert samples == expected
    assert engine.measure_count == len(seeds)

    # A second batch overlapping the first only measures the new seeds,
    # and cached/uncached samples interleave in request order.
    mixed = engine.measure_many(MOTIVATING_SHADER, platforms[0].name,
                                [12, 99, 11])
    assert mixed[0] == expected[1]
    assert mixed[2] == expected[0]
    assert engine.measure_count == len(seeds) + 1
    assert mixed[1] == reference.measure(MOTIVATING_SHADER,
                                         platforms[0].name, 99)


# ---------------------------------------------------------------------------
# Mode plumbing
# ---------------------------------------------------------------------------


def test_measure_mode_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_MEASURE", raising=False)
    assert measure_mode() == "batched"
    assert measure_mode("scalar") == "scalar"
    monkeypatch.setenv("REPRO_MEASURE", "scalar")
    assert measure_mode() == "scalar"
    assert measure_mode("batched") == "batched", "explicit arg beats the env"
    with pytest.raises(ValueError):
        measure_mode("vectorized")


# ---------------------------------------------------------------------------
# Byte-identical StudyResult across REPRO_MEASURE modes and --jobs
# ---------------------------------------------------------------------------


def test_study_json_identical_across_measure_modes_and_jobs(monkeypatch):
    corpus = default_corpus(max_shaders=2)
    platforms = all_platforms()[:2]

    def study_json(mode: str, workers: int) -> str:
        monkeypatch.setenv("REPRO_MEASURE", mode)
        config = StudyConfig(platforms=platforms, max_workers=workers)
        return run_study(corpus, config).to_json()

    baseline = study_json("scalar", 1)
    assert study_json("batched", 1) == baseline
    assert study_json("batched", 2) == baseline
    assert study_json("scalar", 2) == baseline


def test_synth_study_json_identical_across_measure_modes(monkeypatch):
    corpus = [case for case in default_corpus(synth_seed=7, synth_count=1)
              if case.family.startswith("synth_")][:1]
    assert corpus, "synth corpus slice is empty"
    platforms = all_platforms()[:2]

    def study_json(mode: str) -> str:
        monkeypatch.setenv("REPRO_MEASURE", mode)
        return run_study(corpus,
                         StudyConfig(platforms=platforms)).to_json()

    assert study_json("batched") == study_json("scalar")
