"""The repro.search subsystem: strategies, engine+cache, scheduler, and the
refactored exhaustive study."""

from __future__ import annotations

import hashlib

import pytest

from repro.analysis.cycle_analyzer import arm_static_cycles
from repro.core.pipeline import ShaderCompiler
from repro.corpus import default_corpus
from repro.glsl.metrics import lines_of_code
from repro.gpu.platform import all_platforms
from repro.harness.environment import ShaderExecutionEnvironment
from repro.harness.results import ShaderResult, StudyResult, VariantRecord
from repro.harness.study import StudyConfig, _variant_seed, run_study
from repro.passes import OptimizationFlags
from repro.passes.flags import (
    SPACE_SIZE, flip_bit, hamming_distance, mutate_index, neighbor_indices,
    popcount, uniform_crossover,
)
from repro.search import (
    STRATEGIES, EvaluationEngine, Exhaustive, Genetic, GreedyHillClimb,
    RandomSampling, ResultCache, Scheduler, make_strategy,
)


TARGET = 0b10110001  # planted optimum for synthetic landscapes


def synthetic_objective(index: int) -> float:
    """Smooth unimodal landscape peaking at TARGET (score 0)."""
    return -float(hamming_distance(index, TARGET))


@pytest.fixture(scope="module")
def small_corpus():
    return default_corpus(max_shaders=2)


@pytest.fixture(scope="module")
def two_platforms():
    return all_platforms()[:2]


# ---------------------------------------------------------------------------
# Flag-mask utilities
# ---------------------------------------------------------------------------


def test_flag_mask_utilities():
    assert flip_bit(0, 3) == 8
    assert flip_bit(8, 3) == 0
    assert popcount(0b10110001) == 4
    assert hamming_distance(0b1111, 0b0000) == 4
    assert sorted(neighbor_indices(0)) == [1 << bit for bit in range(8)]
    import random
    rng = random.Random(7)
    for _ in range(50):
        child = uniform_crossover(0b1010_1010, 0b0101_0101, rng)
        assert 0 <= child < SPACE_SIZE
        mutated = mutate_index(child, rng)
        assert 0 <= mutated < SPACE_SIZE
    # rate=0 never mutates; rate=1 flips every bit.
    assert mutate_index(42, random.Random(0), rate=0.0) == 42
    assert mutate_index(42, random.Random(0), rate=1.0) == 42 ^ 0xFF


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(STRATEGIES))
def test_strategy_determinism_under_fixed_seed(name):
    a = make_strategy(name, seed=123).search(synthetic_objective, budget=48)
    b = make_strategy(name, seed=123).search(synthetic_objective, budget=48)
    assert a.history == b.history
    assert (a.best_index, a.best_score) == (b.best_index, b.best_score)


@pytest.mark.parametrize("name", sorted(STRATEGIES))
def test_strategy_respects_budget_and_unique_points(name):
    outcome = make_strategy(name, seed=5).search(synthetic_objective,
                                                 budget=40)
    assert outcome.points_evaluated <= 40
    indices = [index for index, _ in outcome.history]
    assert len(indices) == len(set(indices)), "budget counts unique points"
    assert outcome.fraction_of_space <= 40 / SPACE_SIZE + 1e-12


def test_exhaustive_covers_the_whole_space():
    outcome = Exhaustive(seed=0).search(synthetic_objective)
    assert outcome.points_evaluated == SPACE_SIZE
    assert outcome.best_index == TARGET
    assert outcome.best_score == 0.0


def test_greedy_climbs_to_planted_optimum():
    # The landscape is unimodal in Hamming distance, so bit-flip ascent
    # reaches the target from any start without restarts.
    outcome = GreedyHillClimb(seed=1).search(synthetic_objective, budget=80)
    assert outcome.best_index == TARGET


def test_genetic_finds_planted_optimum_within_quarter_space():
    outcome = Genetic(seed=2018).search(synthetic_objective, budget=64)
    assert outcome.points_evaluated <= 64
    assert outcome.best_index == TARGET


def test_random_sampling_draws_without_replacement():
    outcome = RandomSampling(seed=9).search(synthetic_objective, budget=256)
    assert outcome.points_evaluated == SPACE_SIZE
    assert outcome.best_index == TARGET


def test_evaluations_to_reach():
    outcome = Exhaustive(seed=0).search(synthetic_objective)
    # TARGET is evaluated exactly at position TARGET + 1 in index order.
    assert outcome.evaluations_to_reach(0.0) == TARGET + 1
    assert outcome.evaluations_to_reach(1.0) is None


# ---------------------------------------------------------------------------
# Engine + cache
# ---------------------------------------------------------------------------


def test_cache_hit_and_miss_semantics(small_corpus, two_platforms):
    case = small_corpus[0]
    platform = two_platforms[0]
    engine = EvaluationEngine(platforms=two_platforms, seed=7)

    first = engine.evaluate(case, OptimizationFlags.from_index(37), platform)
    assert not first.from_cache
    compiles = engine.compile_count
    frontends = engine.frontend_count
    measures = engine.measure_count

    second = engine.evaluate(case, OptimizationFlags.from_index(37), platform)
    assert second.from_cache
    assert engine.compile_count == compiles, "cache hit must not compile"
    assert engine.frontend_count == frontends
    assert engine.measure_count == measures, "cache hit must not re-measure"
    assert second.mean_ns == first.mean_ns
    assert second.speedup_pct == first.speedup_pct

    # A different flag combination that emits the *same* text re-runs the
    # pass pipeline but reuses the measurement (content-addressed).
    same_text_index = next(
        (i for i in range(SPACE_SIZE)
         if i != 37 and engine.text_for(case.source, i)
         == engine.text_for(case.source, 37)), None)
    if same_text_index is not None:
        measures = engine.measure_count
        third = engine.evaluate(case, same_text_index, platform)
        assert engine.measure_count == measures
        assert third.mean_ns == first.mean_ns


def test_disk_cache_round_trip_does_zero_compiles(tmp_path, small_corpus,
                                                  two_platforms):
    case = small_corpus[0]
    platform = two_platforms[0]
    store = tmp_path / "cache.json"

    warm = EvaluationEngine(platforms=two_platforms, seed=3,
                            cache=ResultCache(store))
    baseline = warm.evaluate(case, 42, platform)
    warm.cache.save()
    assert store.exists()

    cold = EvaluationEngine(platforms=two_platforms, seed=3,
                            cache=ResultCache(store))
    replay = cold.evaluate(case, 42, platform)
    assert replay.from_cache
    assert cold.frontend_count == 0, "disk hit must skip the front end"
    assert cold.compile_count == 0, "disk hit must skip the pass pipeline"
    assert cold.measure_count == 0, "disk hit must skip measurement"
    assert replay.mean_ns == baseline.mean_ns
    assert replay.speedup_pct == baseline.speedup_pct


def test_measurements_identical_across_processes(tmp_path):
    """Disk-cached results are only sound if measurements don't depend on
    per-process state (str hash salting regressed this once)."""
    import os
    import subprocess
    import sys

    import repro

    code = ("from repro.corpus import MOTIVATING_SHADER\n"
            "from repro.gpu.platform import platform_by_name\n"
            "from repro.harness.environment import ShaderExecutionEnvironment\n"
            "env = ShaderExecutionEnvironment(platform_by_name('Intel'))\n"
            "print(repr(env.run(MOTIVATING_SHADER, seed=42)"
            ".measurement.mean_ns))\n")
    package_root = os.path.dirname(os.path.dirname(repro.__file__))
    outputs = set()
    for hash_seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                   PYTHONPATH=package_root)
        outputs.add(subprocess.check_output(
            [sys.executable, "-c", code], env=env, text=True).strip())
    assert len(outputs) == 1, f"measurement varies across processes: {outputs}"


def test_corrupt_disk_cache_is_ignored(tmp_path):
    store = tmp_path / "cache.json"
    store.write_text("{not json")
    cache = ResultCache(store)
    assert len(cache) == 0


def test_corpus_objective_matches_direct_evaluations(small_corpus,
                                                     two_platforms):
    engine = EvaluationEngine(platforms=two_platforms, seed=11)
    platform = two_platforms[1]
    objective = engine.corpus_objective(small_corpus, platform)
    score = objective(0)
    expected = sum(engine.evaluate(c, 0, platform).speedup_pct
                   for c in small_corpus) / len(small_corpus)
    assert score == pytest.approx(expected)


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------


def test_scheduler_preserves_order_and_parallel_equals_serial():
    items = list(range(100))
    fn = lambda x: x * x  # noqa: E731
    serial = Scheduler(max_workers=1).map(fn, items)
    parallel = Scheduler(max_workers=8).map(fn, items)
    assert serial == parallel == [x * x for x in items]


def test_scheduler_propagates_worker_exceptions():
    def boom(x):
        if x == 5:
            raise RuntimeError("worker failed")
        return x

    with pytest.raises(RuntimeError, match="worker failed"):
        Scheduler(max_workers=4).map(boom, list(range(10)))


def test_scheduler_honors_jobs_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "6")
    assert Scheduler().max_workers == 6
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert Scheduler().max_workers == 1
    monkeypatch.delenv("REPRO_JOBS")
    assert Scheduler().max_workers == 1


def test_study_serial_and_parallel_runs_are_identical(small_corpus,
                                                      two_platforms):
    serial = run_study(small_corpus,
                       StudyConfig(platforms=two_platforms, max_workers=1))
    parallel = run_study(small_corpus,
                         StudyConfig(platforms=two_platforms, max_workers=4))
    assert serial.to_json() == parallel.to_json()


# ---------------------------------------------------------------------------
# Refactored study == seed implementation
# ---------------------------------------------------------------------------


def _seed_reference_study(corpus, platforms, seed=2018) -> StudyResult:
    """Verbatim copy of the pre-search-subsystem run_study nested loop."""
    result = StudyResult(platforms=[p.name for p in platforms], seed=seed)
    environments = {p.name: ShaderExecutionEnvironment(p) for p in platforms}
    for case_index, case in enumerate(corpus):
        compiler = ShaderCompiler(case.source)
        variant_set = compiler.all_variants()
        shader_result = ShaderResult(
            name=case.name, family=case.family,
            loc=lines_of_code(case.source),
            arm_static_cycles=arm_static_cycles(case.source))
        for platform in platforms:
            env = environments[platform.name]
            report = env.run(case.source,
                             seed=_variant_seed(seed, case_index, -1))
            shader_result.original_times_ns[platform.name] = \
                report.measurement.mean_ns
        ordered = sorted(variant_set.items(),
                         key=lambda kv: min(f.index for f in kv[1]))
        for variant_id, (text, combos) in enumerate(ordered):
            record = VariantRecord(
                variant_id=variant_id,
                flag_indices=sorted(f.index for f in combos),
                text_hash=hashlib.sha256(text.encode()).hexdigest()[:16])
            for platform in platforms:
                env = environments[platform.name]
                report = env.run(text, seed=_variant_seed(seed, case_index,
                                                          variant_id))
                record.times_ns[platform.name] = report.measurement.mean_ns
                record.static_ops[platform.name] = report.cost.static_ops
                record.registers[platform.name] = report.cost.registers
            shader_result.variants.append(record)
        result.shaders.append(shader_result)
    return result


def test_run_study_byte_identical_to_seed_implementation(small_corpus,
                                                         two_platforms):
    reference = _seed_reference_study(small_corpus, two_platforms)
    refactored = run_study(small_corpus, StudyConfig(platforms=two_platforms))
    assert refactored.to_json() == reference.to_json()


# ---------------------------------------------------------------------------
# VariantSet fast path
# ---------------------------------------------------------------------------


def test_variant_set_index_map_matches_linear_scan(small_corpus):
    variant_set = ShaderCompiler(small_corpus[0].source).all_variants()
    assert len(variant_set.index_to_text) == SPACE_SIZE
    for index in range(0, SPACE_SIZE, 17):
        flags = OptimizationFlags.from_index(index)
        expected = next(text for text, combos in variant_set.by_text.items()
                        if any(f.index == index for f in combos))
        assert variant_set.text_for(flags) == expected


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_tune_cli_smoke(capsys):
    from repro.cli import main

    assert main(["tune", "--strategy", "greedy", "--budget", "16",
                 "--platform", "Intel", "--max-shaders", "2"]) == 0
    out = capsys.readouterr().out
    assert "strategy=greedy" in out
    assert "worst-platform gap" in out


# ---------------------------------------------------------------------------
# Cache persistence hygiene
# ---------------------------------------------------------------------------


def test_cache_save_skips_clean_store(tmp_path):
    """A warm-cache replay must not rewrite the JSON store byte-for-byte."""
    store = tmp_path / "cache.json"
    cache = ResultCache(store)
    cache.put("k", {"mean_ns": 1.0})
    cache.save()
    assert store.exists()

    store.unlink()
    cache.save()                      # nothing changed since the last save
    assert not store.exists(), "clean cache rewrote the store"
    cache.put("k", {"mean_ns": 1.0})  # identical value: still clean
    cache.save()
    assert not store.exists()

    cache.put("k", {"mean_ns": 2.0})  # a real change: must persist again
    cache.save()
    assert store.exists()

    warm = ResultCache(store)         # freshly loaded stores start clean
    store.unlink()
    warm.save()
    assert not store.exists()
    warm.put_variants("d", {0: "text"})
    warm.save()
    assert store.exists()
