"""Procedural corpus synthesis: determinism, validity, pass coverage,
and the lazy corpus stream."""

import pytest

from repro.analysis.static_metrics import corpus_composition_spec
from repro.core import ShaderCompiler
from repro.corpus import default_corpus, iter_corpus, synth_family
from repro.corpus import synth
from repro.corpus.generator import corpus_families
from repro.glsl import parse_shader, preprocess
from repro.gpu.platform import all_platforms
from repro.harness.environment import ShaderExecutionEnvironment
from repro.ir import lower_shader, promote_to_ssa
from repro.ir.verify import verify_function
from repro.passes import OptimizationFlags


def _verify_case(source: str) -> None:
    pp = preprocess(source)
    module = lower_shader(parse_shader(pp.text), version=pp.version)
    promote_to_ssa(module.function)
    verify_function(module.function)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def test_synth_family_is_pure_function_of_seed_and_index():
    a = synth_family(7, 3)
    b = synth_family(7, 3)
    assert [c.source for c in a.instances()] == \
        [c.source for c in b.instances()]
    assert [v.name for v in a.variants] == [v.name for v in b.variants]


def test_synth_seed_changes_content_not_shape():
    a = synth_family(7, 3)
    b = synth_family(8, 3)
    assert a.name == b.name == "synth_00003"
    assert a.template != b.template


def test_synth_names_sort_in_index_order():
    names = [synth.family_name(i) for i in (0, 9, 10, 99, 100, 4321)]
    assert names == sorted(names)
    with pytest.raises(ValueError):
        synth.family_name(synth.MAX_SYNTH_FAMILIES)
    with pytest.raises(ValueError):
        synth.family_name(-1)


def test_synth_sources_are_distinct():
    cases = default_corpus(families=None, synth_seed=2018, synth_count=25)
    synth_cases = [c for c in cases if c.family.startswith("synth_")]
    assert len(synth_cases) >= 50
    assert len({c.source for c in synth_cases}) == len(synth_cases)


# ---------------------------------------------------------------------------
# Validity: every block in every pool, and full pipeline on a sample
# ---------------------------------------------------------------------------


def test_every_feature_block_composes_validly():
    """Each block, with every knob enabled, parses and verifies as IR."""
    fetch = synth.FETCH_BLOCKS[0]
    pools = (synth.FETCH_BLOCKS + synth.LIGHT_BLOCKS + synth.SHAPE_BLOCKS
             + synth.POST_BLOCKS)
    for block in pools:
        blocks = [block] if block in synth.FETCH_BLOCKS else [fetch, block]
        template = synth._compose_template(blocks)
        defines = {knob: options[-1]
                   for b in blocks for knob, options in b.value_knobs.items()}
        for b in blocks:
            for knob in b.bool_knobs:
                defines[knob] = ""
        define_block = "".join(f"#define {k} {v}".rstrip() + "\n"
                               for k, v in sorted(defines.items()))
        _verify_case("#version 450\n" + define_block + template)


def test_synth_corpus_parses_and_verifies_broadly():
    for case in iter_corpus(synth_seed=11, synth_count=15):
        if case.family.startswith("synth_"):
            _verify_case(case.source)


def test_synth_cases_compile_and_measure_on_all_platforms():
    """Full pipeline: 256-combination variant sets + every simulated GPU."""
    cases = [c for c in iter_corpus(synth_seed=2018, synth_count=3)
             if c.family.startswith("synth_")]
    assert cases
    environments = [ShaderExecutionEnvironment(p) for p in all_platforms()]
    for case in cases:
        variants = ShaderCompiler(case.source).all_variants()
        assert variants.unique_count >= 1
        for env in environments:
            report = env.run(case.source, seed=3)
            assert report.measurement.mean_ns > 0
            assert report.cost.registers > 0


def test_synth_corpus_stresses_every_flagged_pass():
    """Across a modest synth corpus, each key flag rewrites some case."""
    sources = [c.source for c in iter_corpus(synth_seed=2018, synth_count=12)
               if c.family.startswith("synth_")]
    pending = {"unroll", "gvn", "fp_reassociate", "div_to_mul", "hoist"}
    for source in sources:
        if not pending:
            break
        compiler = ShaderCompiler(source)
        baseline = compiler.compile(OptimizationFlags.none()).output
        for flag in sorted(pending):
            flipped = compiler.compile(
                OptimizationFlags.none().with_flag(flag, True)).output
            if flipped != baseline:
                pending.discard(flag)
    assert not pending, f"no synth case exercised: {sorted(pending)}"


# ---------------------------------------------------------------------------
# Lazy corpus stream
# ---------------------------------------------------------------------------


def test_truncation_is_lazy(monkeypatch):
    built = []
    real = synth.synth_family

    def counting(seed, index):
        built.append(index)
        return real(seed, index)

    monkeypatch.setattr(synth, "synth_family", counting)
    # 50 hand-written cases come first alphabetically up to 'ssao'; the
    # synth families sort between 'ssao' and 'terrain_lod'.
    cases = default_corpus(max_shaders=5, synth_count=50_000)
    assert len(cases) == 5
    assert built == []          # truncated before any synth family


def test_truncation_matches_eager_prefix():
    full = default_corpus(synth_seed=4, synth_count=5)
    for cut in (1, 17, len(full)):
        trunc = default_corpus(max_shaders=cut, synth_seed=4, synth_count=5)
        assert [c.source for c in trunc] == [c.source for c in full][:cut]


def test_synth_count_cap_is_validated():
    with pytest.raises(ValueError):
        list(iter_corpus(synth_count=synth.MAX_SYNTH_FAMILIES + 1))


def test_corpus_families_includes_synth():
    families = corpus_families(synth_seed=2, synth_count=3)
    assert "synth_00002" in families
    assert "blur" in families
    assert len(corpus_families()) + 3 == len(families)


def test_default_corpus_unchanged_without_synth():
    cases = default_corpus()
    assert len(cases) == 50
    assert not any(c.family.startswith("synth_") for c in cases)


# ---------------------------------------------------------------------------
# The corpus-composition artifact
# ---------------------------------------------------------------------------


def test_corpus_composition_spec_splits_synth_and_handwritten():
    from repro.harness.results import ShaderResult, StudyResult, VariantRecord

    def shader(name, family, loc, uniques):
        result = ShaderResult(name=name, family=family, loc=loc,
                              arm_static_cycles=1.0)
        result.variants = [VariantRecord(i, [i], "h") for i in range(uniques)]
        return result

    study = StudyResult(platforms=["Intel"], seed=5, shaders=[
        shader("flat.base", "flat", 6, 2),
        shader("flat.gamma", "flat", 8, 3),
        shader("synth_00000.base", "synth_00000", 40, 12),
    ])
    spec = corpus_composition_spec(study)
    families = [row[0] for row in spec.rows]
    assert families[:2] == ["flat", "synth_00000"]
    assert "(all synthesized)" in families
    assert "(all hand-written)" in families
    flat_row = spec.rows[families.index("flat")]
    assert flat_row[1:] == (2, 6, 8, 8, "2.5")
    assert "3 cases across 2 families" in spec.caption
    assert "2 hand-written" in spec.caption and "1 synthesized" in spec.caption
