"""Docs-tree health: the files exist, intra-repo links resolve, the
paper-mapping table names real modules and artifacts, every documented
``repro`` command parses against the real argparse tree, and the public
surface keeps its docstrings."""

import re
import shlex
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.reporting import artifact_names

ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = ("architecture.md", "paper_mapping.md", "cli.md", "corpus.md",
             "tutorial.md", "service.md", "dispatch.md", "import.md")


def test_docs_tree_exists():
    for name in DOC_FILES:
        path = ROOT / "docs" / name
        assert path.exists(), f"missing docs/{name}"
        assert path.read_text().startswith("# ")


def test_intra_repo_links_resolve():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs_links.py")],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr


def test_paper_mapping_names_real_artifacts_and_modules():
    text = (ROOT / "docs" / "paper_mapping.md").read_text()
    known = set(artifact_names())
    referenced = set(re.findall(r"`([a-z0-9-]+)`", text)) & \
        {name for name in known}
    assert referenced == known, (
        f"paper_mapping.md must mention every registered artifact; "
        f"missing: {sorted(known - referenced)}")
    for module in re.findall(r"`((?:analysis|search|gpu|core|glsl|harness|"
                             r"corpus|passes)/[a-z_{},./]+\.py)`", text):
        for part in _expand_braces(module):
            assert (ROOT / "src" / "repro" / part).exists(), \
                f"paper_mapping.md references missing module {part}"


def _expand_braces(path: str):
    match = re.search(r"\{([^}]*)\}", path)
    if not match:
        return [path]
    head, tail = path[:match.start()], path[match.end():]
    return [head + option + tail for option in match.group(1).split(",")]


def test_readme_links_docs_tree():
    text = (ROOT / "README.md").read_text()
    for name in DOC_FILES:
        assert f"docs/{name}" in text, f"README does not link docs/{name}"
    assert "repro report" in text


# ---------------------------------------------------------------------------
# Documented commands must parse against the real CLI
# ---------------------------------------------------------------------------

_FENCE_RE = re.compile(r"```sh\n(.*?)```", re.DOTALL)


def _documented_commands():
    """Every ``repro …`` invocation inside a ```sh fence in docs/ + README."""
    sources = [ROOT / "README.md"] + [ROOT / "docs" / name
                                      for name in DOC_FILES]
    for path in sources:
        for block in _FENCE_RE.findall(path.read_text()):
            for line in block.splitlines():
                line = line.split("#", 1)[0].strip()
                for part in line.split("&&"):
                    part = part.strip()
                    if part.startswith("repro "):
                        yield f"{path.name}: {part}", shlex.split(part)[1:]


_COMMANDS = sorted(_documented_commands())


def test_docs_contain_repro_commands():
    """The extraction itself works (guards against fence-format drift)."""
    assert len(_COMMANDS) >= 20
    documented = {argv[0] for _, argv in _COMMANDS}
    assert {"optimize", "variants", "study", "merge-results", "tune",
            "report", "serve", "client"} <= documented


@pytest.mark.parametrize("label,argv", _COMMANDS,
                         ids=[label for label, _ in _COMMANDS])
def test_documented_command_parses(label, argv):
    args = build_parser().parse_args(argv)
    assert callable(args.fn), label


def test_public_surface_has_docstrings():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docstrings.py")],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
