"""Docs-tree health: the files exist, intra-repo links resolve, and the
paper-mapping table names real modules and artifacts."""

import re
import subprocess
import sys
from pathlib import Path

from repro.reporting import artifact_names

ROOT = Path(__file__).resolve().parent.parent


def test_docs_tree_exists():
    for name in ("architecture.md", "paper_mapping.md", "cli.md"):
        path = ROOT / "docs" / name
        assert path.exists(), f"missing docs/{name}"
        assert path.read_text().startswith("# ")


def test_intra_repo_links_resolve():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs_links.py")],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr


def test_paper_mapping_names_real_artifacts_and_modules():
    text = (ROOT / "docs" / "paper_mapping.md").read_text()
    known = set(artifact_names())
    referenced = set(re.findall(r"`([a-z0-9-]+)`", text)) & \
        {name for name in known}
    assert referenced == known, (
        f"paper_mapping.md must mention every registered artifact; "
        f"missing: {sorted(known - referenced)}")
    for module in re.findall(r"`((?:analysis|search|gpu|core|glsl|harness|"
                             r"corpus|passes)/[a-z_{},./]+\.py)`", text):
        for part in _expand_braces(module):
            assert (ROOT / "src" / "repro" / part).exists(), \
                f"paper_mapping.md references missing module {part}"


def _expand_braces(path: str):
    match = re.search(r"\{([^}]*)\}", path)
    if not match:
        return [path]
    head, tail = path[:match.start()], path[match.end():]
    return [head + option + tail for option in match.group(1).split(",")]


def test_readme_links_docs_tree():
    text = (ROOT / "README.md").read_text()
    for target in ("docs/architecture.md", "docs/paper_mapping.md",
                   "docs/cli.md"):
        assert target in text, f"README does not link {target}"
    assert "repro report" in text
