"""The study service, end to end: job identity, journal recovery, the
socket protocol, warm-cache resubmission, cancellation, and timeouts.

The socket tests boot a real :class:`StudyService` (in-process, on a Unix
socket under a short /tmp path — AF_UNIX paths have a ~104-byte limit) and
drive it through :class:`ServiceClient`, exactly as ``repro client`` does.
"""

import json
import tempfile
import time
from pathlib import Path

import pytest

from repro.corpus import CorpusSpec
from repro.service import (
    JobJournal, JobSpec, ServiceClient, StudyService, socket_available,
)

TINY_SHADER = """\
#version 450
out vec4 fragColor;
in vec2 uv;
uniform vec4 ambient;

void main()
{
    float glow = uv.x * 0.5 + uv.y * uv.y;
    fragColor = vec4(glow, glow * 0.25, 0.75, 1.0) + ambient * 0.125;
}
"""

pytestmark = pytest.mark.skipif(
    not socket_available(), reason="no AF_UNIX support on this platform")


@pytest.fixture()
def service_root():
    """A short-lived service directory under /tmp (socket-path friendly)."""
    with tempfile.TemporaryDirectory(dir="/tmp", prefix="repro-svc-") as root:
        yield Path(root)


@pytest.fixture()
def service(service_root):
    """A running one-worker service plus a connected client."""
    svc = StudyService(service_root, workers=1)
    svc.start()
    client = ServiceClient(svc.socket_path)
    client.wait_ready()
    try:
        yield svc, client
    finally:
        svc.stop()


def _wait_terminal(client, job_id, timeout=120.0):
    """Follow *job_id* to completion; returns its final status dict."""
    deadline = time.monotonic() + timeout
    for _ in client.follow(job_id):
        assert time.monotonic() < deadline, "job did not finish in time"
    return client.status(job_id)["job"]


# ---------------------------------------------------------------------------
# Job identity
# ---------------------------------------------------------------------------


def test_job_spec_is_content_addressed():
    a = JobSpec(source=TINY_SHADER)
    b = JobSpec(source=TINY_SHADER)
    assert a.digest() == b.digest()
    # Operational knobs (timeout) do not change the content address ...
    assert JobSpec(source=TINY_SHADER, timeout=5.0).digest() == a.digest()
    # ... but the work content does.
    assert JobSpec(source=TINY_SHADER, seed=1).digest() != a.digest()
    assert JobSpec(corpus=CorpusSpec(max_shaders=2)).digest() != a.digest()
    assert (JobSpec(corpus=CorpusSpec(max_shaders=2)).digest()
            == JobSpec(corpus=CorpusSpec(max_shaders=2)).digest())


def test_job_spec_round_trips_and_validates():
    spec = JobSpec(corpus=CorpusSpec(max_shaders=3, synth_count=2),
                   strategy="genetic", budget=16, platforms=("ARM",),
                   seed=7, timeout=30.0)
    again = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again == spec
    with pytest.raises(ValueError):
        JobSpec().validate()                      # neither source nor corpus
    with pytest.raises(ValueError):
        JobSpec(source=TINY_SHADER, corpus=CorpusSpec()).validate()  # both
    with pytest.raises(ValueError):
        JobSpec(source=TINY_SHADER, strategy="nope").validate()
    with pytest.raises(ValueError):
        JobSpec(source=TINY_SHADER, platforms=("VAX",)).validate()
    with pytest.raises(ValueError):
        JobSpec(source=TINY_SHADER, timeout=0).validate()
    with pytest.raises(ValueError):
        JobSpec.from_dict({"source": TINY_SHADER, "bogus": 1})


def test_dispatch_job_spec_validation():
    spec = JobSpec(corpus=CorpusSpec(max_shaders=3), strategy="dispatch",
                   shards=2)
    spec.validate()
    # Shard count is part of the work content for dispatch jobs ...
    assert spec.digest() != JobSpec(corpus=CorpusSpec(max_shaders=3),
                                    strategy="dispatch", shards=3).digest()
    # ... and round-trips through the wire format.
    assert JobSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec
    with pytest.raises(ValueError, match="shards >= 1"):
        JobSpec(corpus=CorpusSpec(max_shaders=3),
                strategy="dispatch").validate()
    with pytest.raises(ValueError, match="shards only applies"):
        JobSpec(corpus=CorpusSpec(max_shaders=3), shards=2).validate()


def test_corpus_spec_matches_cli_corpus_selection():
    """JobSpec corpora and the CLI flags build through the same helper."""
    import argparse

    from repro.cli import build_parser, corpus_spec_from_args

    args = build_parser().parse_args(
        ["study", "--max-shaders", "4", "--synth-count", "2",
         "--synth-seed", "99"])
    spec = corpus_spec_from_args(args)
    assert spec == CorpusSpec(max_shaders=4, synth_seed=99, synth_count=2)
    cli_names = [case.name for case in spec.build()]
    job_names = [case.name
                 for case in JobSpec(corpus=spec).cases()]
    assert cli_names == job_names and len(cli_names) == 4
    assert isinstance(args, argparse.Namespace)


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


def test_journal_replays_in_submission_order(service_root):
    journal = JobJournal(service_root / "jobs.jsonl")
    journal.record_submit("a-1", {"source": TINY_SHADER})
    journal.record_submit("b-2", {"source": TINY_SHADER, "seed": 3})
    journal.record_state("a-1", "running")
    journal.record_state("a-1", "done")
    journal.close()

    jobs = JobJournal(service_root / "jobs.jsonl").replay_jobs()
    assert list(jobs) == ["a-1", "b-2"]
    assert jobs["a-1"]["state"] == "done"
    assert jobs["b-2"]["state"] == "pending"


def test_journal_tolerates_truncated_tail(service_root):
    path = service_root / "jobs.jsonl"
    journal = JobJournal(path)
    journal.record_submit("a-1", {"source": TINY_SHADER})
    journal.record_state("a-1", "running")
    journal.record_submit("b-2", {"source": TINY_SHADER, "seed": 3})
    journal.close()

    # Tear the final line mid-record, as a killed daemon would.
    blob = path.read_bytes()
    path.write_bytes(blob[:-9])

    jobs = JobJournal(path).replay_jobs()
    assert list(jobs) == ["a-1"]          # the torn submit is dropped whole
    assert jobs["a-1"]["state"] == "running"

    # Appending after a torn tail must not corrupt the next record.
    journal = JobJournal(path)
    journal.record_state("a-1", "done")
    journal.close()
    assert JobJournal(path).replay_jobs()["a-1"]["state"] == "done"


def test_journal_warns_on_interior_corruption(service_root, caplog):
    """A corrupt record mid-journal (real damage, not a torn tail) is
    skipped with a logged warning; the records around it still replay."""
    path = service_root / "jobs.jsonl"
    journal = JobJournal(path)
    journal.record_submit("a-1", {"source": TINY_SHADER})
    journal.record_state("a-1", "running")
    journal.record_state("a-1", "done")
    journal.close()

    lines = path.read_text().splitlines()
    lines[2] = "#### corrupted interior record ####"   # the 'running' line
    path.write_text("\n".join(lines) + "\n")

    with caplog.at_level("WARNING", logger="repro.service.journal"):
        jobs = JobJournal(path).replay_jobs()
    assert jobs["a-1"]["state"] == "done"              # neighbours survive
    assert any("corrupt record on line 3" in rec.getMessage()
               for rec in caplog.records)

    # A torn tail alone stays silent — that is the expected kill trace.
    torn = service_root / "torn-only.jsonl"
    fresh = JobJournal(torn)
    fresh.record_submit("b-1", {"source": TINY_SHADER})
    fresh.close()
    with open(torn, "a") as handle:
        handle.write('{"t": "state", "id": "b-1"')
    caplog.clear()
    with caplog.at_level("WARNING", logger="repro.service.journal"):
        jobs = JobJournal(torn).replay_jobs()
    assert jobs["b-1"]["state"] == "pending"
    assert not caplog.records


def test_journal_discards_version_skew(service_root):
    path = service_root / "jobs.jsonl"
    path.write_text('{"version": 999}\n'
                    '{"t": "submit", "id": "x", "spec": {}}\n')
    journal = JobJournal(path)
    assert journal.replay_jobs() == {}
    journal.record_submit("fresh-1", {"source": TINY_SHADER})
    journal.close()
    assert list(JobJournal(path).replay_jobs()) == ["fresh-1"]


# ---------------------------------------------------------------------------
# End-to-end over the socket
# ---------------------------------------------------------------------------


def test_submit_tail_status_end_to_end(service):
    _, client = service
    spec = JobSpec(source=TINY_SHADER, platforms=("ARM", "Intel"))
    response = client.submit(spec)
    assert response["state"] == "pending"
    assert response["digest"] == spec.digest()

    events = list(client.follow(response["id"]))
    kinds = [event["type"] for event in events]
    assert kinds.count("case") == 1
    assert kinds[-1] == "state" and events[-1]["state"] == "done"
    assert set(events[0]["best_pct"]) == {"ARM", "Intel"}

    status = _wait_terminal(client, response["id"])
    assert status["state"] == "done"
    assert status["summary"]["shaders"] == 1
    assert status["summary"]["platforms"] == ["ARM", "Intel"]
    assert status["work"]["compiles"] > 0
    assert status["work"]["measures"] > 0
    # The study result landed on disk, loadable as a StudyResult.
    from repro.harness.results import StudyResult

    saved = StudyResult.from_json(Path(status["result_path"]).read_text())
    assert [s.name for s in saved.shaders] == [events[0]["name"]]
    # Per-job event stream mirrors what tail served.
    event_lines = (Path(status["result_path"]).parents[1] / "events"
                   / f"{response['id']}.jsonl").read_text().splitlines()
    assert len(event_lines) == len(events)


def test_second_identical_submission_is_pure_cache_hits(service):
    """The tentpole guarantee: a second tenant's identical submission
    completes with zero compiles and zero measurements."""
    _, client = service
    spec = JobSpec(source=TINY_SHADER)

    first = client.submit(spec)
    cold = _wait_terminal(client, first["id"])
    assert cold["state"] == "done"
    assert cold["work"]["compiles"] > 0 and cold["work"]["measures"] > 0

    # A "second tenant": a fresh client connection, same spec content.
    second_client = ServiceClient(client.socket_path)
    second = second_client.submit(JobSpec(source=TINY_SHADER))
    assert second["digest"] == first["digest"]
    assert second["id"] != first["id"]
    warm = _wait_terminal(second_client, second["id"])
    assert warm["state"] == "done"
    assert warm["work"]["frontends"] == 0
    assert warm["work"]["compiles"] == 0
    assert warm["work"]["measures"] == 0
    assert warm["work"]["cache_hits"] > 0
    # Same answers, served warm.
    assert warm["summary"]["speedups"] == cold["summary"]["speedups"]


def test_search_strategy_job(service):
    _, client = service
    spec = JobSpec(source=TINY_SHADER, strategy="greedy", budget=9,
                   platforms=("ARM",))
    response = client.submit(spec)
    events = list(client.follow(response["id"]))
    platform_events = [e for e in events if e["type"] == "platform"]
    assert [e["platform"] for e in platform_events] == ["ARM"]
    status = _wait_terminal(client, response["id"])
    assert status["state"] == "done"
    assert status["summary"]["kind"] == "search"
    assert status["summary"]["search"][0]["evaluated"] <= 9


def test_dispatch_strategy_job_matches_unsharded_study(service):
    """A dispatch job through the daemon: shards fan out on the warm-cache
    thread transport, merge, and byte-match the unsharded study."""
    from repro.harness.results import StudyResult
    from repro.harness.study import StudyConfig, run_study

    _, client = service
    spec = JobSpec(corpus=CorpusSpec(max_shaders=3), strategy="dispatch",
                   shards=2)
    response = client.submit(spec)
    events = list(client.follow(response["id"]))
    assert any(e.get("type") == "shard" for e in events)
    status = _wait_terminal(client, response["id"])
    assert status["state"] == "done"
    assert status["summary"]["kind"] == "dispatch"
    assert status["summary"]["shards"] == 2
    assert status["summary"]["retries"] == 0
    merged = StudyResult.from_json(Path(status["result_path"]).read_text())
    baseline = run_study(CorpusSpec(max_shaders=3).build(), StudyConfig())
    assert merged.to_json() == baseline.to_json()


def test_cancel_pending_job_never_runs(service_root):
    svc = StudyService(service_root, workers=1)
    # No start(): nothing is draining the queue, so the job stays pending.
    response = svc.handle({"op": "submit",
                           "spec": JobSpec(source=TINY_SHADER).to_dict()})
    cancelled = svc.handle({"op": "cancel", "id": response["id"]})
    assert cancelled == {"ok": True, "id": response["id"],
                         "state": "cancelled"}
    status = svc.handle({"op": "status", "id": response["id"]})
    assert status["job"]["state"] == "cancelled"
    assert status["job"]["work"] == {}
    svc.journal.close()


def test_cancel_running_job_lands_cancelled(service):
    _, client = service
    # Enough cases that the job is still running when the cancel lands.
    spec = JobSpec(corpus=CorpusSpec(max_shaders=6, synth_count=3))
    response = client.submit(spec)
    # Wait for the first sign of execution, then cancel.
    deadline = time.monotonic() + 60
    while client.status(response["id"])["job"]["state"] == "pending":
        assert time.monotonic() < deadline
        time.sleep(0.02)
    client.cancel(response["id"])
    status = _wait_terminal(client, response["id"])
    assert status["state"] == "cancelled"
    assert "cancelled" in status["error"]


def test_timeout_fails_job_without_wedging_worker(service):
    _, client = service
    doomed = client.submit(JobSpec(corpus=CorpusSpec(max_shaders=3),
                                   timeout=1e-4))
    status = _wait_terminal(client, doomed["id"])
    assert status["state"] == "failed"
    assert "timeout" in status["error"]
    # The worker survived: the next job on the same worker completes.
    healthy = client.submit(JobSpec(source=TINY_SHADER))
    assert _wait_terminal(client, healthy["id"])["state"] == "done"


def test_protocol_rejects_garbage_and_unknown_ops(service):
    svc, client = service
    import socket as socket_mod

    with socket_mod.socket(socket_mod.AF_UNIX,
                           socket_mod.SOCK_STREAM) as sock:
        sock.connect(str(svc.socket_path))
        sock.sendall(b"this is not json\n")
        response = json.loads(sock.recv(65536).decode())
    assert response["ok"] is False and "malformed" in response["error"]

    assert "unknown op" in svc.handle({"op": "frobnicate"})["error"]
    assert "invalid job spec" in svc.handle(
        {"op": "submit", "spec": {"strategy": "study"}})["error"]
    assert "unknown job" in svc.handle(
        {"op": "status", "id": "nope"})["error"]


# ---------------------------------------------------------------------------
# Restart recovery
# ---------------------------------------------------------------------------


def test_killed_daemon_resumes_pending_queue(service_root):
    # Daemon 1 accepts two submissions but is "killed" before its workers
    # ever run them (no start()), with a torn final journal line.
    first = StudyService(service_root, workers=1)
    submitted = [
        first.handle({"op": "submit",
                      "spec": JobSpec(source=TINY_SHADER).to_dict()}),
        first.handle({"op": "submit",
                      "spec": JobSpec(source=TINY_SHADER,
                                      seed=3).to_dict()}),
    ]
    first.journal.close()
    journal_path = service_root / "jobs.jsonl"
    journal_path.write_bytes(journal_path.read_bytes()[:-5])

    # Daemon 2 recovers the intact prefix of the queue and executes it.
    second = StudyService(service_root, workers=1)
    second.start()
    try:
        assert second.recovered_jobs == 1      # the torn submit is lost
        client = ServiceClient(second.socket_path)
        client.wait_ready()
        status = _wait_terminal(client, submitted[0]["id"])
        assert status["state"] == "done"
        with pytest.raises(Exception):
            client.status(submitted[1]["id"])  # torn away entirely
    finally:
        second.stop()


def test_restart_after_completion_requeues_nothing(service_root):
    svc = StudyService(service_root, workers=1)
    svc.start()
    client = ServiceClient(svc.socket_path)
    client.wait_ready()
    done = client.submit(JobSpec(source=TINY_SHADER))
    assert _wait_terminal(client, done["id"])["state"] == "done"
    svc.stop()

    again = StudyService(service_root, workers=1)
    again.start()
    try:
        assert again.recovered_jobs == 0
        client = ServiceClient(again.socket_path)
        client.wait_ready()
        # The finished job is still visible (state only) after restart.
        assert client.status(done["id"])["job"]["state"] == "done"
        # And a resubmission of its spec is pure cache: the cache store
        # was journalled too (cache.jsonl), so warmth survives restarts.
        warm = client.submit(JobSpec(source=TINY_SHADER))
        status = _wait_terminal(client, warm["id"])
        assert status["state"] == "done"
        assert status["work"]["compiles"] == 0
        assert status["work"]["measures"] == 0
    finally:
        again.stop()


# ---------------------------------------------------------------------------
# Shutdown
# ---------------------------------------------------------------------------


def test_graceful_stop_requeues_running_jobs(service_root):
    """SIGTERM-style drain: stop() flushes state and journals an in-flight
    job back to pending, so a restarted daemon picks it straight up."""
    svc = StudyService(service_root, workers=1)
    svc.start()
    client = ServiceClient(svc.socket_path)
    client.wait_ready()
    # Enough cases that the job is still running when the stop lands.
    response = client.submit(
        JobSpec(corpus=CorpusSpec(max_shaders=6, synth_count=3)))
    deadline = time.monotonic() + 60
    while client.status(response["id"])["job"]["state"] != "running":
        assert time.monotonic() < deadline
        time.sleep(0.02)
    svc.stop()                               # requeue_running defaults True

    jobs = JobJournal(service_root / "jobs.jsonl").replay_jobs()
    assert jobs[response["id"]]["state"] == "pending"
    assert jobs[response["id"]]["error"] is None

    second = StudyService(service_root, workers=1)
    second.start()
    try:
        assert second.recovered_jobs == 1
        client = ServiceClient(second.socket_path)
        client.wait_ready()
        assert _wait_terminal(client, response["id"])["state"] == "done"
    finally:
        second.stop()


def test_client_shutdown_stops_the_wait_loop(service_root):
    svc = StudyService(service_root, workers=1)
    svc.start()
    client = ServiceClient(svc.socket_path)
    client.wait_ready()
    response = client.shutdown()
    assert response["stopping"] is True
    deadline = time.monotonic() + 5
    while not svc._shutdown.is_set():
        assert time.monotonic() < deadline
        time.sleep(0.01)
    svc.stop()
    assert not svc.socket_path.exists()
