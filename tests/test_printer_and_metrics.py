"""Printer round-trips, float formatting, LoC metric, introspection."""

import pytest

from repro.glsl import lines_of_code, parse_shader, preprocess, print_shader
from repro.glsl import shader_interface
from repro.glsl.printer import format_float


SAMPLES = [
    "uniform vec4 c;\nout vec4 frag;\nvoid main() { frag = c * 2.0; }",
    """uniform sampler2D t;
in vec2 uv;
out vec4 frag;
void main() {
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 4; i++) { acc += texture(t, uv) * float(i); }
    if (acc.x > 1.0) { acc = acc * 0.5; } else { acc.y = 0.0; }
    frag = acc;
}""",
    """out vec4 frag;
float helper(float x) { return x * x; }
void main() { frag = vec4(helper(2.0)); }""",
]


@pytest.mark.parametrize("source", SAMPLES)
def test_print_parse_roundtrip_is_stable(source):
    once = print_shader(parse_shader(source))
    twice = print_shader(parse_shader(once))
    assert once == twice


def test_float_formatting_always_has_decimal():
    assert format_float(1.0) == "1.0"
    assert format_float(0.5) == "0.5"
    assert "." in format_float(3.0) or "e" in format_float(3.0)


def test_float_formatting_roundtrips_value():
    for value in (0.1, 1e-8, 12345.678, -0.25):
        assert float(format_float(value)) == value


def test_loc_counts_executable_lines_only():
    src = """
uniform vec4 c;
in vec2 uv;
out vec4 frag;

// a comment
void main()
{
    frag = c;
}
"""
    # counted: "void main()" and "frag = c;"
    assert lines_of_code(src) == 2


def test_loc_runs_preprocessor_first():
    src = "#ifdef BIG\nfloat a; float b; float c;\n#endif\nvoid main() { }\n"
    assert lines_of_code(src) == 1


def test_loc_counts_unused_functions():
    src = """
out vec4 frag;
float unused(float x)
{
    return x * 2.0;
}
void main()
{
    frag = vec4(0.0);
}
"""
    with_unused = lines_of_code(src)
    without = lines_of_code(src.replace(
        "float unused(float x)\n{\n    return x * 2.0;\n}\n", ""))
    assert with_unused == without + 2  # signature + return line


def test_loc_ignores_brace_only_lines():
    assert lines_of_code("void main()\n{\n}\n") == 1


def test_interface_collection():
    shader = parse_shader(
        "uniform sampler2D t;\nuniform vec4 c;\nin vec2 uv;\nout vec4 f;\n"
        "void main() { f = c; }")
    iface = shader_interface(shader)
    assert [u.name for u in iface.uniforms] == ["t", "c"]
    assert [s.name for s in iface.samplers] == ["t"]
    assert [i.name for i in iface.inputs] == ["uv"]
    assert [o.name for o in iface.outputs] == ["f"]


def test_interface_sampler_arrays():
    shader = parse_shader("uniform sampler2D tex;\nvoid main() { }")
    iface = shader_interface(shader)
    assert iface.samplers[0].is_sampler
