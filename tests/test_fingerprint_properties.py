"""Property fuzz of the canonical IR fingerprint — the corpus trie's
entire safety argument.

The corpus-global trie (:mod:`repro.core.corpus_trie`) substitutes any
interned module for any fingerprint-equal state reached by any pipeline, so
three properties must hold over seeded synth IR:

1. **Invariance** — the fingerprint survives clone round-trips (both name
   modes) and rank-preserving SSA renaming: it keys *content*, never object
   identity or absolute counter values.
2. **No aliasing of distinct semantics** — modules whose outputs differ on
   shared inputs (checked via the batched interpreter) never share a
   fingerprint.
3. **Equal fingerprints are total** — equal fingerprints imply byte-identical
   ``emit_glsl`` and identical interpreter behaviour.

Plus the regression suite for the fingerprint LRU: mutation (a pipeline
step or an explicit ``touch``) must invalidate the cached digest — a stale
hash would merge unequal states, which is silent corruption.
"""

import re

from hypothesis import given, settings, strategies as st

from repro.core import ShaderCompiler
from repro.corpus import MOTIVATING_SHADER, default_corpus
from repro.harness.environment import SAMPLE_FRAGMENTS
from repro.harness.uniforms import (
    batch_fragment_inputs, default_textures, default_uniform_values,
)
from repro.ir import emit_glsl
from repro.ir.clone import clone_module
from repro.ir.fingerprint import (
    clear_fingerprint_cache, fingerprint_cache_info, fingerprint_function,
    fingerprint_module,
)
from repro.ir.interp_batch import BatchedInterpreter
from repro.passes import OptimizationFlags
from repro.passes.manager import PASS_ORDER, apply_flag_pass, run_cleanup

# Seeded synth IR: procedurally composed übershader families plus the
# paper's motivating shader.  Compilers are built lazily and memoized —
# hypothesis re-draws the same names across examples.
_CASES = {case.name: case.source
          for case in default_corpus(synth_seed=11, synth_count=3)
          if case.family.startswith("synth_")}
_CASES["motivating"] = MOTIVATING_SHADER
_NAMES = sorted(_CASES)
_COMPILERS = {}


def _compiler(name):
    if name not in _COMPILERS:
        _COMPILERS[name] = ShaderCompiler(_CASES[name])
    return _COMPILERS[name]


def _batched_outputs(module):
    """All sample-fragment outputs in one batched-interpreter pass."""
    interface = module.interface
    interp = BatchedInterpreter(
        module, uniforms=default_uniform_values(interface),
        inputs=batch_fragment_inputs(interface, SAMPLE_FRAGMENTS),
        textures=default_textures(interface))
    return interp.run()


def _rank_preserving_rename(module):
    """Rename every SSA value to a fresh name with the same relative order
    under the fingerprint's ``(len, name)`` sort — a legal SSA renaming."""
    instrs = [instr for block in module.function.blocks
              for instr in block.instrs]
    order = sorted(range(len(instrs)),
                   key=lambda i: (len(instrs[i].name), instrs[i].name))
    for rank, position in enumerate(order):
        instrs[position].name = f"v{rank:06d}"
    module.function.touch()


# ---------------------------------------------------------------------------
# Property 1: invariance under renaming and cloning
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(name=st.sampled_from(_NAMES),
       index=st.integers(min_value=0, max_value=255))
def test_fingerprint_invariant_under_clone_and_rename(name, index):
    compiled = _compiler(name).compile(OptimizationFlags.from_index(index))
    module = compiled.module
    reference = fingerprint_module(module)

    preserved = clone_module(module, preserve_names=True)
    assert fingerprint_module(preserved) == reference

    renamed = clone_module(module, preserve_names=True)
    _rank_preserving_rename(renamed)
    assert fingerprint_module(renamed) == reference

    # Round-trip: a clone of a clone still agrees.
    assert fingerprint_module(
        clone_module(preserved, preserve_names=True)) == reference


@settings(max_examples=10, deadline=None)
@given(name=st.sampled_from(_NAMES))
def test_fresh_name_clone_of_pristine_module_is_invariant(name):
    """Fresh-name (RPO-renumbering) clones agree with *each other*, which is
    the property the variant walk relies on: every variant starts from a
    fresh clone of the same pristine module and therefore gets the same
    renumbering.  (They need not agree with the source — phi shells rename
    first — and after passes run creation order diverges from RPO entirely,
    which is why every mid-pipeline clone preserves names.)"""
    pristine = _compiler(name)._module
    first = clone_module(pristine)
    second = clone_module(pristine)
    assert fingerprint_module(first) == fingerprint_module(second)
    assert emit_glsl(first) == emit_glsl(second)


# ---------------------------------------------------------------------------
# Properties 2 + 3: equal fingerprints are safe, distinct semantics differ
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(name=st.sampled_from(_NAMES),
       index_a=st.integers(min_value=0, max_value=255),
       index_b=st.integers(min_value=0, max_value=255))
def test_equal_fingerprints_imply_identical_emission_and_behaviour(
        name, index_a, index_b):
    compiler = _compiler(name)
    a = compiler.compile(OptimizationFlags.from_index(index_a))
    b = compiler.compile(OptimizationFlags.from_index(index_b))
    if fingerprint_module(a.module) == fingerprint_module(b.module):
        assert a.output == b.output, (
            "equal fingerprints emitted different GLSL — the trie would "
            "have merged these states")
        assert _batched_outputs(a.module) == _batched_outputs(b.module)


@settings(max_examples=15, deadline=None)
@given(name=st.sampled_from(_NAMES),
       subset=st.lists(st.sampled_from(PASS_ORDER), max_size=4))
def test_independent_clones_of_same_pipeline_converge(name, subset):
    """The construction the trie relies on: two separately-cloned copies
    taken through the same step sequence must fingerprint equal and emit
    byte-identically."""
    base = _compiler(name)._module
    modules = []
    for _ in range(2):
        module = clone_module(base)
        run_cleanup(module.function)
        for pass_name in subset:
            apply_flag_pass(module, pass_name)
        modules.append(module)
    first, second = modules
    assert fingerprint_module(first) == fingerprint_module(second)
    assert emit_glsl(first) == emit_glsl(second)


_SEMANTIC_PAIR = (
    "#version 330\nuniform float gain;\nin vec2 uv;\nout vec4 color;\n"
    "void main() { color = vec4(uv.x + gain); }\n",
    "#version 330\nuniform float gain;\nin vec2 uv;\nout vec4 color;\n"
    "void main() { color = vec4(uv.x * gain); }\n",
)


def test_distinct_semantics_never_share_a_fingerprint():
    add = ShaderCompiler(_SEMANTIC_PAIR[0]).compile(OptimizationFlags.none())
    mul = ShaderCompiler(_SEMANTIC_PAIR[1]).compile(OptimizationFlags.none())
    # Same interface, shared inputs: the batched interpreter distinguishes
    # them, so the fingerprint must as well.
    assert _batched_outputs(add.module) != _batched_outputs(mul.module)
    assert fingerprint_module(add.module) != fingerprint_module(mul.module)


@settings(max_examples=15, deadline=None)
@given(name_a=st.sampled_from(_NAMES), name_b=st.sampled_from(_NAMES),
       index=st.integers(min_value=0, max_value=255))
def test_cross_shader_fingerprint_equality_is_emission_safe(
        name_a, name_b, index):
    """Across different shaders, an (unlikely) fingerprint collision would
    still be emission-safe — assert the implication on every drawn pair."""
    a = _compiler(name_a).compile(OptimizationFlags.from_index(index))
    b = _compiler(name_b).compile(OptimizationFlags.from_index(index))
    if fingerprint_module(a.module) == fingerprint_module(b.module):
        assert emit_glsl(a.module) == emit_glsl(b.module)


# ---------------------------------------------------------------------------
# Fingerprint LRU regression: mutation must invalidate
# ---------------------------------------------------------------------------


def test_repeated_fingerprints_hit_the_cache():
    clear_fingerprint_cache()
    module = clone_module(_compiler("motivating")._module,
                          preserve_names=True)
    first = fingerprint_module(module)
    before = fingerprint_cache_info()
    assert fingerprint_module(module) == first
    after = fingerprint_cache_info()
    assert after["hits"] == before["hits"] + 1
    assert after["misses"] == before["misses"]


def test_pipeline_step_invalidates_cached_fingerprint():
    module = clone_module(_compiler("motivating")._module,
                          preserve_names=True)
    run_cleanup(module.function)
    fingerprint_module(module)  # populate the cache
    epoch = module.function.epoch
    apply_flag_pass(module, "gvn")
    assert module.function.epoch > epoch, (
        "apply_flag_pass must bump the epoch or a cached digest goes stale")
    after = fingerprint_module(module)
    # Cross-check against an uncached recompute: the post-mutation digest
    # reflects the *mutated* IR, never the stale cache entry.
    clear_fingerprint_cache()
    assert fingerprint_module(module) == after


def test_touch_invalidates_after_direct_surgery():
    module = clone_module(_compiler("motivating")._module,
                          preserve_names=True)
    run_cleanup(module.function)
    before = fingerprint_module(module)
    # Direct surgery below the manager: rename a value so the rank payload
    # changes, then honor the contract by touching.
    instr = next(i for block in module.function.blocks
                 for i in block.instrs if re.match(r"v\d+$", i.name))
    instr.name = instr.name + "zzzzzz"
    module.function.touch()
    assert fingerprint_module(module) != before
    clear_fingerprint_cache()
    assert fingerprint_function(module.function) == \
        fingerprint_module(module)


def test_clones_never_share_cache_identity():
    module = clone_module(_compiler("motivating")._module,
                          preserve_names=True)
    twin = clone_module(module, preserve_names=True)
    assert module.function.uid != twin.function.uid
    # Mutating one must not disturb the other's cached digest.
    before_twin = fingerprint_module(twin)
    apply_flag_pass(module, "adce")
    assert fingerprint_module(twin) == before_twin
