"""Lexer unit tests."""

import pytest

from repro.errors import LexerError
from repro.glsl.lexer import tokenize
from repro.glsl.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


def test_empty_source_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_identifier():
    (tok,) = tokenize("fragColor")[:-1]
    assert tok.kind is TokenKind.IDENT
    assert tok.text == "fragColor"


def test_keywords_and_types_distinguished():
    toks = tokenize("uniform vec4 color;")
    assert toks[0].kind is TokenKind.KEYWORD
    assert toks[1].kind is TokenKind.TYPE
    assert toks[2].kind is TokenKind.IDENT


@pytest.mark.parametrize("text,kind", [
    ("1", TokenKind.INT),
    ("42u", TokenKind.INT),
    ("1.0", TokenKind.FLOAT),
    ("0.5f", TokenKind.FLOAT),
    (".25", TokenKind.FLOAT),
    ("1e3", TokenKind.FLOAT),
    ("2.5e-4", TokenKind.FLOAT),
    ("3E+2", TokenKind.FLOAT),
])
def test_number_literals(text, kind):
    (tok,) = tokenize(text)[:-1]
    assert tok.kind is kind
    assert tok.text == text


def test_bool_literals():
    toks = tokenize("true false")[:-1]
    assert all(t.kind is TokenKind.BOOL for t in toks)


@pytest.mark.parametrize("op", ["==", "!=", "<=", ">=", "&&", "||", "++",
                                "--", "+=", "-=", "*=", "/=", "^^"])
def test_multichar_operators(op):
    (tok,) = tokenize(op)[:-1]
    assert tok.kind is TokenKind.OP
    assert tok.text == op


def test_greedy_operator_matching():
    assert texts("a+=b") == ["a", "+=", "b"]
    assert texts("a+ =b") == ["a", "+", "=", "b"]
    assert texts("i++;") == ["i", "++", ";"]


def test_line_and_column_tracking():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_line_comment_skipped():
    assert texts("a // comment\nb") == ["a", "b"]


def test_block_comment_skipped_and_lines_counted():
    toks = tokenize("a /* x\ny */ b")
    assert toks[1].text == "b"
    assert toks[1].line == 2


def test_unterminated_block_comment_raises():
    with pytest.raises(LexerError):
        tokenize("a /* never closed")


def test_directive_rejected():
    with pytest.raises(LexerError):
        tokenize("#define X 1")


def test_unexpected_character_raises():
    with pytest.raises(LexerError):
        tokenize("a @ b")


def test_swizzle_tokenizes_as_dot_ident():
    assert texts("v.xyz") == ["v", ".", "xyz"]


def test_float_then_member_not_confused():
    # `1.x` lexes as float "1." followed by ident (GLSL would reject later).
    toks = texts("v2.x")
    assert toks == ["v2", ".", "x"]
