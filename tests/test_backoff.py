"""The dispatch backoff policy: pure, deterministic, and fake-clock-driven.

None of these tests sleep: the policy only computes delays, and the
dispatcher test injects a fake clock/sleep pair, so the whole retry
schedule replays in microseconds.
"""

import time

import pytest

from repro.dispatch import BackoffPolicy, ShardDispatcher
from repro.dispatch.transport import ShardHandle, Transport


# ---------------------------------------------------------------------------
# The pure policy
# ---------------------------------------------------------------------------


def test_delay_is_deterministic_per_seed_shard_attempt():
    policy = BackoffPolicy(seed=2018)
    assert policy.delay(1, 1) == policy.delay(1, 1)
    assert BackoffPolicy(seed=2018).delay(3, 2) == policy.delay(3, 2)
    # The jitter hash keys on the study seed: a different seed reshuffles
    # the whole schedule.
    assert BackoffPolicy(seed=1).delay(1, 1) != BackoffPolicy(seed=2).delay(1, 1)
    # …and on the shard index, so concurrent retries de-synchronize.
    assert policy.delay(1, 1) != policy.delay(2, 1)


def test_delay_follows_the_exponential_curve_within_jitter():
    policy = BackoffPolicy(base=0.5, factor=2.0, cap=30.0, jitter=0.5, seed=9,
                           max_attempts=10)
    for shard in (1, 2, 3):
        for attempt in (1, 2, 3, 4):
            raw = min(30.0, 0.5 * 2.0 ** (attempt - 1))
            delay = policy.delay(shard, attempt)
            assert raw * 0.5 <= delay <= raw


def test_delay_caps():
    policy = BackoffPolicy(base=1.0, factor=10.0, cap=5.0, jitter=0.0,
                           max_attempts=10)
    assert policy.delay(1, 1) == 1.0
    assert policy.delay(1, 2) == 5.0        # 10.0 capped
    assert policy.delay(1, 9) == 5.0


def test_allows_caps_attempts():
    policy = BackoffPolicy(max_attempts=3)
    assert policy.allows(1) and policy.allows(3)
    assert not policy.allows(4)
    assert len(policy.schedule(1)) == 2     # one initial + two retries


def test_policy_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        BackoffPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="jitter"):
        BackoffPolicy(jitter=1.5)
    with pytest.raises(ValueError, match="backoff curve"):
        BackoffPolicy(factor=0.5)
    with pytest.raises(ValueError, match="1-based"):
        BackoffPolicy().delay(1, 0)


# ---------------------------------------------------------------------------
# The dispatcher drives the schedule against a fake clock
# ---------------------------------------------------------------------------


class FakeClock:
    """A monotonic clock whose only driver is the injected sleep."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


class _FailingHandle(ShardHandle):
    def poll(self):
        return 1

    def kill(self) -> None:
        pass


class AlwaysFailTransport(Transport):
    """Every launch dies instantly; records (shard, fake time) per launch."""

    name = "always-fail"

    def __init__(self, clock: FakeClock):
        self.clock = clock
        self.launches = []

    def launch(self, task):
        self.launches.append((task.index, self.clock.now))
        return _FailingHandle()


def test_dispatcher_replays_the_policy_schedule_without_sleeping(tmp_path):
    from repro.harness.results import ShaderCase

    clock = FakeClock()
    transport = AlwaysFailTransport(clock)
    policy = BackoffPolicy(base=10.0, factor=2.0, jitter=0.5, seed=9,
                           max_attempts=3)
    cases = [ShaderCase(name="t", family="t",
                        source="void main() { gl_FragColor = vec4(1.0); }")]
    dispatcher = ShardDispatcher(
        cases=cases, shard_count=2, transport=transport,
        state_dir=tmp_path / "state", seed=9, policy=policy, workers=2,
        poll_interval=0.5, clock=clock, sleep=clock.sleep)

    wall_start = time.perf_counter()
    report = dispatcher.run()
    assert time.perf_counter() - wall_start < 2.0   # fake time only

    assert sorted(report.failed) == [1, 2]
    assert report.attempts == {1: 3, 2: 3}
    assert report.retries == 4                      # 2 retries per shard
    assert not report.complete

    # Each relaunch lands at (or just past, by poll granularity) the
    # deterministic due time the policy computed.
    for shard in (1, 2):
        times = [at for index, at in transport.launches if index == shard]
        assert len(times) == 3
        for attempt, (prev, later) in enumerate(zip(times, times[1:]),
                                                start=1):
            due = prev + policy.delay(shard, attempt)
            assert due <= later <= due + 3 * 0.5 + 1e-9
    # The fake clock really advanced through the backoff waits.
    assert clock.now >= max(sum(policy.schedule(shard)) for shard in (1, 2))
