"""Sharded studies, the merge path, and the streaming result cache."""

import json

import pytest

from repro.corpus import default_corpus
from repro.gpu.vendors import INTEL, NVIDIA
from repro.harness.results import (
    ShardInfo, StudyResult, merge_study_results,
)
from repro.harness.study import ShardSpec, StudyConfig, run_study
from repro.search.cache import ResultCache


def _corpus():
    return default_corpus(families=["sprite", "fog", "flat"],
                          synth_seed=3, synth_count=2)


# ---------------------------------------------------------------------------
# ShardSpec
# ---------------------------------------------------------------------------


def test_shard_spec_parse_and_select():
    spec = ShardSpec.parse("2/3")
    assert (spec.index, spec.count) == (2, 3)
    assert spec.select(8) == [1, 4, 7]
    assert str(spec) == "2/3"
    covered = sorted(i for n in (1, 2, 3)
                     for i in ShardSpec(n, 3).select(10))
    assert covered == list(range(10))


@pytest.mark.parametrize("bad", ["", "3", "0/3", "4/3", "a/b", "1/0", "1/-2"])
def test_shard_spec_rejects_malformed(bad):
    with pytest.raises(ValueError):
        ShardSpec.parse(bad)


def test_shard_spec_range_errors_are_precise():
    """Well-formed but out-of-range specs get the range message, not the
    format one."""
    with pytest.raises(ValueError, match="shard index must be in 1..3"):
        ShardSpec.parse("0/3")
    with pytest.raises(ValueError, match="must look like 'I/N'"):
        ShardSpec.parse("one/3")


# ---------------------------------------------------------------------------
# Shard determinism: the acceptance criterion
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def whole_study():
    return run_study(_corpus(), StudyConfig(platforms=[INTEL, NVIDIA], seed=9))


def test_three_shard_merge_is_byte_identical(whole_study):
    parts = []
    for i in (1, 2, 3):
        part = run_study(_corpus(), StudyConfig(
            platforms=[INTEL, NVIDIA], seed=9, shard=ShardSpec(i, 3)))
        assert part.shard is not None
        # Round-trip through JSON, exactly as the CLI hands shards around.
        parts.append(StudyResult.from_json(part.to_json()))
    merged = merge_study_results(parts)
    assert merged.to_json() == whole_study.to_json()


def test_shard_json_roundtrips_shard_info(whole_study):
    part = run_study(_corpus(), StudyConfig(
        platforms=[INTEL], seed=9, shard=ShardSpec(2, 3)))
    back = StudyResult.from_json(part.to_json())
    assert back.shard == part.shard
    assert back.shard.case_indices == ShardSpec(2, 3).select(len(_corpus()))
    # Unsharded results must serialize without a shard key at all.
    assert "shard" not in json.loads(whole_study.to_json())


def test_merge_rejects_incomplete_and_mismatched_shards(whole_study):
    p1 = run_study(_corpus(), StudyConfig(
        platforms=[INTEL], seed=9, shard=ShardSpec(1, 3)))
    p2 = run_study(_corpus(), StudyConfig(
        platforms=[INTEL], seed=9, shard=ShardSpec(2, 3)))
    with pytest.raises(ValueError, match="all 3 shards"):
        merge_study_results([p1, p2])
    with pytest.raises(ValueError, match="duplicate shard"):
        merge_study_results([p1, p1])
    with pytest.raises(ValueError, match="no shard metadata"):
        merge_study_results([whole_study])
    p2_other_seed = run_study(_corpus(), StudyConfig(
        platforms=[INTEL], seed=10, shard=ShardSpec(2, 3)))
    with pytest.raises(ValueError, match="seeds differ"):
        merge_study_results([p1, p2_other_seed])
    with pytest.raises(ValueError):
        merge_study_results([])


def test_partial_merge_relaxes_only_the_coverage_check():
    """require_complete=False is the dispatcher's graceful-degradation
    path: available shards merge, everything else still validates."""
    p1 = run_study(_corpus(), StudyConfig(
        platforms=[INTEL], seed=9, shard=ShardSpec(1, 3)))
    p3 = run_study(_corpus(), StudyConfig(
        platforms=[INTEL], seed=9, shard=ShardSpec(3, 3)))
    partial = merge_study_results([p1, p3], require_complete=False)
    assert len(partial.shaders) == len(p1.shaders) + len(p3.shaders)
    # Global-index order is preserved across the gap.
    full = run_study(_corpus(), StudyConfig(platforms=[INTEL], seed=9))
    covered = sorted(ShardSpec(1, 3).select(len(_corpus()))
                     + ShardSpec(3, 3).select(len(_corpus())))
    expected = [full.shaders[i] for i in covered]
    assert [s.name for s in partial.shaders] == [s.name for s in expected]
    # Duplicates are still rejected even in partial mode.
    with pytest.raises(ValueError, match="duplicate shard"):
        merge_study_results([p1, p1], require_complete=False)


def test_merge_rejects_shards_from_different_corpora():
    """Two shards over different --synth-seed corpora share names and
    indices but not content; the corpus digest must catch it."""
    picked = ["flat", "synth_00000", "synth_00001"]
    corpus_a = default_corpus(families=picked, synth_seed=1, synth_count=2)
    corpus_b = default_corpus(families=picked, synth_seed=99, synth_count=2)
    p1 = run_study(corpus_a, StudyConfig(
        platforms=[INTEL], seed=9, shard=ShardSpec(1, 2)))
    p2 = run_study(corpus_b, StudyConfig(
        platforms=[INTEL], seed=9, shard=ShardSpec(2, 2)))
    with pytest.raises(ValueError, match="different corpora"):
        merge_study_results([p1, p2])


def test_shard_info_validate():
    with pytest.raises(ValueError):
        ShardInfo(index=4, count=3, case_indices=[]).validate(0)
    with pytest.raises(ValueError):
        ShardInfo(index=1, count=3, case_indices=[0, 3]).validate(5)


# ---------------------------------------------------------------------------
# Streaming (.jsonl) cache
# ---------------------------------------------------------------------------


def test_jsonl_cache_appends_incrementally(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(path)
    cache.put("k1", {"mean_ns": 1.0})
    cache.save()
    first = path.read_text().splitlines()
    assert json.loads(first[0])["version"] >= 1
    assert len(first) == 2          # header + one record, already on disk
    cache.put("k2", {"mean_ns": 2.0})
    cache.save()
    assert len(path.read_text().splitlines()) == 3
    reloaded = ResultCache(path)
    assert reloaded.get("k1") == {"mean_ns": 1.0}
    assert reloaded.get("k2") == {"mean_ns": 2.0}


def test_jsonl_cache_tolerates_torn_tail(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(path)
    cache.put("k1", {"mean_ns": 1.0})
    cache.save()
    with open(path, "a") as handle:
        handle.write('{"k": "k2", "v": {"mean_ns"')     # killed mid-write
    reloaded = ResultCache(path)
    assert reloaded.get("k1") == {"mean_ns": 1.0}
    assert reloaded.get("k2") is None


def test_jsonl_cache_appends_safely_after_torn_tail(tmp_path):
    """A resumed writer must not glue its first record onto the torn
    fragment — that would silently lose the new record on every reload."""
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(path)
    cache.put("k1", {"mean_ns": 1.0})
    cache.save()
    with open(path, "a") as handle:
        handle.write('{"k": "k2", "v": {"mean_ns"')     # killed mid-write
    resumed = ResultCache(path)
    resumed.put("k3", {"mean_ns": 3.0})
    resumed.save()
    reloaded = ResultCache(path)
    assert reloaded.get("k1") == {"mean_ns": 1.0}
    assert reloaded.get("k3") == {"mean_ns": 3.0}


def test_jsonl_cache_discards_wrong_version(tmp_path):
    path = tmp_path / "cache.jsonl"
    path.write_text('{"version": 999}\n{"k": "k1", "v": {"mean_ns": 1.0}}\n')
    cache = ResultCache(path)
    assert len(cache) == 0
    cache.put("k2", {"mean_ns": 2.0})
    cache.save()
    lines = path.read_text().splitlines()
    assert json.loads(lines[0])["version"] != 999       # rewritten, not appended
    assert ResultCache(path).get("k1") is None


def test_jsonl_cache_persists_variant_sets(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(path)
    cache.put_variants("digest", {0: "a", 1: "a", 2: "b"})
    cache.release_variants("digest")                    # evicted from memory…
    assert cache.get_variants("digest") is None
    reloaded = ResultCache(path)                        # …but on disk
    assert reloaded.get_variants("digest") == {0: "a", 1: "a", 2: "b"}


def test_cache_merge_from_unions_and_detects_conflicts(tmp_path):
    a = ResultCache(tmp_path / "a.jsonl")
    a.put("k1", {"mean_ns": 1.0})
    a.save()
    b = ResultCache(tmp_path / "b.json")
    b.put("k1", {"mean_ns": 1.0})
    b.put("k2", {"mean_ns": 2.0})
    b.save()
    merged = ResultCache(tmp_path / "m.json")
    assert merged.merge_from(tmp_path / "a.jsonl") == 1
    assert merged.merge_from(tmp_path / "b.json") == 1  # k1 already present
    assert len(merged) == 2
    conflicting = ResultCache()
    conflicting.put("k1", {"mean_ns": 999.0})
    with pytest.raises(ValueError, match="conflict"):
        merged.merge_from(conflicting)


def test_cache_merge_conflict_names_key_and_both_digests(tmp_path):
    """The conflict error must carry enough to debug the damaged store:
    the offending key and a content digest of each side's value."""
    import hashlib

    mine = ResultCache()
    mine.put("k-damaged", {"mean_ns": 1.0})
    theirs = ResultCache()
    theirs.put("k-damaged", {"mean_ns": 2.0})

    def digest(value):
        blob = json.dumps(value, sort_keys=True, default=repr).encode()
        return hashlib.sha256(blob).hexdigest()[:12]

    with pytest.raises(ValueError) as excinfo:
        mine.merge_from(theirs)
    message = str(excinfo.value)
    assert "'k-damaged'" in message
    assert digest({"mean_ns": 1.0}) in message
    assert digest({"mean_ns": 2.0}) in message


def test_jsonl_cache_warns_on_interior_corruption(tmp_path, caplog):
    """A corrupt record *mid-file* (real damage, not a torn tail) is
    skipped with a logged warning; everything around it still loads."""
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(path)
    cache.put("k1", {"mean_ns": 1.0})
    cache.put("k2", {"mean_ns": 2.0})
    cache.save()
    lines = path.read_text().splitlines()
    lines[2] = "#### corrupted interior record ####"         # damage k2
    path.write_text("\n".join(lines) + "\n")

    with caplog.at_level("WARNING", logger="repro.search.cache"):
        reloaded = ResultCache(path)
    assert reloaded.get("k1") == {"mean_ns": 1.0}
    assert reloaded.get("k2") is None
    assert any("corrupt record on line 3" in rec.getMessage()
               for rec in caplog.records)

    # The torn *tail* path stays silent — it is expected, not damage.
    clean = tmp_path / "torn-only.jsonl"
    torn_cache = ResultCache(clean)
    torn_cache.put("k1", {"mean_ns": 1.0})
    torn_cache.save()
    with open(clean, "a") as handle:
        handle.write('{"k": "k3", "v": {"mean')
    caplog.clear()
    with caplog.at_level("WARNING", logger="repro.search.cache"):
        ResultCache(clean)
    assert not caplog.records


# ---------------------------------------------------------------------------
# Streaming study: checkpoints, memo release, warm replay
# ---------------------------------------------------------------------------


def test_streaming_study_checkpoints_and_replays(tmp_path):
    path = tmp_path / "stream.jsonl"
    corpus = _corpus()
    from repro.search.engine import EvaluationEngine
    engine = EvaluationEngine(platforms=[INTEL], seed=9, cache=ResultCache(path))
    cold = run_study(corpus, StudyConfig(platforms=[INTEL], seed=9,
                                         checkpoint_every=2),
                     engine=engine)
    # Per-case release keeps the engine's compiled memos empty.
    assert engine._variant_sets == {}
    assert engine._texts == {}
    assert engine.compile_count == 256 * len(corpus)

    warm_engine = EvaluationEngine(platforms=[INTEL], seed=9,
                                   cache=ResultCache(path))
    warm = run_study(corpus, StudyConfig(platforms=[INTEL], seed=9),
                     engine=warm_engine)
    assert warm.to_json() == cold.to_json()
    assert warm_engine.compile_count == 0
    assert warm_engine.measure_count == 0


def test_parallel_streaming_primes_in_chunks(tmp_path, monkeypatch):
    """Parallel + checkpoint_every primes bounded chunks (byte-identical
    results, memos released), instead of installing the whole corpus's
    variant sets up front."""
    import repro.harness.study as study_mod
    from repro.search.engine import EvaluationEngine

    corpus = _corpus()
    serial = run_study(corpus, StudyConfig(platforms=[INTEL], seed=9))

    prime_sizes = []
    real_prime = study_mod._prime_engine

    def spying_prime(cases, indices, *rest):
        prime_sizes.append(len(cases))
        return real_prime(cases, indices, *rest)

    monkeypatch.setattr(study_mod, "_prime_engine", spying_prime)
    engine = EvaluationEngine(platforms=[INTEL], seed=9,
                              cache=ResultCache(tmp_path / "s.jsonl"))
    parallel = run_study(corpus, StudyConfig(
        platforms=[INTEL], seed=9, max_workers=2, checkpoint_every=1),
        engine=engine)
    assert parallel.to_json() == serial.to_json()
    assert prime_sizes and max(prime_sizes) <= 2   # checkpoint_every x workers
    assert engine._variant_sets == {}              # released as cases finish


def test_sharded_streaming_caches_merge_warm(tmp_path):
    """Shard caches merged into one store replay the whole study for free."""
    corpus = _corpus()
    from repro.search.engine import EvaluationEngine
    for i in (1, 2, 3):
        run_study(corpus, StudyConfig(
            platforms=[INTEL], seed=9, shard=ShardSpec(i, 3),
            cache_path=str(tmp_path / f"s{i}.jsonl"), checkpoint_every=1))
    merged = ResultCache(tmp_path / "merged.json")
    for i in (1, 2, 3):
        merged.merge_from(tmp_path / f"s{i}.jsonl")
    merged.save()
    engine = EvaluationEngine(platforms=[INTEL], seed=9,
                              cache=ResultCache(tmp_path / "merged.json"))
    run_study(corpus, StudyConfig(platforms=[INTEL], seed=9), engine=engine)
    assert engine.compile_count == 0
    assert engine.measure_count == 0
