"""Delta-debugging minimizer tests: identical failure, 1-minimality."""

import subprocess
import sys
from pathlib import Path

from repro.glsl.minimize import (FailureSignature, failure_of,
                                 minimize_source, write_reproducer)

BROKEN = Path("examples/broken/interface_block.frag").read_text()

CLEAN = "out float r;\nvoid main() { r = 1.0; }\n"


def test_failure_signature_masks_positions():
    sig_a = FailureSignature.of_exception(ValueError("line 4: bad token"))
    sig_b = FailureSignature.of_exception(ValueError("line 9, col 2: bad token"))
    assert sig_a.message == "line N: bad token"
    assert sig_b.message == "line N, col N: bad token"
    assert sig_a != sig_b
    assert sig_a == FailureSignature.of_exception(
        ValueError("line 40: bad token"))


def test_clean_source_has_no_failure():
    assert failure_of(CLEAN) is None
    assert minimize_source(CLEAN) is None


def test_minimized_source_fails_identically():
    original = failure_of(BROKEN)
    assert original is not None
    result = minimize_source(BROKEN)
    assert result is not None
    assert result.signature == FailureSignature.of_exception(original)
    shrunk = failure_of(result.minimized)
    assert FailureSignature.of_exception(shrunk) == result.signature
    assert result.minimized_lines <= result.original_lines


def test_minimized_source_is_one_minimal():
    result = minimize_source(BROKEN)
    lines = result.minimized.splitlines()
    assert lines
    for i in range(len(lines)):
        reduced = "\n".join(lines[:i] + lines[i + 1:])
        exc = failure_of(reduced)
        sig = FailureSignature.of_exception(exc) if exc is not None else None
        assert sig != result.signature, (
            f"line {i + 1} of the minimized reproducer is removable")


def test_write_reproducer_emits_shader_and_passing_test(tmp_path):
    result = minimize_source(BROKEN)
    shader_path, test_path = write_reproducer(result, tmp_path, "broken-input")
    assert shader_path.name == "broken_input.min.frag"
    assert test_path.name == "test_broken_input.py"
    assert shader_path.read_text() == result.minimized + "\n"
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", str(test_path)],
        capture_output=True, text=True, cwd=str(tmp_path),
        env={"PYTHONPATH": str(Path("src").resolve()), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_minimizer_reports_probe_count():
    result = minimize_source(BROKEN)
    assert result.probes > 0
    assert result.error_message
