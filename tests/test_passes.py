"""Per-pass unit tests: each flag pass does its documented rewrite."""

import pytest

from helpers import assert_outputs_close, run_source
from repro.core import ShaderCompiler, compile_shader
from repro.ir import Interpreter, verify_function
from repro.ir.instructions import (
    BinOp, CondBr, Construct, InsertElem, Phi, Sample, Select,
)
from repro.passes import DEFAULT_LUNARGLASS, OptimizationFlags


def compiled(source, **flags):
    return compile_shader(source, OptimizationFlags(**flags))


def instrs(c, cls):
    return [i for i in c.module.function.instructions() if isinstance(i, cls)]


# ---------------------------------------------------------------------------
# Canonical always-on passes
# ---------------------------------------------------------------------------


def test_constant_folding_always_on():
    c = compiled("out vec4 f;\nvoid main() { f = vec4(2.0 * 3.0 + 1.0); }")
    assert not instrs(c, BinOp)
    assert "7.0" in c.output


def test_builtin_constant_folding():
    c = compiled("out vec4 f;\nvoid main() { f = vec4(sqrt(16.0)); }")
    assert "4.0" in c.output
    assert "sqrt" not in c.output


def test_local_cse_always_on():
    c = compiled("""
uniform vec4 a;
out vec4 f;
void main() { f = (a * a) + (a * a); }
""")
    muls = [i for i in instrs(c, BinOp) if i.op == "mul"]
    assert len(muls) == 1


def test_dead_code_removed_always():
    c = compiled("""
uniform vec4 a;
out vec4 f;
void main() { vec4 dead = a * 17.0; f = vec4(1.0); }
""")
    assert not instrs(c, BinOp)


def test_int_identities_folded_but_float_kept():
    c = compiled("""
uniform float x;
out vec4 f;
void main() {
    int i = 3 + 0;
    f = vec4(x + 0.0) * float(i);
}
""")
    # float x + 0.0 must SURVIVE the canonical pipeline (it belongs to the
    # reassociation flag passes per the paper).
    adds = [i for i in instrs(c, BinOp) if i.op == "add"]
    assert len(adds) == 1


# ---------------------------------------------------------------------------
# ADCE
# ---------------------------------------------------------------------------


def test_adce_never_changes_output(blur_shader):
    """Paper Section VI-D-1: ADCE in practice never changes the source."""
    sc = ShaderCompiler(blur_shader)
    for base_index in (0, 2, 16, 50):
        base = OptimizationFlags.from_index(base_index)
        with_adce = base.with_flag("adce", True)
        assert sc.compile(base).output == sc.compile(with_adce).output


# ---------------------------------------------------------------------------
# Unroll
# ---------------------------------------------------------------------------


def test_unroll_eliminates_loop():
    c = compiled("""
out vec4 f;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 4; i++) { acc += float(i); }
    f = vec4(acc);
}
""", unroll=True)
    assert not instrs(c, Phi)
    assert not instrs(c, CondBr)
    # acc fully constant-folds: 0+1+2+3 = 6
    assert "6.0" in c.output


def test_unroll_preserves_semantics():
    src = """
uniform sampler2D t;
in vec2 uv;
out vec4 f;
void main() {
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 7; i++) { acc += texture(t, uv + vec2(float(i) * 0.01, 0.0)); }
    f = acc / 7.0;
}
"""
    base = run_source(src, inputs={"uv": (0.2, 0.4)})
    opt = run_source(src, OptimizationFlags.single("unroll"),
                     inputs={"uv": (0.2, 0.4)})
    assert_outputs_close(base, opt, tol=1e-9)


def test_unroll_respects_trip_limit():
    c = compiled("""
out vec4 f;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 100; i++) { acc += 1.0; }
    f = vec4(acc);
}
""", unroll=True)
    assert instrs(c, Phi)  # 100 > MAX_TRIPS stays a loop


def test_unroll_skips_dynamic_bounds():
    c = compiled("""
uniform int n;
out vec4 f;
void main() {
    float acc = 0.0;
    for (int i = 0; i < n; i++) { acc += 1.0; }
    f = vec4(acc);
}
""", unroll=True)
    assert instrs(c, Phi)


def test_unroll_skips_loops_with_break():
    c = compiled("""
uniform float u;
out vec4 f;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 4; i++) {
        if (u > 0.5) { break; }
        acc += 1.0;
    }
    f = vec4(acc);
}
""", unroll=True)
    assert instrs(c, Phi)


def test_unroll_nested_loops():
    src = """
out vec4 f;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 3; j++) { acc += float(i * 3 + j); }
    }
    f = vec4(acc);
}
"""
    c = compiled(src, unroll=True)
    assert not instrs(c, Phi)
    assert "36.0" in c.output  # sum 0..8


def test_unroll_folds_const_array_loads(blur_shader):
    c = compile_shader(blur_shader, OptimizationFlags(unroll=True))
    from repro.ir.instructions import LoadElem
    assert not instrs(c, LoadElem)
    assert len(instrs(c, Sample)) == 9


# ---------------------------------------------------------------------------
# Hoist
# ---------------------------------------------------------------------------


def test_hoist_flattens_diamond_to_select():
    c = compiled("""
uniform float u;
out vec4 f;
void main() {
    float x = 0.0;
    if (u > 0.5) { x = 1.0; } else { x = 2.0; }
    f = vec4(x);
}
""", hoist=True)
    assert not instrs(c, CondBr)
    assert len(instrs(c, Select)) == 1


def test_hoist_flattens_triangle():
    c = compiled("""
uniform float u;
out vec4 f;
void main() {
    float x = 3.0;
    if (u > 0.5) { x = 1.0; }
    f = vec4(x);
}
""", hoist=True)
    assert not instrs(c, CondBr)


def test_hoist_preserves_semantics_both_paths():
    src = """
uniform float u;
out vec4 f;
void main() {
    float x = 0.0;
    if (u > 0.5) { x = u * 3.0; } else { x = u - 5.0; }
    f = vec4(x);
}
"""
    for u in (0.2, 0.9):
        base = run_source(src, uniforms={"u": u})
        opt = run_source(src, OptimizationFlags.single("hoist"),
                         uniforms={"u": u})
        assert_outputs_close(base, opt)


def test_hoist_speculates_texture_fetches():
    c = compiled("""
uniform sampler2D t;
uniform float u;
in vec2 uv;
out vec4 f;
void main() {
    vec4 x = vec4(0.1);
    if (u > 0.5) { x = texture(t, uv); }
    f = x;
}
""", hoist=True)
    assert not instrs(c, CondBr)
    assert len(instrs(c, Sample)) == 1


def test_hoist_leaves_discard_branches_alone():
    c = compiled("""
uniform float u;
out vec4 f;
void main() {
    if (u > 0.5) { discard; }
    f = vec4(1.0);
}
""", hoist=True)
    assert instrs(c, CondBr)  # discard is a side effect: not hoistable


def test_hoist_merges_blocks_into_large_block():
    c = compiled("""
uniform float u;
out vec4 f;
void main() {
    float x = 0.0;
    if (u > 0.5) { x = 1.0; } else { x = 2.0; }
    f = vec4(x);
}
""", hoist=True)
    assert len(c.module.function.blocks) == 1


# ---------------------------------------------------------------------------
# Reassociate (integer + float zero identities)
# ---------------------------------------------------------------------------


def test_reassociate_removes_float_add_zero():
    src = """
uniform float x;
out vec4 f;
void main() { f = vec4(x + 0.0); }
"""
    base = compile_shader(src, OptimizationFlags.none())
    opt = compile_shader(src, OptimizationFlags.single("reassociate"))
    assert len(instrs(opt, BinOp)) < len(instrs(base, BinOp))


def test_reassociate_folds_float_mul_zero():
    c = compiled("""
uniform float x;
out vec4 f;
void main() { f = vec4(x * 0.0 + 1.0); }
""", reassociate=True)
    assert "1.0" in c.output
    assert not instrs(c, BinOp)


def test_reassociate_groups_int_constants():
    src = """
uniform int n;
out vec4 f;
void main() { f = vec4(float((n + 2) + 3)); }
"""
    opt = compile_shader(src, OptimizationFlags.single("reassociate"))
    adds = [i for i in instrs(opt, BinOp) if i.op == "add"]
    assert len(adds) == 1  # n + 5


# ---------------------------------------------------------------------------
# FP Reassociate
# ---------------------------------------------------------------------------


def test_fp_reassociate_factors_common_multiplier():
    src = """
uniform vec4 a;
uniform vec4 b;
uniform vec4 c;
out vec4 f;
void main() { f = a * b + a * c; }
"""
    base = compile_shader(src, OptimizationFlags.none())
    opt = compile_shader(src, OptimizationFlags.single("fp_reassociate"))
    base_muls = [i for i in instrs(base, BinOp) if i.op == "mul"]
    opt_muls = [i for i in instrs(opt, BinOp) if i.op == "mul"]
    assert len(opt_muls) == len(base_muls) - 1


def test_fp_reassociate_collapses_repeated_addends():
    src = """
uniform float a;
out vec4 f;
void main() { f = vec4(a + a + a); }
"""
    opt = compile_shader(src, OptimizationFlags.single("fp_reassociate"))
    # a + a + a -> 3a: one multiply, no adds
    assert not [i for i in instrs(opt, BinOp) if i.op == "add"]
    assert "3.0" in opt.output


def test_fp_reassociate_cancellation():
    src = """
uniform float a;
uniform float b;
out vec4 f;
void main() { f = vec4(a + b - a); }
"""
    opt = compile_shader(src, OptimizationFlags.single("fp_reassociate"))
    assert not instrs(opt, BinOp)  # just b


def test_fp_reassociate_groups_scalars_before_vectorizing():
    src = """
uniform float f1;
uniform float f2;
uniform vec4 v;
out vec4 f;
void main() { f = f1 * (f2 * v); }
"""
    base = compile_shader(src, OptimizationFlags.none())
    opt = compile_shader(src, OptimizationFlags.single("fp_reassociate"))
    base_vec_muls = [i for i in instrs(base, BinOp)
                     if i.op == "mul" and i.ty.is_vector]
    opt_vec_muls = [i for i in instrs(opt, BinOp)
                    if i.op == "mul" and i.ty.is_vector]
    opt_scalar_muls = [i for i in instrs(opt, BinOp)
                       if i.op == "mul" and i.ty.is_scalar]
    assert len(base_vec_muls) == 2
    assert len(opt_vec_muls) == 1
    assert len(opt_scalar_muls) == 1


def test_fp_reassociate_groups_constants():
    src = """
uniform vec4 v;
out vec4 f;
void main() { f = 2.0 * (4.0 * v); }
"""
    opt = compile_shader(src, OptimizationFlags.single("fp_reassociate"))
    assert "8.0" in opt.output
    assert len([i for i in instrs(opt, BinOp) if i.op == "mul"]) == 1


def test_fp_reassociate_removes_mul_one():
    src = """
uniform vec4 v;
out vec4 f;
void main() { f = v * 1.0; }
"""
    opt = compile_shader(src, OptimizationFlags.single("fp_reassociate"))
    assert not instrs(opt, BinOp)


def test_fp_reassociate_semantics_within_tolerance(blur_shader):
    env = {"uniforms": {"ambient": (0.5, 0.5, 0.5, 0.5)},
           "inputs": {"uv": (0.4, 0.6)}}
    base = run_source(blur_shader, OptimizationFlags.none(), **env)
    opt = run_source(blur_shader, OptimizationFlags.single("fp_reassociate"),
                     **env)
    assert_outputs_close(base, opt, tol=1e-4)  # unsafe: small drift allowed


# ---------------------------------------------------------------------------
# Div-to-Mul
# ---------------------------------------------------------------------------


def test_div_to_mul_rewrites_constant_divisor():
    src = """
uniform vec4 v;
out vec4 f;
void main() { f = v / 4.0; }
"""
    opt = compile_shader(src, OptimizationFlags.single("div_to_mul"))
    assert not [i for i in instrs(opt, BinOp) if i.op == "div"]
    assert "0.25" in opt.output


def test_div_to_mul_skips_dynamic_divisor():
    src = """
uniform vec4 v;
uniform float d;
out vec4 f;
void main() { f = v / d; }
"""
    opt = compile_shader(src, OptimizationFlags.single("div_to_mul"))
    assert [i for i in instrs(opt, BinOp) if i.op == "div"]


def test_div_to_mul_skips_zero_component():
    src = """
uniform vec2 v;
out vec4 f;
void main() { f = vec4(v / vec2(2.0, 0.0), 0.0, 1.0); }
"""
    opt = compile_shader(src, OptimizationFlags.single("div_to_mul"))
    assert [i for i in instrs(opt, BinOp) if i.op == "div"]


# ---------------------------------------------------------------------------
# GVN
# ---------------------------------------------------------------------------


def test_gvn_merges_across_blocks():
    # a*a is computed in the entry block AND in a dominated branch block;
    # local CSE cannot see across the blocks, dominator-scoped GVN can.
    src = """
uniform vec4 a;
uniform float u;
out vec4 f;
void main() {
    vec4 y = a * a;
    vec4 x = y;
    if (u > 0.5) { x = a * a + vec4(1.0); }
    f = x + y;
}
"""
    base = compile_shader(src, OptimizationFlags.none())
    opt = compile_shader(src, OptimizationFlags.single("gvn"))
    base_muls = [i for i in instrs(base, BinOp) if i.op == "mul"]
    opt_muls = [i for i in instrs(opt, BinOp) if i.op == "mul"]
    assert len(base_muls) == 2
    assert len(opt_muls) == 1


def test_gvn_respects_commutativity():
    src = """
uniform vec4 a;
uniform vec4 b;
out vec4 f;
void main() { f = (a * b) + (b * a); }
"""
    opt = compile_shader(src, OptimizationFlags.single("gvn"))
    assert len([i for i in instrs(opt, BinOp) if i.op == "mul"]) == 1


# ---------------------------------------------------------------------------
# Coalesce
# ---------------------------------------------------------------------------


def test_coalesce_merges_insert_chain():
    src = """
uniform float a;
uniform float b;
out vec4 f;
void main() {
    vec4 v = vec4(0.0);
    v.x = a;
    v.y = b;
    v.z = a + b;
    v.w = 1.0;
    f = v;
}
"""
    base = compile_shader(src, OptimizationFlags.none())
    opt = compile_shader(src, OptimizationFlags.single("coalesce"))
    assert instrs(base, InsertElem)
    assert not instrs(opt, InsertElem)
    assert instrs(opt, Construct)


def test_coalesce_preserves_semantics():
    src = """
uniform float a;
out vec4 f;
void main() {
    vec4 v = vec4(0.5);
    v.y = a * 2.0;
    v.w = a;
    f = v;
}
"""
    base = run_source(src, uniforms={"a": 0.3})
    opt = run_source(src, OptimizationFlags.single("coalesce"),
                     uniforms={"a": 0.3})
    assert_outputs_close(base, opt)


# ---------------------------------------------------------------------------
# Pipeline determinism
# ---------------------------------------------------------------------------


def test_compilation_is_deterministic(blur_shader):
    a = compile_shader(blur_shader, DEFAULT_LUNARGLASS).output
    b = compile_shader(blur_shader, DEFAULT_LUNARGLASS).output
    assert a == b


def test_flag_index_roundtrip():
    for index in range(256):
        flags = OptimizationFlags.from_index(index)
        assert flags.index == index


def test_default_lunarglass_flags_match_paper():
    assert DEFAULT_LUNARGLASS.enabled() == (
        "adce", "coalesce", "gvn", "reassociate", "unroll", "hoist")
