"""The fault-tolerant shard dispatcher: faults, retries, resume, merge.

The acceptance criterion threaded through these tests: with faults
injected (a worker killed mid-shard, a hang, a torn write), the dispatcher
retries and produces a merged study byte-identical to the unsharded run;
with retries exhausted it fails loudly with an explicit missing-shard
manifest; and a killed dispatcher resumes from its checkpoints.
"""

import json
import os

import pytest

from repro.corpus import CorpusSpec, default_corpus
from repro.dispatch import (
    BackoffPolicy, FaultPlan, FaultSpec, InjectedFault, ShardDispatcher,
    SubprocessTransport, ThreadTransport, fault_from_env, write_study_output,
)
from repro.gpu.vendors import INTEL
from repro.harness.study import StudyConfig, run_study
from repro.search.cache import ResultCache

CASES = default_corpus(max_shaders=4)
SEED = 9


@pytest.fixture(scope="module")
def baseline():
    """The unsharded study every merged result must byte-match."""
    return run_study(CASES, StudyConfig(platforms=[INTEL], seed=SEED))


def _dispatcher(tmp_path, **overrides):
    options = dict(
        cases=CASES, shard_count=2,
        transport=ThreadTransport(CASES, platforms=[INTEL],
                                  cache=ResultCache()),
        state_dir=tmp_path / "state", seed=SEED,
        policy=BackoffPolicy(base=0.01, cap=0.05, seed=SEED, max_attempts=3),
        poll_interval=0.005, workers=2)
    options.update(overrides)
    return ShardDispatcher(**options)


# ---------------------------------------------------------------------------
# Fault plans and the injection layer
# ---------------------------------------------------------------------------


def test_fault_plan_parses_the_full_grammar():
    plan = FaultPlan.parse("1:crash,2:hang@1, 3:torn@2 ,4:corrupt@*")
    assert plan.fault_for(1, 1) == "crash"
    assert plan.fault_for(1, 2) is None         # @1 is the default
    assert plan.fault_for(3, 2) == "torn"
    assert plan.fault_for(3, 1) is None
    assert plan.fault_for(4, 1) == "corrupt"
    assert plan.fault_for(4, 7) == "corrupt"    # @* = every attempt
    assert plan.fault_for(5, 1) is None
    assert FaultPlan.parse(str(plan)).fault_for(3, 2) == "torn"
    assert not FaultPlan.parse("")


@pytest.mark.parametrize("bad", ["1", "x:crash", "1:explode", "0:crash",
                                 "1:crash@0", "1:crash@x"])
def test_fault_plan_rejects_malformed(bad):
    with pytest.raises(ValueError):
        FaultPlan.parse(bad)


def test_fault_plan_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "2:crash")
    assert FaultPlan.from_env().fault_for(2, 1) == "crash"
    monkeypatch.delenv("REPRO_FAULTS")
    assert not FaultPlan.from_env()


def test_worker_fault_from_env(monkeypatch):
    assert fault_from_env({}) is None
    assert fault_from_env({"REPRO_FAULT": "torn"}) == "torn"
    with pytest.raises(ValueError, match="REPRO_FAULT"):
        fault_from_env({"REPRO_FAULT": "explode"})


def test_write_study_output_fault_shapes(tmp_path):
    import threading

    text = json.dumps({"payload": "x" * 200})
    event = threading.Event()

    clean = tmp_path / "clean.json"
    write_study_output(clean, text)
    assert clean.read_text() == text            # production path untouched

    torn = tmp_path / "torn.json"
    with pytest.raises(InjectedFault):
        write_study_output(torn, text, fault="torn", cancel_event=event)
    assert 0 < len(torn.read_text()) < len(text)

    crash = tmp_path / "crash.json"
    with pytest.raises(InjectedFault):
        write_study_output(crash, text, fault="crash", cancel_event=event)
    assert not crash.exists()

    corrupt = tmp_path / "corrupt.json"
    write_study_output(corrupt, text, fault="corrupt", cancel_event=event)
    damaged = corrupt.read_text()               # full-length but damaged…
    assert len(damaged) == len(text)
    with pytest.raises(json.JSONDecodeError):   # …and no longer JSON
        json.loads(damaged)

    event.set()                                 # a cancelled hang raises
    with pytest.raises(InjectedFault):
        write_study_output(tmp_path / "h.json", text, fault="hang",
                           cancel_event=event, hang_seconds=0.01)


def test_fault_spec_validates():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(shard=1, kind="explode")
    with pytest.raises(ValueError, match="1-based"):
        FaultSpec(shard=0, kind="crash")


# ---------------------------------------------------------------------------
# Thread transport end-to-end
# ---------------------------------------------------------------------------


def test_clean_dispatch_merges_byte_identical(tmp_path, baseline):
    report = _dispatcher(tmp_path).run()
    assert report.complete
    assert report.missing_shards == []
    assert report.retries == 0
    assert report.merged_path.read_text() == baseline.to_json()
    manifest = json.loads(report.manifest_path.read_text())
    assert manifest["complete"] is True
    assert manifest["missing"] == []
    assert manifest["shard_count"] == 2


def test_dispatch_recovers_from_crash_torn_and_corrupt(tmp_path, baseline):
    events = []
    report = _dispatcher(
        tmp_path, shard_count=3,
        faults=FaultPlan.parse("1:crash,2:torn,3:corrupt"),
        events=events.append).run()
    assert report.complete
    assert report.retries == 3
    assert report.attempts == {1: 2, 2: 2, 3: 2}
    assert report.merged_path.read_text() == baseline.to_json()
    retried = [e for e in events if e.get("state") == "retry"]
    assert sorted(e["shard"] for e in retried) == [1, 2, 3]
    errors = {e["shard"]: e["error"] for e in retried}
    assert "torn" in errors[2]
    # A corrupt output exits "successfully" — only validation catches it.
    assert "invalid shard output" in errors[3]


def test_dispatch_kills_and_retries_a_hung_shard(tmp_path, baseline):
    report = _dispatcher(
        tmp_path, faults=FaultPlan.parse("1:hang"),
        heartbeat_timeout=0.3).run()
    assert report.complete
    assert report.retries == 1
    assert report.attempts[1] == 2
    assert report.merged_path.read_text() == baseline.to_json()


def test_dispatch_timeout_kills_a_hung_shard(tmp_path, baseline):
    report = _dispatcher(
        tmp_path, faults=FaultPlan.parse("2:hang"), timeout=1.5).run()
    assert report.complete
    assert report.attempts[2] == 2
    assert report.merged_path.read_text() == baseline.to_json()


def test_exhausted_retries_fail_loudly_with_manifest(tmp_path):
    report = _dispatcher(
        tmp_path, faults=FaultPlan.parse("1:crash@*"),
        policy=BackoffPolicy(base=0.01, seed=SEED, max_attempts=2)).run()
    assert not report.complete
    assert report.missing_shards == [1]
    assert report.merged_path is None
    assert 1 in report.failed
    # Graceful degradation: the completed shard still merges partially…
    assert report.partial_path is not None and report.partial_path.exists()
    # …and the manifest records exactly what is missing and why.
    manifest = json.loads(report.manifest_path.read_text())
    assert manifest["complete"] is False
    assert manifest["missing"] == [
        {"shard": 1, "attempts": 2, "error": report.failed[1]}]
    assert manifest["partial"] == str(report.partial_path)
    assert manifest["merged"] is None


def test_killed_dispatcher_resumes_from_checkpoints(tmp_path, baseline):
    # Run 1: shard 1 fails every attempt — only shard 2 lands.
    first = _dispatcher(
        tmp_path, faults=FaultPlan.parse("1:crash@*"),
        policy=BackoffPolicy(base=0.01, seed=SEED, max_attempts=2)).run()
    assert sorted(first.completed) == [2]
    # Run 2 (a "restarted dispatcher"): shard 2 resumes from its
    # checkpoint without re-running; only shard 1 is dispatched.
    second = _dispatcher(tmp_path).run()
    assert second.resumed == [2]
    assert second.complete
    assert second.merged_path.read_text() == baseline.to_json()


def test_resume_discards_damaged_checkpoints(tmp_path, baseline):
    first = _dispatcher(tmp_path).run()
    assert first.complete
    # Damage shard 1's result file behind the checkpoint's back.
    shard_file = first.completed[1]
    shard_file.write_text(shard_file.read_text()[:-40])
    second = _dispatcher(tmp_path).run()
    assert second.resumed == [2]            # the intact checkpoint held
    assert second.attempts[1] == 1          # the damaged one re-ran
    assert second.complete
    assert second.merged_path.read_text() == baseline.to_json()


def test_fresh_ignores_checkpoints(tmp_path):
    assert _dispatcher(tmp_path).run().complete
    report = _dispatcher(tmp_path, fresh=True).run()
    assert report.resumed == []
    assert report.attempts == {1: 1, 2: 1}


def test_request_stop_interrupts_gracefully(tmp_path, baseline):
    dispatcher = _dispatcher(tmp_path, workers=1,
                             faults=FaultPlan.parse("1:hang@*"))
    events = []

    def watch(event):
        events.append(event)
        # Ask for a wind-down as soon as the first (hanging) shard is up.
        if event.get("state") == "launched":
            dispatcher.request_stop()

    dispatcher.events = watch
    report = dispatcher.run()
    assert report.interrupted
    assert not report.complete
    assert any(e.get("state") == "killed" for e in events)
    manifest = json.loads(report.manifest_path.read_text())
    assert manifest["interrupted"] is True
    # Nothing was lost: a rerun picks the work straight back up.
    rerun = _dispatcher(tmp_path).run()
    assert rerun.complete
    assert rerun.merged_path.read_text() == baseline.to_json()


def test_thread_transport_shares_the_warm_cache(tmp_path):
    cache = ResultCache()
    transport = ThreadTransport(CASES, platforms=[INTEL], cache=cache)
    report = _dispatcher(tmp_path, transport=transport,
                         faults=FaultPlan.parse("1:torn")).run()
    assert report.complete
    # The torn attempt's measurements were not wasted: the retry replayed
    # them from the shared cache.
    assert cache.hits > 0


# ---------------------------------------------------------------------------
# Subprocess transport
# ---------------------------------------------------------------------------


def test_subprocess_argv_carries_the_corpus_spec():
    from repro.dispatch.transport import ShardTask
    from pathlib import Path

    spec = CorpusSpec(max_shaders=6, synth_seed=3, synth_count=2)
    task = ShardTask(index=2, count=3, seed=11,
                     output=Path("out.json"), heartbeat=Path("beat"),
                     jobs=2)
    argv = SubprocessTransport(spec, python="python3").argv_for(task)
    assert argv[:4] == ["python3", "-m", "repro", "study"]
    for flag, value in (("--shard", "2/3"), ("--seed", "11"),
                        ("--output", "out.json"), ("--max-shaders", "6"),
                        ("--synth-seed", "3"), ("--synth-count", "2"),
                        ("--heartbeat", "beat"), ("--jobs", "2")):
        assert argv[argv.index(flag) + 1] == value


def test_subprocess_dispatch_survives_faults(tmp_path):
    """Real processes, real kills: a torn write and a crash, retried, then
    a merge byte-identical to the unsharded study."""
    spec = CorpusSpec(max_shaders=3)
    cases = spec.build()
    baseline = run_study(cases, StudyConfig())    # all platforms, seed 2018
    report = ShardDispatcher(
        cases=cases, shard_count=2, transport=SubprocessTransport(spec),
        state_dir=tmp_path / "state",
        policy=BackoffPolicy(base=0.01, cap=0.05, max_attempts=3),
        faults=FaultPlan.parse("1:crash,2:torn"),
        poll_interval=0.02, workers=2).run()
    assert report.complete
    assert report.retries == 2
    assert report.merged_path.read_text() == baseline.to_json()
    # The worker's own stderr survives for post-mortems.
    logs = os.listdir(tmp_path / "state" / "logs")
    assert any(name.startswith("shard-0001") for name in logs)
