"""GPU model tests: ISA classification, cost model mechanisms, vendor JITs,
timer noise."""

import random

import pytest

from repro.core import compile_shader
from repro.gpu.cost import GPUSpec, draw_time_ns, estimate_kernel
from repro.gpu.isa import OpClass, classify
from repro.gpu.platform import all_platforms, platform_by_name
from repro.gpu.registers import max_live_scalars
from repro.gpu.timing import TimerModel
from repro.gpu.vendors import AMD, ARM, INTEL, NVIDIA, QUALCOMM
from repro.passes import OptimizationFlags


def build(source, **flags):
    return compile_shader(source, OptimizationFlags(**flags)).module.function


SCALAR_SPEC = GPUSpec(name="s", isa="scalar")
VECTOR_SPEC = GPUSpec(name="v", isa="vector")


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


def test_classify_core_ops():
    fn = build("""
uniform sampler2D t;
uniform vec4 c;
in vec2 uv;
out vec4 f;
void main() { f = texture(t, uv) * c + vec4(sin(uv.x)); }
""")
    classes = {classify(i).op_class for i in fn.instructions()}
    assert OpClass.TEXTURE in classes
    assert OpClass.INTERP in classes
    assert OpClass.UNIFORM in classes
    assert OpClass.TRANSCENDENTAL in classes
    assert OpClass.EXPORT in classes


def test_const_array_load_is_uniform_class():
    fn = build("""
uniform int n;
out vec4 f;
void main() {
    const float w[2] = float[](0.3, 0.7);
    f = vec4(w[n]);
}
""")
    from repro.ir.instructions import LoadElem
    loads = [i for i in fn.instructions() if isinstance(i, LoadElem)]
    assert loads and classify(loads[0]).op_class is OpClass.UNIFORM


# ---------------------------------------------------------------------------
# Cost model mechanisms
# ---------------------------------------------------------------------------


def test_scalar_isa_pays_per_lane_vector_isa_per_issue():
    fn = build("""
uniform vec4 a;
uniform vec4 b;
out vec4 f;
void main() { f = a * b + a; }
""")
    scalar_cost = estimate_kernel(fn, SCALAR_SPEC).alu_cycles
    vector_cost = estimate_kernel(fn, VECTOR_SPEC).alu_cycles
    assert scalar_cost > vector_cost * 2


def test_vector_isa_punishes_scalar_grouping():
    """The FP-Reassociate Mali mechanism: grouped scalar chains are cheaper
    on scalar ISAs and more expensive (relatively) on vector ISAs."""
    src = """
uniform float f1;
uniform float f2;
uniform vec4 v;
out vec4 f;
void main() { f = f1 * (f2 * v); }
"""
    base = build(src)
    grouped = build(src, fp_reassociate=True)
    spec_v = GPUSpec(name="v", isa="vector", scalar_op_penalty=2.0)

    scalar_delta = (estimate_kernel(base, SCALAR_SPEC).cycles_per_fragment
                    - estimate_kernel(grouped, SCALAR_SPEC).cycles_per_fragment)
    vector_delta = (estimate_kernel(base, spec_v).cycles_per_fragment
                    - estimate_kernel(grouped, spec_v).cycles_per_fragment)
    assert scalar_delta > 0        # scalar ISA: grouping wins
    assert vector_delta < 0        # vector ISA: grouping loses


def test_register_pressure_reduces_occupancy():
    fn = build("""
uniform sampler2D t;
in vec2 uv;
out vec4 f;
void main() {
    vec4 a = texture(t, uv);
    vec4 b = texture(t, uv * 2.0);
    vec4 c = texture(t, uv * 3.0);
    vec4 d = texture(t, uv * 4.0);
    f = (a + b) * (c + d) + a * b + c * d;
}
""")
    tight = GPUSpec(name="tight", isa="scalar", reg_file=32,
                    warps_full_hiding=8, max_warps=8)
    roomy = GPUSpec(name="roomy", isa="scalar", reg_file=1024,
                    warps_full_hiding=8, max_warps=8)
    assert estimate_kernel(fn, tight).occupancy < estimate_kernel(fn, roomy).occupancy
    assert (estimate_kernel(fn, tight).cycles_per_fragment
            > estimate_kernel(fn, roomy).cycles_per_fragment)


def test_divergent_branch_costs_more_than_uniform():
    uniform_loop = build("""
out vec4 f;
uniform int n;
void main() {
    float acc = 0.0;
    for (int i = 0; i < n; i++) { acc += 1.0; }
    f = vec4(acc);
}
""")
    divergent = build("""
in vec2 uv;
out vec4 f;
void main() {
    float x = 0.0;
    if (uv.x > 0.5) { x = 1.0; }
    f = vec4(x);
}
""")
    spec = GPUSpec(name="s", isa="scalar", branch=1.0, divergent_branch=10.0)
    uniform_branches = estimate_kernel(uniform_loop, spec,
                                       profile=None).branch_cycles
    divergent_branches = estimate_kernel(divergent, spec,
                                         profile=None).branch_cycles
    # One divergent branch costs more than one uniform loop branch.
    assert divergent_branches > 10.0
    assert uniform_branches < divergent_branches * len(uniform_loop.blocks)


def test_icache_penalty_applies_to_huge_shaders():
    fn = build("""
uniform sampler2D t;
in vec2 uv;
out vec4 f;
void main() {
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 16; i++) { acc += texture(t, uv + vec2(float(i) * 0.01, 0.0)); }
    f = acc;
}
""", unroll=True)
    small_cache = GPUSpec(name="s", isa="scalar", icache_ops=16,
                          icache_penalty=2.0)
    big_cache = GPUSpec(name="b", isa="scalar", icache_ops=100000,
                        icache_penalty=2.0)
    assert (estimate_kernel(fn, small_cache).cycles_per_fragment
            > estimate_kernel(fn, big_cache).cycles_per_fragment * 1.5)


def test_profile_weights_blocks():
    fn = build("""
uniform float u;
out vec4 f;
void main() {
    float x = 0.0;
    if (u > 0.5) { x = sin(u) + cos(u) + sin(u * 2.0); }
    f = vec4(x);
}
""")
    then_block = [b.name for b in fn.blocks if "then" in b.name][0]
    taken = {b.name: 1.0 for b in fn.blocks}
    skipped = dict(taken)
    skipped[then_block] = 0.0
    spec = SCALAR_SPEC
    assert (estimate_kernel(fn, spec, taken).cycles_per_fragment
            > estimate_kernel(fn, spec, skipped).cycles_per_fragment)


def test_draw_time_scales_with_fragments():
    fn = build("out vec4 f;\nvoid main() { f = vec4(1.0); }")
    cost = estimate_kernel(fn, SCALAR_SPEC)
    assert draw_time_ns(cost, SCALAR_SPEC, 500 * 500) == pytest.approx(
        draw_time_ns(cost, SCALAR_SPEC, 250) * 1000)


def test_max_live_scalars_counts_widths():
    fn = build("""
uniform vec4 a;
uniform vec4 b;
out vec4 f;
void main() { f = (a + b) * (a - b); }
""")
    assert max_live_scalars(fn) >= 8  # two vec4 temporaries live at once


# ---------------------------------------------------------------------------
# Vendor JITs
# ---------------------------------------------------------------------------

LOOP_SRC = """
uniform sampler2D t;
in vec2 uv;
out vec4 f;
void main() {
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 9; i++) { acc += texture(t, uv + vec2(float(i) * 0.01, 0.0)); }
    f = acc;
}
"""


def _has_loop(function) -> bool:
    from repro.ir.cfg import find_natural_loops

    return bool(find_natural_loops(function))


def test_amd_jit_does_not_unroll():
    assert _has_loop(AMD.jit.compile(LOOP_SRC).function)


def test_intel_and_nvidia_jits_unroll():
    assert not _has_loop(INTEL.jit.compile(LOOP_SRC).function)
    assert not _has_loop(NVIDIA.jit.compile(LOOP_SRC).function)


def test_mali_jit_unrolls_only_tiny_loops():
    assert _has_loop(ARM.jit.compile(LOOP_SRC).function)  # 9 trips > 4
    tiny = LOOP_SRC.replace("i < 9", "i < 3")
    assert not _has_loop(ARM.jit.compile(tiny).function)


def test_no_jit_performs_unsafe_fp():
    src = """
uniform vec4 a;
uniform vec4 b;
uniform vec4 c;
out vec4 f;
void main() { f = a * b + a * c; }
"""
    from repro.ir.instructions import BinOp

    for platform in all_platforms():
        fn = platform.jit.compile(src).function
        muls = [i for i in fn.instructions()
                if isinstance(i, BinOp) and i.op == "mul"]
        assert len(muls) == 2, platform.name  # never factored by a driver


def test_all_jits_compile_whole_corpus():
    from repro.corpus import default_corpus

    for case in default_corpus(max_shaders=10):
        for platform in all_platforms():
            module = platform.jit.compile(case.source)
            assert module.function.blocks


# ---------------------------------------------------------------------------
# Platforms & timing
# ---------------------------------------------------------------------------


def test_platform_lookup():
    assert platform_by_name("arm").device.startswith("Mali")
    assert platform_by_name("Intel").name == "Intel"
    with pytest.raises(KeyError):
        platform_by_name("voodoo3dfx")


def test_five_platforms_match_paper():
    names = {p.name for p in all_platforms()}
    assert names == {"Intel", "AMD", "NVIDIA", "ARM", "Qualcomm"}
    assert sum(p.is_mobile for p in all_platforms()) == 2


def test_mobile_draw_count():
    assert ARM.draws_per_frame == 100
    assert NVIDIA.draws_per_frame == 1000


def test_timer_noise_seeded_and_unbiased():
    timer = TimerModel(sigma=0.02, overhead_ns=100.0, quantum_ns=10.0)
    rng1, rng2 = random.Random(7), random.Random(7)
    seq1 = [timer.measure(10000.0, rng1) for _ in range(50)]
    seq2 = [timer.measure(10000.0, rng2) for _ in range(50)]
    assert seq1 == seq2
    mean = sum(seq1) / len(seq1)
    assert 10000.0 < mean < 10400.0  # overhead + noise, no wild bias


def test_timer_quantization():
    timer = TimerModel(sigma=0.0, overhead_ns=0.0, quantum_ns=500.0)
    rng = random.Random(1)
    assert timer.measure(1234.0, rng) % 500.0 == 0.0


def test_intel_is_quietest_platform():
    sigmas = {p.name: p.timer.sigma for p in all_platforms()}
    assert sigmas["Intel"] == min(sigmas.values())
    assert sigmas["Qualcomm"] == max(sigmas.values())


# ---------------------------------------------------------------------------
# Shared JIT front end
# ---------------------------------------------------------------------------


def test_vendor_jits_share_one_frontend_per_source():
    from repro.corpus import MOTIVATING_SHADER
    from repro.gpu.jit import clear_frontend_memo, shared_frontend

    clear_frontend_memo()
    base = shared_frontend(MOTIVATING_SHADER)
    assert shared_frontend(MOTIVATING_SHADER) is base, "front end re-parsed"

    # Vendors optimize clones; the memoized module must stay pristine.
    from repro.ir.fingerprint import fingerprint_module

    before = fingerprint_module(base)
    for platform in (NVIDIA, ARM):
        platform.jit.compile(MOTIVATING_SHADER)
    assert fingerprint_module(shared_frontend(MOTIVATING_SHADER)) == before


def test_execution_report_vertex_shader_is_lazy(monkeypatch):
    import repro.harness.environment as environment
    from repro.corpus import MOTIVATING_SHADER
    from repro.harness.environment import ShaderExecutionEnvironment

    calls = []
    real = environment.generate_vertex_shader

    def counting(interface):
        calls.append(interface)
        return real(interface)

    monkeypatch.setattr(environment, "generate_vertex_shader", counting)
    report = ShaderExecutionEnvironment(NVIDIA).run(MOTIVATING_SHADER, seed=3)
    assert not calls, "measurement-only run generated a vertex shader"
    vertex = report.vertex_shader
    assert "gl_Position" in vertex and len(calls) == 1
    assert report.vertex_shader is vertex, "second access regenerated"
