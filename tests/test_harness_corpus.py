"""Harness, corpus, study, and analysis tests."""

import random

import pytest

from repro.analysis.cycle_analyzer import arm_static_cycles
from repro.analysis.flags import (
    best_static_flags, flag_applicability, isolated_flag_impact,
)
from repro.analysis.speedups import average_speedups, top_shaders
from repro.analysis.static_metrics import loc_distribution, loc_summary
from repro.analysis.uniqueness import variant_count_distribution
from repro.corpus import MOTIVATING_SHADER, default_corpus
from repro.corpus.generator import corpus_families
from repro.glsl import parse_shader, preprocess, shader_interface
from repro.gpu.vendors import INTEL, NVIDIA
from repro.harness.environment import ShaderExecutionEnvironment
from repro.harness.protocol import run_protocol
from repro.harness.results import StudyResult
from repro.harness.study import StudyConfig, run_study
from repro.harness.uniforms import (
    default_textures, default_uniform_values, fragment_inputs,
)
from repro.harness.vertex_gen import generate_vertex_shader
from repro.gpu.timing import TimerModel


def interface_of(source):
    return shader_interface(parse_shader(preprocess(source).text))


# ---------------------------------------------------------------------------
# Uniform defaults (paper Section IV-B)
# ---------------------------------------------------------------------------


def test_float_uniforms_default_half():
    iface = interface_of("uniform float a;\nuniform vec3 b;\nvoid main() { }")
    values = default_uniform_values(iface)
    assert values["a"] == 0.5
    assert values["b"] == (0.5, 0.5, 0.5)


def test_sampler_uniforms_get_distinct_textures():
    iface = interface_of(
        "uniform sampler2D a;\nuniform sampler2D b;\nvoid main() { }")
    textures = default_textures(iface)
    assert textures["a"].sample((0.3, 0.3)) != textures["b"].sample((0.3, 0.3))


def test_uniform_array_defaults():
    iface = interface_of("uniform vec3 ls[4];\nvoid main() { }")
    values = default_uniform_values(iface)
    assert len(values["ls"]) == 4


def test_fragment_inputs_carry_position():
    iface = interface_of("in vec2 uv;\nin vec3 pos;\nvoid main() { }")
    values = fragment_inputs(iface, (0.25, 0.75))
    assert values["uv"] == (0.25, 0.75)
    assert values["pos"][:2] == (0.25, 0.75)


# ---------------------------------------------------------------------------
# Vertex shader generation
# ---------------------------------------------------------------------------


def test_generated_vertex_shader_parses_and_matches_interface():
    iface = interface_of(
        "in vec2 uv;\nin vec3 v_n;\nin float v_d;\nout vec4 f;\nvoid main() { }")
    vs = generate_vertex_shader(iface)
    vs_iface = interface_of(vs)
    out_names = {o.name for o in vs_iface.outputs}
    assert {"uv", "v_n", "v_d"} <= out_names
    assert "gl_Position" in out_names
    assert any(u.name == "u_depth" for u in vs_iface.uniforms)


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


def test_protocol_shape_and_determinism():
    timer = TimerModel(sigma=0.02, overhead_ns=0.0, quantum_ns=1.0)
    m1 = run_protocol(50000.0, timer, random.Random(3))
    m2 = run_protocol(50000.0, timer, random.Random(3))
    assert m1.mean_ns == m2.mean_ns
    assert len(m1.repeat_means) == 5
    assert m1.std_ns < m1.mean_ns * 0.01  # frame averaging crushes noise


def test_environment_report_fields():
    env = ShaderExecutionEnvironment(INTEL)
    report = env.run(MOTIVATING_SHADER, seed=3)
    assert report.true_ns > 0
    assert report.measurement.mean_ns > 0
    assert report.cost.registers > 0
    assert "gl_Position" in report.vertex_shader


def test_environment_measurement_reflects_noise_seed():
    env = ShaderExecutionEnvironment(INTEL)
    a = env.run(MOTIVATING_SHADER, seed=1).measurement.mean_ns
    b = env.run(MOTIVATING_SHADER, seed=2).measurement.mean_ns
    c = env.run(MOTIVATING_SHADER, seed=1).measurement.mean_ns
    assert a == c
    assert a != b


# ---------------------------------------------------------------------------
# Corpus
# ---------------------------------------------------------------------------


def test_corpus_has_family_structure():
    cases = default_corpus()
    families = {c.family for c in cases}
    assert len(families) >= 12
    assert len(cases) >= 40
    by_family = {}
    for case in cases:
        by_family.setdefault(case.family, []).append(case)
    assert any(len(v) >= 3 for v in by_family.values())


def test_corpus_defines_are_materialized():
    cases = default_corpus(families=["phong"])
    assert any("#define NUM_LIGHTS 4" in c.source for c in cases)


def test_corpus_loc_power_law():
    """Fig. 4a shape: most shaders < 50 LoC, none above ~300."""
    summary = loc_summary(default_corpus())
    assert summary["fraction_under_50"] > 0.5
    assert summary["max"] <= 300
    assert summary["median"] < 50


def test_corpus_family_lookup():
    families = corpus_families()
    assert "blur" in families and "pbr" in families


def test_arm_static_cycles_orders_by_complexity():
    simple = [c for c in default_corpus() if c.name == "flat.base"][0]
    complex_ = [c for c in default_corpus() if c.name == "pbr.l4_aces_gamma"][0]
    assert arm_static_cycles(complex_.source) > arm_static_cycles(simple.source) * 3


# ---------------------------------------------------------------------------
# Mini-study + analysis integration
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def mini_study():
    corpus = default_corpus(families=["blur", "sprite", "fog"])
    return run_study(corpus, StudyConfig(platforms=[INTEL, NVIDIA], seed=11))


def test_study_records_all_shaders_and_platforms(mini_study):
    assert len(mini_study.shaders) == 9  # 3 blur + 3 sprite + 3 fog
    assert mini_study.platforms == ["Intel", "NVIDIA"]


def test_variants_partition_all_256_combos(mini_study):
    for shader in mini_study.shaders:
        indices = sorted(i for v in shader.variants for i in v.flag_indices)
        assert indices == list(range(256))


def test_uniqueness_counts_small(mini_study):
    counts = variant_count_distribution(mini_study)
    assert all(1 <= c <= 48 for c in counts)


def test_speedup_functions_run(mini_study):
    rows = average_speedups(mini_study)
    assert {r.platform for r in rows} == {"Intel", "NVIDIA"}
    top = top_shaders(mini_study, "Intel", count=3)
    assert len(top) == 3


def test_best_static_flags_is_valid_combination(mini_study):
    flags = best_static_flags(mini_study, "Intel")
    assert 0 <= flags.index < 256


def test_flag_applicability_counts_bounded(mini_study):
    stats = flag_applicability(mini_study, "Intel")
    for name, stat in stats.items():
        assert 0 <= stat.changes_code <= stat.total_shaders
        assert 0 <= stat.in_optimal_set <= stat.total_shaders


def test_adce_never_applicable(mini_study):
    stats = flag_applicability(mini_study, "Intel")
    assert stats["adce"].changes_code == 0


def test_isolated_impact_has_entry_per_shader(mini_study):
    impact = isolated_flag_impact(mini_study, "Intel", "unroll")
    assert len(impact.speedups_pct) == len(mini_study.shaders)


def test_study_json_roundtrip(mini_study):
    text = mini_study.to_json()
    back = StudyResult.from_json(text)
    assert back.platforms == mini_study.platforms
    assert len(back.shaders) == len(mini_study.shaders)
    assert (back.shaders[0].variants[0].times_ns
            == mini_study.shaders[0].variants[0].times_ns)
