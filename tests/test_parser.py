"""Parser and type-inference unit tests."""

import pytest

from repro.errors import ParseError
from repro.glsl import ast
from repro.glsl import types as T
from repro.glsl.parser import parse_shader, swizzle_indices


def parse_main(body: str, prelude: str = "") -> ast.FunctionDef:
    shader = parse_shader(f"{prelude}\nvoid main() {{ {body} }}")
    fn = shader.function("main")
    assert fn is not None
    return fn


def first_stmt(body: str, prelude: str = ""):
    return parse_main(body, prelude).body.body[0]


def test_global_qualifiers():
    shader = parse_shader(
        "uniform vec4 color; in vec2 uv; out vec4 frag;\nvoid main() {}")
    assert [g.qualifier for g in shader.globals] == ["uniform", "in", "out"]
    assert shader.uniforms[0].name == "color"
    assert shader.inputs[0].ty == T.VEC2
    assert shader.outputs[0].name == "frag"


def test_layout_qualifier_skipped():
    shader = parse_shader("layout(location = 0) out vec4 frag;\nvoid main() {}")
    assert shader.outputs[0].name == "frag"


def test_precision_statement_skipped():
    shader = parse_shader("precision highp float;\nvoid main() {}")
    assert shader.globals == []


def test_struct_declaration_parses():
    shader = parse_shader("struct Light { vec3 pos; float power; };\nvoid main() {}")
    assert len(shader.structs) == 1
    struct = shader.structs[0]
    assert struct.name == "Light"
    assert struct.ty.field_names == ("pos", "power")
    assert struct.ty.field_type("pos") == T.VEC3


def test_local_declaration_type():
    stmt = first_stmt("vec3 v = vec3(1.0);")
    assert isinstance(stmt, ast.DeclStmt)
    assert stmt.declarators[0].ty == T.VEC3


def test_int_literal_types():
    stmt = first_stmt("int i = 3;")
    assert stmt.declarators[0].init.ty == T.INT


def test_implicit_int_to_float_coercion():
    stmt = first_stmt("float f = 3;")
    init = stmt.declarators[0].init
    assert init.ty == T.FLOAT
    assert isinstance(init, ast.Call) and init.is_constructor


def test_binary_precedence():
    stmt = first_stmt("float f = 1.0 + 2.0 * 3.0;")
    init = stmt.declarators[0].init
    assert isinstance(init, ast.Binary) and init.op == "+"
    assert isinstance(init.right, ast.Binary) and init.right.op == "*"


def test_comparison_yields_bool():
    stmt = first_stmt("bool b = 1.0 < 2.0;")
    assert stmt.declarators[0].init.ty == T.BOOL


def test_vector_scalar_multiply_type():
    stmt = first_stmt("vec4 v = vec4(1.0) * 2.0;")
    assert stmt.declarators[0].init.ty == T.VEC4


def test_vector_size_mismatch_rejected():
    with pytest.raises(ParseError):
        parse_main("vec3 v = vec3(1.0) + vec2(1.0);")


def test_matrix_vector_multiply_type():
    stmt = first_stmt("vec4 v = m * vec4(1.0);", "uniform mat4 m;")
    assert stmt.declarators[0].init.ty == T.VEC4


def test_vector_matrix_multiply_type():
    stmt = first_stmt("vec3 v = vec3(1.0) * m;", "uniform mat3 m;")
    assert stmt.declarators[0].init.ty == T.VEC3


def test_matrix_matrix_multiply_type():
    stmt = first_stmt("mat3 r = m * m;", "uniform mat3 m;")
    assert stmt.declarators[0].ty == T.MAT3


def test_swizzle_types():
    stmt = first_stmt("vec2 v = w.xy;", "uniform vec4 w;")
    assert stmt.declarators[0].init.ty == T.VEC2
    stmt = first_stmt("float f = w.z;", "uniform vec4 w;")
    assert stmt.declarators[0].init.ty == T.FLOAT


def test_swizzle_out_of_range_rejected():
    with pytest.raises(ParseError):
        parse_main("float f = v.z;", "uniform vec2 v;")


def test_rgba_swizzle_set():
    stmt = first_stmt("vec3 v = w.rgb;", "uniform vec4 w;")
    assert stmt.declarators[0].init.ty == T.VEC3


def test_mixed_swizzle_sets_rejected():
    with pytest.raises(ParseError):
        parse_main("vec2 v = w.xg;", "uniform vec4 w;")


def test_swizzle_indices_helper():
    assert swizzle_indices("xyz") == [0, 1, 2]
    assert swizzle_indices("rbg") == [0, 2, 1]
    assert swizzle_indices("st") == [0, 1]


def test_index_into_vector():
    stmt = first_stmt("float f = v[1];", "uniform vec4 v;")
    assert stmt.declarators[0].init.ty == T.FLOAT


def test_index_into_matrix_gives_column():
    stmt = first_stmt("vec4 c = m[2];", "uniform mat4 m;")
    assert stmt.declarators[0].init.ty == T.VEC4


def test_array_declaration_and_index():
    fn = parse_main("float a[3]; a[0] = 1.0; float x = a[1];")
    decl = fn.body.body[0]
    assert decl.declarators[0].ty == T.Array(T.FLOAT, 3)


def test_array_literal_sizes_unsized_array():
    stmt = first_stmt("const vec2[] offs = vec2[](vec2(0.0), vec2(1.0));")
    assert stmt.declarators[0].ty == T.Array(T.VEC2, 2)


def test_array_literal_size_mismatch_rejected():
    with pytest.raises(ParseError):
        parse_main("const float[3] w = float[3](1.0, 2.0);")


def test_constructor_component_counting():
    stmt = first_stmt("vec4 v = vec4(a, 1.0, 2.0);", "uniform vec2 a;")
    assert stmt.declarators[0].init.ty == T.VEC4


def test_constructor_too_few_components_rejected():
    with pytest.raises(ParseError):
        parse_main("vec4 v = vec4(1.0, 2.0);")


def test_scalar_splat_constructor_allowed():
    stmt = first_stmt("vec4 v = vec4(0.5);")
    assert stmt.declarators[0].init.ty == T.VEC4


def test_builtin_call_type_resolution():
    stmt = first_stmt("vec3 v = normalize(w);", "uniform vec3 w;")
    assert stmt.declarators[0].init.ty == T.VEC3
    stmt = first_stmt("float f = dot(w, w);", "uniform vec3 w;")
    assert stmt.declarators[0].init.ty == T.FLOAT


def test_texture_call_type():
    stmt = first_stmt("vec4 c = texture(t, vec2(0.5));",
                      "uniform sampler2D t;")
    assert stmt.declarators[0].init.ty == T.VEC4


def test_shadow_sampler_returns_float():
    stmt = first_stmt("float c = texture(t, vec3(0.5));",
                      "uniform sampler2DShadow t;")
    assert stmt.declarators[0].init.ty == T.FLOAT


def test_user_function_call():
    shader = parse_shader("""
float half_of(float x) { return x * 0.5; }
void main() { float y = half_of(4.0); }
""")
    assert shader.function("half_of") is not None


def test_call_to_undeclared_function_rejected():
    with pytest.raises(ParseError):
        parse_main("float y = nothere(1.0);")


def test_undeclared_identifier_rejected():
    with pytest.raises(ParseError):
        parse_main("float y = ghost;")


def test_ternary_type_unification():
    stmt = first_stmt("float f = true ? 1.0 : 2;")
    assert stmt.declarators[0].init.ty == T.FLOAT


def test_assignment_statement_forms():
    fn = parse_main("float f = 0.0; f += 1.0; f *= 2.0;")
    assert isinstance(fn.body.body[1], ast.AssignStmt)
    assert fn.body.body[1].op == "+="


def test_if_else_structure():
    stmt = first_stmt("if (true) { } else { }")
    assert isinstance(stmt, ast.IfStmt)
    assert stmt.else_body is not None


def test_if_without_braces():
    stmt = first_stmt("if (true) discard;")
    assert isinstance(stmt, ast.IfStmt)
    assert isinstance(stmt.then_body.body[0], ast.DiscardStmt)


def test_for_loop_structure():
    stmt = first_stmt("for (int i = 0; i < 4; i++) { }")
    assert isinstance(stmt, ast.ForStmt)
    assert isinstance(stmt.init, ast.DeclStmt)
    assert stmt.cond.ty == T.BOOL


def test_while_loop_structure():
    stmt = first_stmt("while (false) { }")
    assert isinstance(stmt, ast.WhileStmt)


def test_do_while_parses():
    stmt = first_stmt("do { } while (true);")
    assert isinstance(stmt, ast.DoWhileStmt)
    assert isinstance(stmt.cond, ast.BoolLit)


def test_logical_ops_require_bool():
    with pytest.raises(ParseError):
        parse_main("bool b = 1.0 && 2.0;")


def test_modulo_requires_int():
    with pytest.raises(ParseError):
        parse_main("float f = 1.0 % 2.0;")


def test_loop_scope_isolated():
    with pytest.raises(ParseError):
        parse_main("for (int i = 0; i < 3; i++) { } int j = i;")


# ---------------------------------------------------------------------------
# Wild-GLSL widening: const-expression array sizes, integer literal bases,
# struct declarations, do/while, and switch (see repro.glsl.normalize for
# how these leave the AST again before lowering).
# ---------------------------------------------------------------------------


def test_const_int_name_as_array_size():
    # Previously `float a[N];` was rejected: sizes required a literal.
    shader = parse_shader(
        "const int N = 4;\nuniform float w[N];\nvoid main() {}")
    assert shader.globals[1].ty == T.Array(T.FLOAT, 4)


def test_const_expression_array_size():
    shader = parse_shader(
        "const int R = 3;\nuniform float w[2 * R + 1];\nvoid main() {}")
    assert shader.globals[1].ty == T.Array(T.FLOAT, 7)


def test_local_const_int_array_size():
    fn = parse_main("const int n = 2; float a[n + n];")
    assert fn.body.body[1].declarators[0].ty == T.Array(T.FLOAT, 4)


def test_const_size_division_truncates_toward_zero():
    shader = parse_shader(
        "const int N = 7;\nuniform float w[N / 2];\nvoid main() {}")
    assert shader.globals[1].ty == T.Array(T.FLOAT, 3)


def test_non_const_array_size_rejected():
    with pytest.raises(ParseError) as excinfo:
        parse_main("int n = 4; float a[n];")
    assert "constant integer expression" in str(excinfo.value)


def test_non_const_global_name_in_size_rejected():
    with pytest.raises(ParseError):
        parse_shader("uniform int n;\nuniform float w[n];\nvoid main() {}")


def test_hex_int_literal_value():
    stmt = first_stmt("int x = 0x1F;")
    assert stmt.declarators[0].init.value == 31


def test_octal_int_literal_value():
    stmt = first_stmt("int x = 010;")
    assert stmt.declarators[0].init.value == 8


def test_hex_literal_as_array_size():
    fn = parse_main("float a[0x4];")
    assert fn.body.body[0].declarators[0].ty == T.Array(T.FLOAT, 4)


def test_struct_variable_and_field_access():
    fn = parse_main(
        "Light l = Light(vec3(1.0), 2.0); float p = l.power;",
        prelude="struct Light { vec3 pos; float power; };")
    init = fn.body.body[1].declarators[0].init
    assert isinstance(init, ast.Member)
    assert init.ty == T.FLOAT
    assert isinstance(init.base.ty, T.Struct)


def test_struct_constructor_arity_checked():
    with pytest.raises(ParseError):
        parse_main("Light l = Light(vec3(1.0));",
                   prelude="struct Light { vec3 pos; float power; };")


def test_struct_unknown_field_rejected():
    with pytest.raises(ParseError):
        parse_main("Light l = Light(vec3(1.0), 2.0); float p = l.radius;",
                   prelude="struct Light { vec3 pos; float power; };")


def test_struct_redeclaration_rejected():
    with pytest.raises(ParseError):
        parse_shader("struct A { float x; };\nstruct A { float y; };\n"
                     "void main() {}")


def test_struct_duplicate_field_rejected():
    with pytest.raises(ParseError):
        parse_shader("struct A { float x; float x; };\nvoid main() {}")


def test_struct_trailing_instance_rejected():
    with pytest.raises(ParseError) as excinfo:
        parse_shader("struct A { float x; } a;\nvoid main() {}")
    assert "instance" in str(excinfo.value)


def test_nested_struct_field():
    shader = parse_shader(
        "struct Inner { float a; };\n"
        "struct Outer { Inner inner; float b; };\n"
        "void main() { Outer o = Outer(Inner(1.0), 2.0); "
        "float x = o.inner.a; }")
    stmt = shader.function("main").body.body[1]
    assert stmt.declarators[0].init.ty == T.FLOAT


def test_do_while_condition_must_be_bool():
    with pytest.raises(ParseError):
        parse_main("do { } while (1);")


def test_switch_parses_with_fallthrough_groups():
    fn = parse_main(
        "int x = 0; switch (m) { case 0: case 1: x = 1; break; "
        "case 2: x = 2; default: x = 3; break; }",
        prelude="uniform int m;")
    stmt = fn.body.body[1]
    assert isinstance(stmt, ast.SwitchStmt)
    # `case 0: case 1:` merged into one group; default's values is None.
    assert [c.values for c in stmt.cases] == [[0, 1], [2], None]


def test_switch_case_label_const_folded():
    fn = parse_main(
        "const int K = 2; switch (m) { case K + 1: break; }",
        prelude="uniform int m;")
    assert fn.body.body[1].cases[0].values == [3]


def test_switch_duplicate_case_rejected():
    with pytest.raises(ParseError):
        parse_main("switch (m) { case 1: break; case 1: break; }",
                   prelude="uniform int m;")


def test_switch_non_integer_scrutinee_rejected():
    with pytest.raises(ParseError):
        parse_main("switch (f) { case 1: break; }",
                   prelude="uniform float f;")


def test_switch_statement_before_first_label_rejected():
    with pytest.raises(ParseError):
        parse_main("int x; switch (m) { x = 1; case 1: break; }",
                   prelude="uniform int m;")
