"""Trie-vs-naive variant compilation equivalence.

The shared-prefix compilation trie (repro.core.trie) must be a pure
optimization: byte-identical ``VariantSet`` contents — texts, flag
groupings, even insertion order — and byte-identical ``StudyResult`` JSON
versus the brute-force per-combination path, under every ``REPRO_COMPILE``
mode and ``max_workers`` setting.
"""

from __future__ import annotations

import random

import pytest

from repro.core.pipeline import ShaderCompiler, compile_mode
from repro.core.trie import VariantTrie
from repro.corpus import MOTIVATING_SHADER, default_corpus
from repro.gpu.platform import all_platforms
from repro.harness.study import StudyConfig, run_study
from repro.ir.clone import clone_module
from repro.ir.fingerprint import fingerprint_module
from repro.passes import OptimizationFlags
from repro.passes.manager import PASS_ORDER
from repro.search.cache import ResultCache


@pytest.fixture(scope="module")
def equivalence_corpus():
    """A cross-section of corpus families plus the motivating shader (the
    full 50-shader corpus runs in the benchmark job, not tier-1)."""
    return default_corpus(max_shaders=6)


def _variant_sets(source: str, es: bool = False):
    compiler = ShaderCompiler(source)
    return (compiler.all_variants(es=es, mode="naive"),
            compiler.all_variants(es=es, mode="trie"))


# ---------------------------------------------------------------------------
# Byte-identical VariantSet
# ---------------------------------------------------------------------------


def test_trie_matches_naive_on_motivating_shader():
    naive, trie = _variant_sets(MOTIVATING_SHADER)
    assert trie.index_to_text == naive.index_to_text
    assert trie.by_text == naive.by_text
    assert list(trie.by_text) == list(naive.by_text), "insertion order drifted"
    for text, combos in naive.by_text.items():
        assert trie.by_text[text] == combos


def test_trie_matches_naive_across_corpus(equivalence_corpus):
    for case in equivalence_corpus:
        naive, trie = _variant_sets(case.source)
        assert trie.index_to_text == naive.index_to_text, case.name
        assert trie.by_text == naive.by_text, case.name
        assert list(trie.by_text) == list(naive.by_text), case.name


def test_trie_matches_naive_in_es_dialect():
    naive, trie = _variant_sets(MOTIVATING_SHADER, es=True)
    assert trie.index_to_text == naive.index_to_text
    assert all(text.startswith("#version 310 es")
               for text in trie.by_text)


def test_property_random_flag_subsets_match_fresh_compiles():
    """Property test: for random flag subsets, the trie's text equals an
    independent single-combination pipeline run (not just the naive
    ``all_variants`` loop, which shares the compiler instance)."""
    compiler = ShaderCompiler(MOTIVATING_SHADER)
    trie_set = compiler.all_variants(mode="trie")
    rng = random.Random(20180417)
    for index in rng.sample(range(256), 32):
        flags = OptimizationFlags.from_index(index)
        fresh = ShaderCompiler(MOTIVATING_SHADER).compile(flags)
        assert trie_set.index_to_text[index] == fresh.output, flags


# ---------------------------------------------------------------------------
# The trie actually shares work
# ---------------------------------------------------------------------------


def test_trie_shares_prefixes_and_dedups_emission():
    compiler = ShaderCompiler(MOTIVATING_SHADER)
    trie = VariantTrie(compiler._module)
    index_to_text = trie.compile()
    assert len(index_to_text) == 256
    # Full binary tree would be 255 pass runs; the naive path pays 1024.
    assert trie.stats.pass_runs <= 255
    assert trie.stats.merges > 0, "no converging states on an 8-pass walk?"
    # One emission per distinct final state, not per combination.
    assert trie.stats.emits == len(set(index_to_text.values()))
    assert trie.stats.emits < 256
    assert len(trie.stats.level_states) == len(PASS_ORDER) + 1


def test_fingerprint_is_clone_invariant_and_change_sensitive():
    compiler = ShaderCompiler(MOTIVATING_SHADER)
    base = compiler._module
    fp = fingerprint_module(base)
    assert fp == fingerprint_module(base), "fingerprint must be a pure function"
    clone = clone_module(base, preserve_names=True)
    assert fingerprint_module(clone) == fp, \
        "name-preserving clone must fingerprint identically"
    from repro.passes.manager import run_cleanup
    run_cleanup(clone.function)
    assert fingerprint_module(clone) != fp, \
        "cleanup changes the IR, so the fingerprint must move"


def test_clone_does_not_mutate_source_module():
    compiler = ShaderCompiler(MOTIVATING_SHADER)
    base = compiler._module
    before = fingerprint_module(base)
    blocks_before = list(base.function.blocks)
    clone_module(base)
    clone_module(base, preserve_names=True)
    assert fingerprint_module(base) == before
    assert base.function.blocks == blocks_before


# ---------------------------------------------------------------------------
# Mode plumbing
# ---------------------------------------------------------------------------


def test_compile_mode_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_COMPILE", raising=False)
    assert compile_mode() == "trie"
    assert compile_mode("naive") == "naive"
    monkeypatch.setenv("REPRO_COMPILE", "naive")
    assert compile_mode() == "naive"
    assert compile_mode("trie") == "trie", "explicit arg beats the env"
    monkeypatch.setenv("REPRO_COMPILE", "corpus")
    assert compile_mode() == "corpus"
    assert compile_mode("corpus") == "corpus"
    with pytest.raises(ValueError):
        compile_mode("zealous")


# ---------------------------------------------------------------------------
# Byte-identical StudyResult
# ---------------------------------------------------------------------------


def test_study_json_identical_across_modes_and_jobs(monkeypatch):
    corpus = default_corpus(max_shaders=2)
    platforms = all_platforms()[:2]

    def study_json(mode: str, workers: int) -> str:
        monkeypatch.setenv("REPRO_COMPILE", mode)
        config = StudyConfig(platforms=platforms, max_workers=workers)
        return run_study(corpus, config).to_json()

    baseline = study_json("naive", 1)
    assert study_json("trie", 1) == baseline
    assert study_json("trie", 2) == baseline
    assert study_json("naive", 2) == baseline
