"""Shared test helpers: compile shaders, execute them, compare outputs.

Lives in its own module (not conftest.py) so test files can import it
unambiguously — ``benchmarks/conftest.py`` would otherwise shadow
``tests/conftest.py`` under the module name ``conftest`` depending on
collection order.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core import compile_shader
from repro.ir import Interpreter, verify_function
from repro.passes import OptimizationFlags


DEFAULT_ENV = {
    "uniforms": {"ambient": (0.5, 0.4, 0.6, 0.5)},
    "inputs": {"uv": (0.3, 0.7)},
}


def run_source(source: str, flags: Optional[OptimizationFlags] = None,
               uniforms: Optional[Dict] = None, inputs: Optional[Dict] = None):
    """Compile + verify + interpret; returns the outputs dict."""
    compiled = compile_shader(source, flags or OptimizationFlags.none())
    verify_function(compiled.module.function)
    interp = Interpreter(compiled.module, uniforms=uniforms or {},
                         inputs=inputs or {})
    return interp.run()


def assert_outputs_close(a: Dict, b: Dict, tol: float = 1e-6) -> None:
    assert set(a) == set(b), f"output sets differ: {set(a)} vs {set(b)}"
    for key in a:
        va, vb = a[key], b[key]
        ta = va if isinstance(va, tuple) else (va,)
        tb = vb if isinstance(vb, tuple) else (vb,)
        assert len(ta) == len(tb)
        for x, y in zip(ta, tb):
            scale = max(abs(float(x)), abs(float(y)), 1.0)
            assert abs(float(x) - float(y)) <= tol * scale, (key, va, vb)
