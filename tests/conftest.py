"""Test fixtures.  Helper functions live in :mod:`helpers` so test modules
never have to import from ``conftest`` (which benchmarks/conftest.py can
shadow)."""

from __future__ import annotations

import pytest

# Re-exported for any straggler `from conftest import ...` usage.
from helpers import DEFAULT_ENV, assert_outputs_close, run_source  # noqa: F401


@pytest.fixture(scope="session")
def blur_shader() -> str:
    from repro.corpus import MOTIVATING_SHADER

    return MOTIVATING_SHADER
