"""GLSL backend tests: emission, artifacts, roundtrip semantics, ES dialect."""

import pytest

from helpers import assert_outputs_close, run_source
from repro.core import compile_shader
from repro.glsl import parse_shader, preprocess
from repro.ir import Interpreter, emit_glsl, lower_shader, promote_to_ssa, verify_function
from repro.passes import OptimizationFlags

ROUNDTRIP_SOURCES = [
    # straight line
    "uniform vec4 c;\nout vec4 frag;\nvoid main() { frag = c * 2.0 + vec4(0.1); }",
    # diamond
    """uniform float u;
out vec4 frag;
void main() {
    float x = 0.0;
    if (u > 0.3) { x = 1.0; } else { x = 2.0; }
    frag = vec4(x);
}""",
    # triangle (no else)
    """uniform float u;
out vec4 frag;
void main() {
    float x = 5.0;
    if (u > 0.3) { x = 1.0; }
    frag = vec4(x);
}""",
    # loop
    """out vec4 frag;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 6; i++) { acc += float(i) * 0.5; }
    frag = vec4(acc);
}""",
    # loop with break and continue
    """out vec4 frag;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 10; i++) {
        if (i == 3) { continue; }
        if (i == 7) { break; }
        acc += 1.0;
    }
    frag = vec4(acc);
}""",
    # nested loop + branch
    """uniform sampler2D t;
in vec2 uv;
out vec4 frag;
void main() {
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 2; i++) {
        for (int j = 0; j < 2; j++) {
            vec4 s = texture(t, uv + vec2(float(i), float(j)) * 0.01);
            if (s.r > 0.5) { acc += s; }
        }
    }
    frag = acc;
}""",
    # early return
    """uniform float u;
out vec4 frag;
void main() {
    frag = vec4(0.5);
    if (u > 0.4) { return; }
    frag = vec4(0.25);
}""",
    # discard path
    """uniform float u;
out vec4 frag;
void main() {
    if (u > 0.9) { discard; }
    frag = vec4(u);
}""",
]


def _interp(module, uniforms=None, inputs=None):
    return Interpreter(module, uniforms=uniforms or {"u": 0.5, "t": None},
                       inputs=inputs or {"uv": (0.3, 0.6)}).run()


@pytest.mark.parametrize("source", ROUNDTRIP_SOURCES)
def test_emitted_glsl_reparses_and_preserves_semantics(source):
    module = lower_shader(parse_shader(preprocess(source).text))
    promote_to_ssa(module.function)
    verify_function(module.function)
    emitted = emit_glsl(module)

    module2 = lower_shader(parse_shader(preprocess(emitted).text))
    promote_to_ssa(module2.function)
    verify_function(module2.function)

    env = {"uniforms": {"u": 0.5}, "inputs": {"uv": (0.3, 0.6)}}
    out1 = Interpreter(module, **env).run()
    out2 = Interpreter(module2, **env).run()
    assert_outputs_close(out1, out2, tol=1e-9)


@pytest.mark.parametrize("source", ROUNDTRIP_SOURCES)
def test_double_roundtrip_reaches_fixpoint(source):
    """Emitting, re-parsing, and emitting again must be textually stable —
    the uniqueness statistic (Fig. 4c) relies on canonical emission."""
    once = compile_shader(source, OptimizationFlags.none()).output
    twice = compile_shader(once, OptimizationFlags.none()).output
    third = compile_shader(twice, OptimizationFlags.none()).output
    assert twice == third


def test_emission_declares_interface():
    out = compile_shader(
        "uniform sampler2D t;\nuniform vec4 c;\nin vec2 uv;\nout vec4 f;\n"
        "void main() { f = texture(t, uv) * c; }").output
    assert "uniform sampler2D t;" in out
    assert "uniform vec4 c;" in out
    assert "in vec2 uv;" in out
    assert "out vec4 f;" in out
    assert out.startswith("#version")


def test_es_dialect_adds_precision():
    compiled = compile_shader("out vec4 f;\nvoid main() { f = vec4(1.0); }",
                              es=True)
    assert "#version 310 es" in compiled.output
    assert "precision highp float;" in compiled.output


def test_every_instruction_becomes_a_temporary():
    out = compile_shader("""
uniform vec4 a;
uniform vec4 b;
out vec4 f;
void main() { f = a * b + a; }
""").output
    # LunarGlass-style output: one operation per line via temporaries.
    assert "t0" in out and "t1" in out


def test_uniform_array_emission():
    out = compile_shader("""
uniform vec3 ls[2];
out vec4 f;
void main() { f = vec4(ls[0] + ls[1], 1.0); }
""").output
    assert "uniform vec3 ls[2];" in out
    assert "ls[0]" in out and "ls[1]" in out
