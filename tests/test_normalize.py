"""Normalizer tests: do/while, switch, and struct flattening rewrites.

Semantics are checked by interpreting the ingested (normalized) shader
against a hand-written core-subset equivalent — the two must agree on
every output bit-for-bit (same arithmetic, same order).
"""

import pytest

from helpers import assert_outputs_close, run_source
from repro.errors import NormalizeError
from repro.glsl import ast, normalize_shader, parse_shader, print_shader
from repro.glsl import types as T
from repro.glsl.ingest import ingest_source


def normalized(source: str) -> ast.Shader:
    return normalize_shader(parse_shader(source))


def canonical(source: str) -> str:
    return ingest_source(source).canonical


# ---------------------------------------------------------------------------
# do/while
# ---------------------------------------------------------------------------


def test_do_while_becomes_while_with_latch():
    shader = normalized(
        "void main() { int i = 0; do { i++; } while (i < 3); }")
    body = shader.function("main").body.body
    wrapper = body[1]
    assert isinstance(wrapper, ast.BlockStmt)
    assert isinstance(wrapper.body[0], ast.DeclStmt)  # bool latch
    assert isinstance(wrapper.body[1], ast.WhileStmt)
    cond = wrapper.body[1].cond
    assert isinstance(cond, ast.Binary) and cond.op == "||"


def test_do_while_body_runs_before_first_test():
    wild = """
    out float result;
    void main() {
        float acc = 0.0;
        int i = 5;
        do { acc += 1.0; i++; } while (i < 3);
        result = acc;
    }
    """
    # The condition is false up front, but a do/while body still runs once.
    outputs = run_source(canonical(wild))
    assert outputs["result"] == 1.0


def test_do_while_matches_hand_written_loop():
    wild = """
    uniform float scale;
    out float result;
    void main() {
        float acc = 0.0;
        int i = 0;
        do { acc += scale * float(i); i++; } while (i < 4);
        result = acc;
    }
    """
    hand = """
    uniform float scale;
    out float result;
    void main() {
        float acc = 0.0;
        for (int i = 0; i < 4; i++) { acc += scale * float(i); }
        result = acc;
    }
    """
    uniforms = {"scale": 1.5}
    assert_outputs_close(run_source(canonical(wild), uniforms=uniforms),
                         run_source(hand, uniforms=uniforms))


# ---------------------------------------------------------------------------
# switch
# ---------------------------------------------------------------------------

SWITCH_SHADER = """
uniform int mode;
out float result;
void main() {
    float x = 1.0;
    switch (mode) {
    case 0:
        x = 10.0;
        break;
    case 2:
        x += 100.0;
    case 1:
        x *= 2.0;
        break;
    default:
        x = -1.0;
        break;
    }
    result = x;
}
"""


@pytest.mark.parametrize("mode,expected", [
    (0, 10.0),        # plain case
    (2, 202.0),       # falls through into case 1: (1+100)*2
    (1, 2.0),         # reached directly
    (7, -1.0),        # default
])
def test_switch_fallthrough_semantics(mode, expected):
    outputs = run_source(canonical(SWITCH_SHADER), uniforms={"mode": mode})
    assert outputs["result"] == expected


def test_switch_merged_labels_share_body():
    wild = """
    uniform int mode;
    out float result;
    void main() {
        float x = 0.0;
        switch (mode) { case 0: case 1: x = 5.0; break; default: break; }
        result = x;
    }
    """
    text = canonical(wild)
    for mode, expected in [(0, 5.0), (1, 5.0), (2, 0.0)]:
        assert run_source(text, uniforms={"mode": mode})["result"] == expected


def test_switch_becomes_if_chain():
    shader = normalized(
        "uniform int m;\nvoid main() { switch (m) { case 1: break; } }")
    text = print_shader(shader)
    assert "switch" not in text
    assert "if (__sw0 == 1)" in text


def test_switch_mid_case_break_rejected():
    with pytest.raises(NormalizeError) as excinfo:
        normalized("uniform int m;\nvoid main() {\n"
                   "  switch (m) { case 1: if (true) { break; } m; } }")
    assert "trailing statement" in str(excinfo.value)


def test_break_inside_loop_inside_case_allowed():
    shader = normalized(
        "uniform int m;\nvoid main() { switch (m) {\n"
        "  case 1: while (true) { break; } break; } }")
    assert "switch" not in print_shader(shader)


# ---------------------------------------------------------------------------
# struct flattening
# ---------------------------------------------------------------------------

STRUCT_SHADER = """
struct Light { vec3 pos; float power; };
uniform vec3 light_pos;
out vec4 result;
float apply(Light l) { return l.power + l.pos.x; }
void main() {
    Light a = Light(light_pos, 2.0);
    Light b = a;
    b.power = a.power * 3.0;
    result = vec4(apply(b));
}
"""


def test_struct_flattening_names_and_types():
    shader = normalized(STRUCT_SHADER)
    assert shader.structs == []
    fn = shader.function("apply")
    assert [p.name for p in fn.params] == ["l__pos", "l__power"]
    assert [p.ty for p in fn.params] == [T.VEC3, T.FLOAT]
    text = print_shader(shader)
    assert "struct" not in text
    assert "Light" not in text


def test_struct_flattening_semantics():
    hand = """
    uniform vec3 light_pos;
    out vec4 result;
    float apply(vec3 pos, float power) { return power + pos.x; }
    void main() {
        float a_power = 2.0;
        float b_power = a_power * 3.0;
        result = vec4(apply(light_pos, b_power));
    }
    """
    uniforms = {"light_pos": (0.25, 0.5, 0.75)}
    assert_outputs_close(
        run_source(canonical(STRUCT_SHADER), uniforms=uniforms),
        run_source(hand, uniforms=uniforms))


def test_nested_struct_flattening():
    wild = """
    struct Inner { float a; };
    struct Outer { Inner inner; float b; };
    out float result;
    void main() {
        Outer o = Outer(Inner(3.0), 4.0);
        result = o.inner.a + o.b;
    }
    """
    text = canonical(wild)
    assert "o__inner__a" in text
    assert run_source(text)["result"] == 7.0


def test_struct_uniform_flattened_to_leaf_uniforms():
    shader = normalized(
        "struct P { vec2 scale; float bias; };\nuniform P params;\n"
        "out float r;\nvoid main() { r = params.bias; }")
    names = [(g.qualifier, g.name) for g in shader.globals]
    assert ("uniform", "params__scale") in names
    assert ("uniform", "params__bias") in names


def test_struct_array_field_flattens():
    wild = """
    struct Taps { float w[3]; };
    out float result;
    void main() {
        Taps t;
        t.w[0] = 1.0; t.w[1] = 2.0; t.w[2] = 4.0;
        result = t.w[0] + t.w[1] + t.w[2];
    }
    """
    assert run_source(canonical(wild))["result"] == 7.0


def test_struct_return_type_rejected():
    with pytest.raises(NormalizeError) as excinfo:
        normalized("struct S { float x; };\n"
                   "S make() { return S(1.0); }\nvoid main() {}")
    assert "struct return" in str(excinfo.value)


def test_struct_array_rejected():
    with pytest.raises(NormalizeError):
        normalized("struct S { float x; };\n"
                   "void main() { S many[3]; }")


def test_normalize_idempotent_on_core_subset():
    source = ("uniform float u;\nout vec4 color;\n"
              "void main() { color = vec4(u); }")
    once = print_shader(normalize_shader(parse_shader(source)))
    twice = print_shader(normalize_shader(parse_shader(once)))
    assert once == twice
