"""The corpus-global trie's safety and sharing story.

Differential suite: ``StudyResult`` bytes must be identical across
``REPRO_COMPILE=naive|trie|corpus``, across ``--jobs {1,4}``, and across
sharded-then-merged runs — sharing compilation states across shaders and
vendor pipelines is an optimization, never an observable.

Counter suite: the sharing must actually *happen* — corpus-mode runs serve
pipeline steps from the edge memo (hits > 0) and intern strictly fewer
states than the per-pipeline unshared accounting would create.
"""

import json

import pytest

from repro.core.corpus_trie import (
    CorpusTrie, CorpusTrieStats, reset_shared_corpus_trie,
    shared_corpus_trie,
)
from repro.core.pipeline import ShaderCompiler
from repro.core.trie import VariantTrie
from repro.corpus import MOTIVATING_SHADER, default_corpus
from repro.gpu.jit import clear_frontend_memo
from repro.gpu.platform import all_platforms
from repro.harness.results import StudyResult, merge_study_results
from repro.harness.study import ShardSpec, StudyConfig, run_study
from repro.search.engine import EvaluationEngine


@pytest.fixture(autouse=True)
def _fresh_shared_state():
    """Every test starts from a cold process-global trie and JIT memos."""
    clear_frontend_memo()
    reset_shared_corpus_trie()
    yield
    clear_frontend_memo()
    reset_shared_corpus_trie()


def _synth_slice(count=4):
    cases = [case for case in default_corpus(synth_seed=7, synth_count=2)
             if case.family.startswith("synth_")]
    assert len(cases) >= count
    return cases[:count]


# ---------------------------------------------------------------------------
# Differential: byte-identical StudyResult across modes x jobs x shards
# ---------------------------------------------------------------------------


def test_study_bytes_identical_across_modes_jobs_and_shards(monkeypatch):
    corpus = _synth_slice(4)
    platforms = all_platforms()[:2]

    def study_json(mode, workers, shard=None):
        monkeypatch.setenv("REPRO_COMPILE", mode)
        clear_frontend_memo()
        reset_shared_corpus_trie()
        config = StudyConfig(platforms=platforms, max_workers=workers,
                             shard=shard)
        return run_study(corpus, config).to_json()

    baseline = study_json("naive", 1)
    assert study_json("trie", 1) == baseline
    assert study_json("corpus", 1) == baseline
    assert study_json("corpus", 4) == baseline

    parts = [StudyResult.from_json(
        study_json("corpus", 1, shard=ShardSpec.parse(f"{i}/2")))
        for i in (1, 2)]
    assert merge_study_results(parts).to_json() == baseline


def test_streaming_cache_corpus_run_is_byte_identical(monkeypatch, tmp_path):
    corpus = _synth_slice(2)
    platforms = all_platforms()[:2]

    monkeypatch.setenv("REPRO_COMPILE", "trie")
    baseline = run_study(corpus, StudyConfig(platforms=platforms)).to_json()

    monkeypatch.setenv("REPRO_COMPILE", "corpus")
    clear_frontend_memo()
    reset_shared_corpus_trie()
    streamed = run_study(corpus, StudyConfig(
        platforms=platforms, checkpoint_every=1,
        cache_path=str(tmp_path / "study.jsonl"))).to_json()
    assert streamed == baseline
    # The streaming store persisted through the corpus-mode compile path.
    assert (tmp_path / "study.jsonl").stat().st_size > 0


# ---------------------------------------------------------------------------
# Counters: cross-shader/cross-pipeline sharing actually occurs
# ---------------------------------------------------------------------------


def _unshared_state_count(corpus, platforms):
    """States that per-pipeline isolation would create: per-case VariantTrie
    walks plus one isolated JIT pipeline per (measured text, platform)."""
    total = 0
    for case in corpus:
        compiler = ShaderCompiler(case.source)
        walk = VariantTrie(compiler._module)
        variants = walk.compile()
        total += 1 + walk.stats.pass_runs  # root + one state per pass run
        texts = sorted(set(variants.values())) + [case.source]
        for _ in texts:
            for platform in platforms:
                steps = 1 + (1 if platform.jit.unroll_max_trips > 0 else 0) \
                    + len(platform.jit.passes)
                total += 1 + steps  # interned frontend root + one per step
    return total


def test_corpus_run_shares_states_across_pipelines(monkeypatch):
    corpus = _synth_slice(3)
    platforms = all_platforms()[:3]
    unshared = _unshared_state_count(corpus, platforms)

    monkeypatch.setenv("REPRO_COMPILE", "corpus")
    clear_frontend_memo()
    reset_shared_corpus_trie()
    engine = EvaluationEngine(platforms=platforms)
    run_study(corpus, StudyConfig(platforms=platforms), engine=engine)

    stats = engine.corpus_stats
    assert stats.hits > 0, "no pipeline step was ever shared"
    assert stats.interned_states > 0
    assert stats.interned_states < unshared, (
        f"corpus trie interned {stats.interned_states} states; unshared "
        f"per-pipeline compilation would have created {unshared}")
    # The engine mirrors the counters (the observability surface).
    assert engine.corpus_hit_count == stats.hits
    assert engine.corpus_miss_count == stats.pass_runs
    assert engine.corpus_state_count == stats.interned_states


def test_vendor_pipelines_share_through_the_trie(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILE", "corpus")
    platforms = all_platforms()
    trie = shared_corpus_trie()

    first = platforms[0].jit.compile(MOTIVATING_SHADER)
    assert trie.stats.hits == 0
    after_first = trie.stats.pass_runs
    for platform in platforms[1:]:
        platform.jit.compile(MOTIVATING_SHADER)
    assert trie.stats.hits > 0, (
        "vendor pipelines overlap (cleanup, gvn, div_to_mul) but nothing "
        "was served from the edge memo")
    assert trie.stats.pass_runs < after_first * len(platforms)

    # Recompiling the first vendor is now pure memo traffic.
    runs_before = trie.stats.pass_runs
    again = platforms[0].jit.compile(MOTIVATING_SHADER)
    assert trie.stats.pass_runs == runs_before
    assert again is first, "fully-memoized pipeline must return the " \
        "interned module"


def test_offline_walk_and_jit_share_edges(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILE", "corpus")
    trie = shared_corpus_trie()
    compiler = ShaderCompiler(MOTIVATING_SHADER)
    compiler.all_variants(mode="corpus", trie=trie)
    hits_before = trie.stats.hits

    # Intel's JIT applies cleanup + unroll + gvn + div_to_mul; its gvn /
    # div_to_mul steps use the same ("pass", name) edge keys the offline
    # walk just created, so at least one must be served from the memo.
    intel = next(p for p in all_platforms() if "gvn" in p.jit.passes)
    intel.jit.compile(MOTIVATING_SHADER)
    assert trie.stats.hits > hits_before


def test_trie_mode_keeps_the_shared_trie_cold(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILE", "trie")
    for platform in all_platforms()[:2]:
        platform.jit.compile(MOTIVATING_SHADER)
    ShaderCompiler(MOTIVATING_SHADER).all_variants()
    assert shared_corpus_trie().stats.as_dict() == \
        CorpusTrieStats().as_dict()


# ---------------------------------------------------------------------------
# Trie mechanics: eviction, emit memo, stats merging
# ---------------------------------------------------------------------------


def test_eviction_recomputes_but_stays_byte_identical():
    reference = VariantTrie(ShaderCompiler(MOTIVATING_SHADER)._module)
    expected = reference.compile()

    tiny = CorpusTrie(max_states=2)
    first = tiny.compile_variants(ShaderCompiler(MOTIVATING_SHADER)._module)
    second = tiny.compile_variants(ShaderCompiler(MOTIVATING_SHADER)._module)
    assert first == expected
    assert second == expected
    assert tiny.stats.evictions > 0, "max_states=2 must evict on this walk"
    assert len(tiny) <= 2


def test_emit_memo_and_repeat_walk_are_fully_shared():
    trie = CorpusTrie()
    module = ShaderCompiler(MOTIVATING_SHADER)._module
    trie.compile_variants(module)
    runs, emits = trie.stats.pass_runs, trie.stats.emits
    trie.compile_variants(module)
    assert trie.stats.pass_runs == runs, "second walk re-ran a pass"
    assert trie.stats.emits == emits, "second walk re-emitted"
    assert trie.stats.emit_hits >= emits


def test_max_states_validation():
    with pytest.raises(ValueError):
        CorpusTrie(max_states=0)


def test_stats_merge_dicts_sums_counters():
    a = {"hits": 3, "pass_runs": 5, "interned_states": 2, "emits": 1,
         "emit_hits": 0, "evictions": 0, "mode": "corpus"}
    b = {"hits": 4, "pass_runs": 1, "interned_states": 7, "emits": 2,
         "emit_hits": 5, "evictions": 1}
    merged = CorpusTrieStats.merge_dicts([a, b])
    assert merged == {"hits": 7, "pass_runs": 6, "interned_states": 9,
                      "emits": 3, "emit_hits": 5, "evictions": 1}


# ---------------------------------------------------------------------------
# CLI: --trie-stats plumbing end to end
# ---------------------------------------------------------------------------


def test_cli_trie_stats_roundtrip(monkeypatch, tmp_path, capsys):
    from repro.cli import main

    monkeypatch.setenv("REPRO_COMPILE", "corpus")
    shard_args = []
    for index in (1, 2):
        out = tmp_path / f"shard{index}.json"
        stats = tmp_path / f"shard{index}.stats.json"
        assert main(["study", "--max-shaders", "2", "--shard", f"{index}/2",
                     "--output", str(out), "--trie-stats", str(stats)]) == 0
        clear_frontend_memo()
        reset_shared_corpus_trie()
        payload = json.loads(stats.read_text())
        assert payload["mode"] == "corpus"
        assert payload["pass_runs"] > 0
        shard_args.append((out, stats))

    merged = tmp_path / "merged.json"
    merged_stats = tmp_path / "merged.stats.json"
    assert main(["merge-results", str(shard_args[0][0]), str(shard_args[1][0]),
                 "--output", str(merged),
                 "--trie-stats", str(shard_args[0][1]), str(shard_args[1][1]),
                 "--trie-stats-out", str(merged_stats)]) == 0
    summed = json.loads(merged_stats.read_text())
    parts = [json.loads(path.read_text()) for _, path in shard_args]
    assert summed["pass_runs"] == sum(p["pass_runs"] for p in parts)
    assert summed["hits"] == sum(p["hits"] for p in parts)
    assert summed["mode"] == "corpus"


def test_cli_trie_stats_flags_must_pair(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="--trie-stats-out"):
        main(["merge-results", "whatever.json",
              "--output", str(tmp_path / "out.json"),
              "--trie-stats", "a.json"])
