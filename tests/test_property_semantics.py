"""Property-based tests (hypothesis): the invariants the whole study rests on.

1. Every flag combination preserves shader semantics (safe passes exactly,
   unsafe passes within small relative tolerance).
2. The emitted GLSL re-parses and evaluates identically.
3. Random arithmetic expressions survive the optimizer.
"""

import math

from hypothesis import given, settings, strategies as st

from helpers import assert_outputs_close
from repro.core import ShaderCompiler, compile_shader
from repro.corpus import MOTIVATING_SHADER, default_corpus
from repro.glsl import parse_shader, preprocess
from repro.ir import Interpreter, verify_function
from repro.passes import OptimizationFlags

_CORPUS = {c.name: c for c in default_corpus()}
_SAMPLE_NAMES = sorted(_CORPUS)[::5]  # every 5th shader, deterministic
_COMPILERS = {}


def _compiler(name):
    if name not in _COMPILERS:
        _COMPILERS[name] = ShaderCompiler(_CORPUS[name].source)
    return _COMPILERS[name]


def _run(module, uv):
    from repro.harness.uniforms import (
        default_textures, default_uniform_values, fragment_inputs,
    )
    iface = module.interface
    interp = Interpreter(module, uniforms=default_uniform_values(iface),
                         inputs=fragment_inputs(iface, uv),
                         textures=default_textures(iface))
    return interp.run()


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(_SAMPLE_NAMES),
    index=st.integers(min_value=0, max_value=255),
    uv=st.tuples(st.floats(0.05, 0.95), st.floats(0.05, 0.95)),
)
def test_any_flag_combination_preserves_semantics(name, index, uv):
    compiler = _compiler(name)
    flags = OptimizationFlags.from_index(index)
    base = compiler.compile(OptimizationFlags.none())
    opt = compiler.compile(flags)
    verify_function(opt.module.function)
    out_base = _run(base.module, uv)
    out_opt = _run(opt.module, uv)
    tol = 1e-4 if (flags.fp_reassociate or flags.div_to_mul
                   or flags.reassociate) else 1e-7
    assert_outputs_close(out_base, out_opt, tol=tol)


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(_SAMPLE_NAMES),
    index=st.integers(min_value=0, max_value=255),
    uv=st.tuples(st.floats(0.05, 0.95), st.floats(0.05, 0.95)),
)
def test_emitted_glsl_reparses_to_same_behaviour(name, index, uv):
    compiler = _compiler(name)
    compiled = compiler.compile(OptimizationFlags.from_index(index))
    reparsed = compile_shader(compiled.output, OptimizationFlags.none())
    verify_function(reparsed.module.function)
    assert_outputs_close(_run(compiled.module, uv),
                         _run(reparsed.module, uv), tol=1e-7)


# ---------------------------------------------------------------------------
# Random expression fuzzing
# ---------------------------------------------------------------------------

_LEAVES = ("u0", "u1", "uv.x", "uv.y", "0.5", "2.0", "1.0", "0.0", "3.5")
_UNARY = ("abs({})", "-({})", "fract({})", "floor({})", "min({}, 4.0)",
          "clamp({}, 0.0, 8.0)")
_BINARY = ("({}) + ({})", "({}) - ({})", "({}) * ({})", "({}) / ({})",
           "min({}, {})", "max({}, {})", "mix({}, {}, 0.25)")


@st.composite
def float_exprs(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return draw(st.sampled_from(_LEAVES))
    if draw(st.booleans()):
        template = draw(st.sampled_from(_UNARY))
        return template.format(draw(float_exprs(depth - 1)))
    template = draw(st.sampled_from(_BINARY))
    return template.format(draw(float_exprs(depth - 1)),
                           draw(float_exprs(depth - 1)))


@settings(max_examples=60, deadline=None)
@given(expr=float_exprs(), index=st.integers(min_value=0, max_value=255),
       u0=st.floats(-4.0, 4.0), u1=st.floats(0.01, 4.0))
def test_random_expressions_survive_optimization(expr, index, u0, u1):
    source = f"""
uniform float u0;
uniform float u1;
in vec2 uv;
out vec4 frag;
void main() {{ frag = vec4({expr}); }}
"""
    compiler = ShaderCompiler(source)
    flags = OptimizationFlags.from_index(index)
    env = {"uniforms": {"u0": u0, "u1": u1}, "inputs": {"uv": (0.3, 0.6)}}
    base = Interpreter(compiler.compile(OptimizationFlags.none()).module,
                       **env).run()
    opt_module = compiler.compile(flags).module
    verify_function(opt_module.function)
    opt = Interpreter(opt_module, **env).run()
    for a, b in zip(base["frag"], opt["frag"]):
        if math.isfinite(a) and abs(a) < 1e12:
            assert abs(a - b) <= 1e-4 * max(abs(a), 1.0)


def test_unique_variant_flags_partition(blur_shader):
    variants = ShaderCompiler(blur_shader).all_variants()
    seen = []
    for _, combos in variants.items():
        seen.extend(f.index for f in combos)
    assert sorted(seen) == list(range(256))
