"""Edge-case and failure-injection tests across the stack."""

import pytest

from helpers import assert_outputs_close, run_source
from repro.core import ShaderCompiler, compile_shader
from repro.errors import (
    HarnessError, LoweringError, ParseError, ReproError, TypeError_,
)
from repro.glsl import parse_shader, preprocess
from repro.glsl import types as T
from repro.glsl.builtins import resolve_builtin
from repro.gpu.vendors import INTEL
from repro.harness.environment import ShaderExecutionEnvironment
from repro.ir import lower_shader
from repro.passes import OptimizationFlags


# ---------------------------------------------------------------------------
# Error hierarchy
# ---------------------------------------------------------------------------


def test_all_errors_derive_from_repro_error():
    with pytest.raises(ReproError):
        parse_shader("void main() { &&& }")


def test_lowering_requires_main():
    shader = parse_shader("float helper(float x) { return x; }")
    with pytest.raises(LoweringError):
        lower_shader(shader)


def test_lowering_rejects_assignment_to_uniform():
    shader = parse_shader("uniform float u;\nvoid main() { u = 1.0; }")
    with pytest.raises(LoweringError):
        lower_shader(shader)


def test_lowering_rejects_const_array_store():
    shader = parse_shader("""
void main() {
    const float w[2] = float[](1.0, 2.0);
    w[0] = 3.0;
}
""")
    with pytest.raises(LoweringError):
        lower_shader(shader)


def test_harness_wraps_driver_compile_failure():
    env = ShaderExecutionEnvironment(INTEL)
    with pytest.raises(HarnessError):
        env.run("this is not glsl at all {{{")


def test_builtin_resolution_errors():
    with pytest.raises(TypeError_):
        resolve_builtin("nonexistent", [T.FLOAT])
    with pytest.raises(TypeError_):
        resolve_builtin("texture", [T.FLOAT, T.VEC2])  # not a sampler


# ---------------------------------------------------------------------------
# Numeric edge cases survive optimization
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("expr", [
    "1.0 / 0.0",
    "0.0 / 0.0",
    "sqrt(-1.0)",
    "log(0.0)",
    "pow(0.0, 0.0)",
    "inversesqrt(0.0)",
    "normalize(vec3(0.0)).x",
    "mod(1.0, 0.0)",
])
def test_guarded_math_consistent_across_optimization(expr):
    src = f"out vec4 f;\nuniform float u;\nvoid main() {{ f = vec4({expr} + u * 0.0 + u - u); }}"
    base = run_source(src, uniforms={"u": 0.5})
    opt = run_source(src, OptimizationFlags.all(), uniforms={"u": 0.5})
    # Values may be huge sentinels; they must simply agree in magnitude class.
    for a, b in zip(base["f"], opt["f"]):
        if abs(float(a)) > 1e20:
            assert abs(float(b)) > 1e19 or b == a
        else:
            assert abs(float(a) - float(b)) < 1e-3 * max(abs(float(a)), 1.0)


def test_zero_trip_loop():
    out = run_source("""
out vec4 f;
void main() {
    float acc = 5.0;
    for (int i = 0; i < 0; i++) { acc += 1.0; }
    f = vec4(acc);
}
""", OptimizationFlags.single("unroll"))
    assert out["f"][0] == 5.0


def test_single_trip_loop_unrolls():
    c = compile_shader("""
out vec4 f;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 1; i++) { acc += 3.0; }
    f = vec4(acc);
}
""", OptimizationFlags.single("unroll"))
    assert "3.0" in c.output
    assert "while" not in c.output


def test_downward_counting_loop_unrolls():
    c = compile_shader("""
out vec4 f;
void main() {
    float acc = 0.0;
    for (int i = 4; i > 0; i--) { acc += float(i); }
    f = vec4(acc);
}
""", OptimizationFlags.single("unroll"))
    assert "10.0" in c.output


def test_loop_stepping_by_two():
    out = run_source("""
out vec4 f;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 10; i += 2) { acc += 1.0; }
    f = vec4(acc);
}
""", OptimizationFlags.single("unroll"))
    assert out["f"][0] == 5.0


def test_deeply_nested_branches():
    src = """
uniform float u;
out vec4 f;
void main() {
    float x = 0.0;
    if (u > 0.2) {
        if (u > 0.4) {
            if (u > 0.6) { x = 3.0; } else { x = 2.0; }
        } else { x = 1.0; }
    }
    f = vec4(x);
}
"""
    for u, expected in ((0.1, 0.0), (0.3, 1.0), (0.5, 2.0), (0.7, 3.0)):
        for flags in (OptimizationFlags.none(), OptimizationFlags.all()):
            out = run_source(src, flags, uniforms={"u": u})
            assert out["f"][0] == expected, (u, flags)


def test_output_read_back_after_write():
    """GLSL allows reading an `out` variable after writing it."""
    out = run_source("""
out vec4 f;
void main() {
    f = vec4(2.0);
    f = f * 3.0;
}
""")
    assert out["f"][0] == 6.0


def test_multiple_outputs():
    out = run_source("""
out vec4 color0;
out vec4 color1;
void main() {
    color0 = vec4(1.0);
    color1 = vec4(2.0);
}
""", OptimizationFlags.all())
    assert out["color0"][0] == 1.0
    assert out["color1"][0] == 2.0


def test_empty_main_compiles_on_all_flags():
    for index in (0, 255):
        c = compile_shader("out vec4 f;\nvoid main() { }",
                           OptimizationFlags.from_index(index))
        assert "void main()" in c.output


def test_shader_compiler_reuse_is_isolated():
    """One ShaderCompiler can compile many flag sets without cross-talk."""
    compiler = ShaderCompiler("""
out vec4 f;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 3; i++) { acc += 1.0; }
    f = vec4(acc);
}
""")
    unrolled = compiler.compile(OptimizationFlags.single("unroll")).output
    plain = compiler.compile(OptimizationFlags.none()).output
    assert "while" not in unrolled
    assert "while" in plain  # the unroll did not leak into the cached module


def test_preprocessor_define_injection_specializes():
    src = """
out vec4 f;
void main() {
#ifdef FAST_PATH
    f = vec4(1.0);
#else
    f = vec4(0.0);
#endif
}
"""
    fast = compile_shader(src, defines={"FAST_PATH": ""})
    slow = compile_shader(src)
    assert "1.0" in fast.output
    assert "1.0" not in slow.output
