"""Report-pipeline tests: the artifact registry, rendering determinism
(across runs and ``--jobs`` settings), and the warm-cache zero-work
guarantee."""

import pytest

from repro.cli import main
from repro.corpus import default_corpus
from repro.gpu.platform import platform_by_name
from repro.harness.study import StudyConfig, run_study
from repro.reporting import (
    ReportBuilder, all_artifacts, artifact_names, get_artifact,
)

PLATFORM_NAMES = ["Intel", "ARM"]


def _platforms():
    return [platform_by_name(name) for name in PLATFORM_NAMES]


@pytest.fixture(scope="module")
def corpus():
    return default_corpus(max_shaders=2)


@pytest.fixture(scope="module")
def study(corpus):
    return run_study(corpus, StudyConfig(platforms=_platforms()))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_registry_has_paper_artifacts():
    artifacts = all_artifacts()
    assert len(artifacts) >= 5
    assert len({a.name for a in artifacts}) == len(artifacts)
    for artifact in artifacts:
        assert artifact.paper_ref, f"{artifact.name} lacks a paper mapping"
        assert artifact.title and artifact.description


def test_registry_lookup():
    assert get_artifact("best-flags").paper_ref.startswith("Table I")
    assert "best-flags" in artifact_names()
    with pytest.raises(KeyError):
        get_artifact("no-such-artifact")


# ---------------------------------------------------------------------------
# Building and rendering
# ---------------------------------------------------------------------------


def test_report_covers_every_artifact(study):
    report = ReportBuilder(config=StudyConfig(platforms=_platforms())) \
        .build(study)
    assert [s.artifact.name for s in report.sections] == artifact_names()
    for section in report.sections:
        assert section.specs, f"{section.artifact.name} computed no figures"
    html = report.to_html()
    markdown = report.to_markdown()
    for artifact in all_artifacts():
        assert f'id="{artifact.name}"' in html
        assert f"(#{artifact.name})" in markdown


def test_report_only_selection(study):
    builder = ReportBuilder(config=StudyConfig(platforms=_platforms()))
    report = builder.build(study, only=["best-flags", "uniqueness"])
    assert [s.artifact.name for s in report.sections] == \
        ["best-flags", "uniqueness"]


def test_report_rendering_deterministic(study):
    builder = ReportBuilder(config=StudyConfig(platforms=_platforms()))
    first = builder.build(study)
    second = builder.build(study)
    assert first.to_text() == second.to_text()
    assert first.to_markdown() == second.to_markdown()
    assert first.to_html() == second.to_html()


def test_report_identical_across_jobs(corpus, study):
    """Mirrors the study's byte-identical guarantee: a parallel study run
    renders the exact same report bytes as the serial one."""
    parallel_study = run_study(
        corpus, StudyConfig(platforms=_platforms(), max_workers=2))
    builder = ReportBuilder(config=StudyConfig(platforms=_platforms()))
    serial = builder.build(study)
    parallel = builder.build(parallel_study)
    assert serial.to_text() == parallel.to_text()
    assert serial.to_markdown() == parallel.to_markdown()
    assert serial.to_html() == parallel.to_html()


def test_report_write(tmp_path, study):
    report = ReportBuilder(config=StudyConfig(platforms=_platforms())) \
        .build(study)
    paths = report.write(tmp_path)
    html = paths["html"].read_text()
    assert html.startswith("<!DOCTYPE html>") and "<svg" in html
    assert paths["md"].read_text().startswith("# ")


# ---------------------------------------------------------------------------
# Warm-cache regeneration: zero compiles, zero measurements
# ---------------------------------------------------------------------------


def test_warm_cache_report_does_zero_work(tmp_path, corpus):
    cache_path = str(tmp_path / "cache.json")
    config = StudyConfig(platforms=_platforms(), cache_path=cache_path)

    cold = ReportBuilder(config=config)
    cold_report = cold.build_from_corpus(corpus)
    assert cold.engine.compile_count > 0 and cold.engine.measure_count > 0
    cold.engine.cache.save()

    warm = ReportBuilder(config=config)
    warm_report = warm.build_from_corpus(corpus)
    assert warm.engine.frontend_count == 0, "warm report re-ran the front end"
    assert warm.engine.compile_count == 0, "warm report re-ran the pipeline"
    assert warm.engine.measure_count == 0, "warm report re-measured"
    assert warm_report.to_html() == cold_report.to_html()
    assert warm_report.to_markdown() == cold_report.to_markdown()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_report_list(capsys):
    assert main(["report", "--list"]) == 0
    out = capsys.readouterr().out
    for artifact in all_artifacts():
        assert artifact.name in out
        assert artifact.paper_ref in out


def test_cli_report_unknown_artifact(tmp_path):
    with pytest.raises(SystemExit):
        main(["report", "--only", "warpdrive", "--out-dir", str(tmp_path)])


def test_cli_report_missing_study_file(tmp_path):
    with pytest.raises(SystemExit, match="cannot read study"):
        main(["report", "--study", str(tmp_path / "nope.json"),
              "--out-dir", str(tmp_path)])


def test_variant_cache_roundtrips_sparse_indices(tmp_path):
    """put_variants must preserve the real flag indices, even for sparse
    maps (a dense-remap regression poisoned warm caches silently)."""
    from repro.search.cache import ResultCache
    cache = ResultCache(tmp_path / "c.json")
    sparse = {3: "textA", 7: "textB", 250: "textA"}
    cache.put_variants("digest", sparse)
    cache.save()
    reloaded = ResultCache(tmp_path / "c.json")
    assert reloaded.get_variants("digest") == sparse
    assert reloaded.get_variants("unknown") is None


def test_cli_report_end_to_end(tmp_path, capsys):
    out_dir = tmp_path / "out"
    cache = str(tmp_path / "cache.json")
    args = ["report", "--max-shaders", "1", "--cache", cache,
            "--out-dir", str(out_dir)]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "rendered" in first and "engine work:" in first
    html = (out_dir / "report.html").read_text()
    markdown = (out_dir / "report.md").read_text()
    assert "<svg" in html and "## " in markdown

    # Second run against the warm cache: zero work, identical bytes.
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "0 front-ends, 0 pass-pipeline compiles, 0 measurements" in second
    assert (out_dir / "report.html").read_text() == html
    assert (out_dir / "report.md").read_text() == markdown
