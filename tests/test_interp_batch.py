"""Batching-invariance properties of the lane-batched interpreter.

The :class:`~repro.ir.interp_batch.BatchedInterpreter` must be
observationally indistinguishable from looping the scalar interpreter over
the lanes: a batch of one equals the scalar run; permuting the lane order
permutes only the result rows; splitting a batch into sub-batches changes
nothing; the ``_MAX_STEPS`` budget is charged per lane, never pooled across
the batch.  Each property is exercised on shaders with divergent branches,
data-dependent loops, ``discard``, and texture sampling.
"""

from __future__ import annotations

import random

import pytest

from repro.core import compile_shader
from repro.errors import InterpError
from repro.gpu.platform import all_platforms
from repro.harness.environment import ShaderExecutionEnvironment
from repro.ir import BatchedInterpreter, Interpreter
from repro.passes import OptimizationFlags

#: Divergent branch inside a counted loop: lanes disagree per iteration.
BRANCHY_LOOP = """
out vec4 color;
in vec2 uv;
uniform float gain;

void main()
{
    float acc = 0.0;
    for (int i = 0; i < 8; i = i + 1) {
        if (uv.x > 0.5) {
            acc = acc + uv.x * gain;
        } else {
            acc = acc - uv.y;
        }
    }
    color = vec4(acc, uv.x, uv.y, 1.0);
}
"""

#: Some lanes discard, siblings keep rendering.
DIVERGENT_DISCARD = """
out vec4 color;
in vec2 uv;

void main()
{
    if (uv.x < 0.5) {
        discard;
    }
    color = vec4(uv.x, uv.y, 0.25, 1.0);
}
"""

#: Texture sampling at per-lane coordinates.
TEXTURED = """
out vec4 color;
in vec2 uv;
uniform sampler2D tex;

void main()
{
    vec4 base = texture(tex, uv);
    vec4 shifted = texture(tex, uv * 0.5);
    color = (base + shifted) * 0.5;
}
"""

#: Trip count depends on lane data: uv.x picks how long the loop spins.
DATA_DEPENDENT_LOOP = """
out vec4 color;
in vec2 uv;
uniform float gain;

void main()
{
    float acc = 0.0;
    while (acc < uv.x * 40.0) {
        acc = acc + 0.5 * gain;
    }
    color = vec4(acc, uv.x, 0.0, 1.0);
}
"""

SHADERS = {
    "branchy_loop": BRANCHY_LOOP,
    "divergent_discard": DIVERGENT_DISCARD,
    "textured": TEXTURED,
    "data_dependent_loop": DATA_DEPENDENT_LOOP,
}

UNIFORMS = {"gain": 1.0}

#: Lane inputs chosen to diverge: uv.x straddles both branch conditions.
LANES = [{"uv": (x, y)} for x, y in
         ((0.05, 0.5), (0.9, 0.1), (0.45, 0.8), (0.55, 0.3), (0.7, 0.7))]


def compile_module(source):
    """Front-end + no-op pipeline, the way the harness feeds the interp."""
    return compile_shader(source, OptimizationFlags.none()).module


def scalar_reference(module, lane_inputs):
    """(outputs, stats) per lane from the scalar interpreter loop."""
    outputs, stats = [], []
    for inputs in lane_inputs:
        interp = Interpreter(module, uniforms=UNIFORMS, inputs=inputs)
        outputs.append(interp.run())
        stats.append(interp.stats)
    return outputs, stats


def run_batched(module, lane_inputs):
    batch = BatchedInterpreter(module, uniforms=UNIFORMS, inputs=lane_inputs)
    return batch.run(), batch.stats


def assert_lanes_equal(actual, reference, context=""):
    actual_outputs, actual_stats = actual
    ref_outputs, ref_stats = reference
    assert actual_outputs == ref_outputs, context
    assert len(actual_stats) == len(ref_stats)
    for lane, (a, b) in enumerate(zip(actual_stats, ref_stats)):
        assert a.steps == b.steps, (context, lane)
        assert a.block_visits == b.block_visits, (context, lane)
        assert list(a.block_visits) == list(b.block_visits), \
            f"visit insertion order drifted: {context} lane {lane}"
        assert a.texture_samples == b.texture_samples, (context, lane)


@pytest.mark.parametrize("name", sorted(SHADERS))
def test_full_batch_matches_scalar_loop(name):
    module = compile_module(SHADERS[name])
    assert_lanes_equal(run_batched(module, LANES),
                       scalar_reference(module, LANES), name)


@pytest.mark.parametrize("name", sorted(SHADERS))
def test_batch_of_one_matches_scalar(name):
    module = compile_module(SHADERS[name])
    for inputs in LANES:
        interp = Interpreter(module, uniforms=UNIFORMS, inputs=inputs)
        expected = interp.run()
        outputs, stats = run_batched(module, [inputs])
        assert outputs == [expected]
        assert stats[0].steps == interp.stats.steps
        assert stats[0].block_visits == interp.stats.block_visits


@pytest.mark.parametrize("name", sorted(SHADERS))
def test_lane_permutation_permutes_rows_only(name):
    module = compile_module(SHADERS[name])
    base_outputs, base_stats = run_batched(module, LANES)
    order = list(range(len(LANES)))
    rng = random.Random(7)
    for _ in range(3):
        rng.shuffle(order)
        outputs, stats = run_batched(module, [LANES[i] for i in order])
        assert outputs == [base_outputs[i] for i in order], (name, order)
        for pos, i in enumerate(order):
            assert stats[pos].steps == base_stats[i].steps
            assert stats[pos].block_visits == base_stats[i].block_visits


@pytest.mark.parametrize("name", sorted(SHADERS))
@pytest.mark.parametrize("cut", [1, 2, 4])
def test_sub_batch_split_is_equivalent(name, cut):
    module = compile_module(SHADERS[name])
    whole = run_batched(module, LANES)
    left_outputs, left_stats = run_batched(module, LANES[:cut])
    right_outputs, right_stats = run_batched(module, LANES[cut:])
    assert_lanes_equal((left_outputs + right_outputs,
                        left_stats + right_stats), whole, (name, cut))


def test_divergent_discard_only_silences_discarded_lanes():
    module = compile_module(DIVERGENT_DISCARD)
    outputs, _ = run_batched(module, LANES)
    for inputs, lane_outputs in zip(LANES, outputs):
        if inputs["uv"][0] < 0.5:
            assert lane_outputs == {}
        else:
            assert lane_outputs["color"][0] == inputs["uv"][0]


def test_uniform_broadcast_equals_per_lane_uniforms():
    module = compile_module(BRANCHY_LOOP)
    broadcast, _ = run_batched(module, LANES)
    batch = BatchedInterpreter(module, uniforms=[UNIFORMS] * len(LANES),
                               inputs=LANES)
    assert batch.run() == broadcast


def test_lane_count_mismatch_rejected():
    module = compile_module(BRANCHY_LOOP)
    with pytest.raises(ValueError):
        BatchedInterpreter(module, uniforms=[UNIFORMS] * 2, inputs=LANES)


# ---------------------------------------------------------------------------
# Per-lane step budget
# ---------------------------------------------------------------------------

FAST_LANE = {"uv": (0.05, 0.5)}    # loop exits after a few trips
RUNAWAY_LANE = {"uv": (100.0, 0.5)}  # needs thousands of trips


def test_step_budget_is_per_lane_not_per_batch():
    """Two lanes each within budget must pass even though their *summed*
    step count exceeds it — the budget is charged per lane."""
    module = compile_module(DATA_DEPENDENT_LOOP)
    interp = Interpreter(module, uniforms=UNIFORMS, inputs=FAST_LANE)
    interp.run()
    per_lane_steps = interp.stats.steps
    budget = per_lane_steps + 10
    assert 2 * per_lane_steps > budget, "shader too small to prove anything"

    batch = BatchedInterpreter(module, uniforms=UNIFORMS,
                               inputs=[FAST_LANE, FAST_LANE],
                               max_steps=budget)
    outputs = batch.run()
    assert outputs[0] == outputs[1] != {}
    assert all(stats.steps == per_lane_steps for stats in batch.stats)


def test_runaway_lane_trips_budget_while_siblings_terminate():
    """One lane's data-dependent loop runs away: the scalar interpreter
    raises for that lane, and so must the batched run containing it —
    even though its sibling lanes terminate quickly."""
    module = compile_module(DATA_DEPENDENT_LOOP)
    budget = 200

    with pytest.raises(InterpError, match="step limit"):
        Interpreter(module, uniforms=UNIFORMS, inputs=RUNAWAY_LANE,
                    max_steps=budget).run()
    fast = Interpreter(module, uniforms=UNIFORMS, inputs=FAST_LANE,
                       max_steps=budget)
    assert fast.run() != {}

    batch = BatchedInterpreter(module, uniforms=UNIFORMS,
                               inputs=[FAST_LANE, RUNAWAY_LANE],
                               max_steps=budget)
    with pytest.raises(InterpError, match="step limit"):
        batch.run()


# ---------------------------------------------------------------------------
# Seed-batching invariance at the environment level
# ---------------------------------------------------------------------------


def test_run_many_seed_permutation_permutes_reports():
    env = ShaderExecutionEnvironment(all_platforms()[0])
    seeds = [3, 1, 4, 1, 5]
    base = env.run_many(DIVERGENT_DISCARD, seeds, mode="batched")
    swapped = env.run_many(DIVERGENT_DISCARD, list(reversed(seeds)),
                           mode="batched")
    for a, b in zip(base, reversed(swapped)):
        assert a.measurement == b.measurement
        assert a.true_ns == b.true_ns


def test_run_many_split_into_sub_batches_is_equivalent():
    env = ShaderExecutionEnvironment(all_platforms()[1])
    seeds = [10, 20, 30, 40]
    whole = env.run_many(BRANCHY_LOOP, seeds, mode="batched")
    parts = (env.run_many(BRANCHY_LOOP, seeds[:2], mode="batched")
             + env.run_many(BRANCHY_LOOP, seeds[2:], mode="batched"))
    for a, b in zip(whole, parts):
        assert a.measurement == b.measurement
        assert a.cost == b.cost


# ---------------------------------------------------------------------------
# Hoisted timer sampling
# ---------------------------------------------------------------------------


def test_timer_measure_many_bit_identical_to_measure_loop():
    """measure_many must reproduce measure()'s float stream exactly —
    including drift models — and leave the rng in the identical state."""
    drifty = [p for p in all_platforms() if p.timer.drift_sigma > 0.0]
    steady = [p for p in all_platforms() if p.timer.drift_sigma == 0.0]
    assert drifty and steady, "need both timer families for coverage"
    for platform in drifty + steady:
        timer = platform.timer
        rng_a, rng_b = random.Random(99), random.Random(99)
        expected = [timer.measure(1234.5, rng_a) for _ in range(250)]
        got = timer.measure_many(1234.5, rng_b, 250)
        assert got == expected, platform.name
        assert rng_a.getstate() == rng_b.getstate(), platform.name
