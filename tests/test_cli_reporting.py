"""CLI and reporting-module tests."""

import pytest

from repro.cli import main, parse_flags
from repro.corpus import MOTIVATING_SHADER
from repro.passes import DEFAULT_LUNARGLASS, OptimizationFlags
from repro.reporting import (
    render_bars, render_histogram, render_table, render_violin_table,
    violin_summary,
)


@pytest.fixture()
def shader_file(tmp_path):
    path = tmp_path / "blur.frag"
    path.write_text(MOTIVATING_SHADER)
    return str(path)


# ---------------------------------------------------------------------------
# Flag parsing
# ---------------------------------------------------------------------------


def test_parse_flags_names():
    flags = parse_flags("unroll,fp_reassociate")
    assert flags.unroll and flags.fp_reassociate and not flags.gvn


def test_parse_flags_special_values():
    assert parse_flags("default") == DEFAULT_LUNARGLASS
    assert parse_flags("all") == OptimizationFlags.all()
    assert parse_flags("none") == OptimizationFlags.none()


def test_parse_flags_unknown_rejected():
    with pytest.raises(SystemExit):
        parse_flags("warpdrive")


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def test_cli_optimize(shader_file, capsys):
    assert main(["optimize", shader_file, "--flags",
                 "unroll,fp_reassociate,div_to_mul"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("#version")
    assert out.count("texture(") == 9  # unrolled
    assert "for (" not in out


def test_cli_optimize_es(shader_file, capsys):
    assert main(["optimize", shader_file, "--es", "--flags", "none"]) == 0
    assert "precision highp float;" in capsys.readouterr().out


def test_cli_variants(shader_file, capsys):
    assert main(["variants", shader_file]) == 0
    out = capsys.readouterr().out
    assert "unique variants from 256 combinations" in out


def test_cli_time_single_platform(shader_file, capsys):
    assert main(["time", shader_file, "--platform", "AMD",
                 "--flags", "unroll"]) == 0
    out = capsys.readouterr().out
    assert "AMD" in out and "speed-up" in out


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def test_fmt_cell_keeps_sign_above_1000():
    """Mixed-magnitude speed-up columns must format consistently: every
    float carries an explicit sign, whatever its magnitude."""
    from repro.reporting import fmt_cell
    assert fmt_cell(2.5) == "+2.50"
    assert fmt_cell(-4.25) == "-4.25"
    assert fmt_cell(1234.5).startswith("+")
    assert fmt_cell(-1234.5).startswith("-")
    assert fmt_cell(1.5e6).startswith("+")
    assert fmt_cell(999.994) == "+999.99"
    assert fmt_cell(999.996) == "+1000"   # rounds across the branch boundary
    assert fmt_cell(7) == "7"          # ints are not sign-decorated
    assert fmt_cell("x") == "x"


def test_render_table_mixed_magnitudes_signed():
    text = render_table(["v"], [[1234.5], [-0.25], [2.0]])
    cells = [line.strip() for line in text.splitlines()[2:]]
    assert all(cell[0] in "+-" for cell in cells)


def test_render_table_alignment():
    text = render_table(["a", "long header"], [[1, 2.5], [333, -4.25]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert all(len(line) == len(lines[1]) for line in lines[1:])
    assert "+2.50" in text and "-4.25" in text


def test_render_bars_handles_negative():
    text = render_bars([5.0, -2.5], ["up", "down"])
    assert "up" in text and "down" in text and "-#" in text


def test_render_bars_empty():
    assert "(empty)" in render_bars([], title="x")


def test_render_histogram_bins_sum_to_count():
    import re
    values = [float(i) for i in range(100)]
    text = render_histogram(values, bins=10)
    counts = [int(m.group(1)) for m in re.finditer(r"\)\s+(\d+)", text)]
    assert sum(counts) == 100


def test_violin_summary_quartiles():
    summary = violin_summary(list(range(1, 101)))
    assert summary["min"] == 1
    assert summary["max"] == 100
    assert 24 <= summary["p25"] <= 27
    assert 49 <= summary["median"] <= 52
    assert summary["mean"] == pytest.approx(50.5)


def test_violin_summary_empty():
    assert violin_summary([])["mean"] == 0.0


def test_render_violin_table():
    text = render_violin_table({"flagA": [1.0, 2.0], "flagB": [-1.0, 3.0]})
    assert "flagA" in text and "flagB" in text and "median" in text
