#!/usr/bin/env python3
"""Verify every intra-repo Markdown link in README.md and docs/ resolves.

Scans ``[text](target)`` links; relative targets (optionally with a
``#fragment``) must exist on disk relative to the file containing the link.
External (``http``/``https``/``mailto``) links are skipped.  Exits non-zero
listing every broken link — CI runs this next to the ``repro report`` smoke
test.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def markdown_files(root: Path):
    yield from sorted(root.glob("*.md"))
    yield from sorted((root / "docs").glob("**/*.md"))


def check_file(path: Path, root: Path):
    """Yield ``(link, reason)`` for every broken link in one file."""
    for match in LINK_RE.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES):
            continue
        file_part, _, _fragment = target.partition("#")
        if not file_part:          # same-file anchor, e.g. "#contents"
            continue
        resolved = (path.parent / file_part).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            yield target, "points outside the repository"
            continue
        if not resolved.exists():
            yield target, "target does not exist"


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = []
    checked = 0
    for path in markdown_files(root):
        checked += 1
        for target, reason in check_file(path, root):
            broken.append(f"{path.relative_to(root)}: {target} ({reason})")
    if broken:
        print("broken intra-repo links:", file=sys.stderr)
        for line in broken:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"checked {checked} Markdown files: all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
