#!/usr/bin/env python3
"""Record the variant-compilation perf trajectory into BENCH_pipeline.json.

Times the 256-combination variant explosion on the motivating shader (and a
corpus aggregate) under both ``REPRO_COMPILE`` modes, asserts the trie path
is byte-identical to the naive path and at least ``--min-speedup`` times
faster, and writes the numbers as JSON.  Also boots an in-process
``StudyService`` and times a cold corpus-study submission against a warm
resubmission of the same spec, asserting the warm path does zero engine
work.  CI runs this after the pytest-benchmark suite; the committed
BENCH_pipeline.json seeds the repo's recorded perf baseline.

Also times a seed-sweep measurement workload under both ``REPRO_MEASURE``
modes (the batched path pays the driver JIT, interpreter profile, and cost
model once per unit instead of once per seed), asserts bit-identical
reports, and gates the batched speedup at ``--min-measure-speedup``.

The corpus-trie section compares per-shader tries + isolated vendor JIT
pipelines against one corpus-global trie on a synth corpus (work counted in
pass runs + emissions, offline maps checked byte-identical) and gates the
work ratio at ``--min-corpus-work-ratio``.

Usage:
    PYTHONPATH=src python tools/bench_pipeline.py [--out BENCH_pipeline.json]
        [--min-speedup 3.0] [--corpus-shaders 8] [--repeats 3]
        [--service-shaders 2] [--min-measure-speedup 3.0]
        [--measure-shaders 0] [--measure-seeds 8]
        [--corpus-trie-synth 8] [--min-corpus-work-ratio 1.5]
"""

from __future__ import annotations

import argparse
import json
import platform as platform_mod
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pipeline import ShaderCompiler  # noqa: E402
from repro.core.trie import VariantTrie  # noqa: E402
from repro.corpus import MOTIVATING_SHADER, default_corpus  # noqa: E402


def _best_of(repeats: int, fn):
    best, result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_shader(source: str, repeats: int) -> dict:
    compiler = ShaderCompiler(source)
    naive_s, naive = _best_of(repeats, lambda: compiler.all_variants(mode="naive"))
    trie_s, trie = _best_of(repeats, lambda: compiler.all_variants(mode="trie"))
    if trie.index_to_text != naive.index_to_text or trie.by_text != naive.by_text:
        raise SystemExit("FATAL: trie output is not byte-identical to naive")
    walk = VariantTrie(compiler._module)
    walk.compile()
    return {
        "naive_seconds": round(naive_s, 6),
        "trie_seconds": round(trie_s, 6),
        "speedup": round(naive_s / trie_s, 2),
        "unique_variants": naive.unique_count,
        "trie_pass_runs": walk.stats.pass_runs,
        "trie_emits": walk.stats.emits,
        "trie_merges": walk.stats.merges,
        "naive_pass_runs": 1024,   # sum of popcounts over 256 combinations
        "naive_emits": 256,
    }


def bench_measurement(max_shaders: int, seed_count: int, repeats: int) -> dict:
    """Seed-sweep measurement: scalar reference vs seed-batched mode.

    Every (shader, platform) unit of the study corpus (``max_shaders=0``
    means the whole default corpus — the study's real workload) is
    measured under *seed_count* seeds, the paper's repeated-runs protocol.
    The scalar mode reruns the whole pipeline per seed; the batched mode
    prepares each unit once (memoized JIT, lane-batched interpreter
    profile, one cost estimate) and repeats only the seed-dependent timer
    protocol.  Both front-end memos are dropped before every timed sweep
    so each mode starts cold, and the report streams are checked
    bit-identical before any number is kept.
    """
    from repro.gpu.jit import clear_frontend_memo
    from repro.gpu.platform import all_platforms
    from repro.harness.environment import ShaderExecutionEnvironment

    corpus = default_corpus(max_shaders=max_shaders or None)
    platforms = all_platforms()
    seeds = list(range(seed_count))
    units = [(case, platform) for case in corpus for platform in platforms]

    def sweep(mode):
        clear_frontend_memo()
        reports = []
        for case, platform in units:
            env = ShaderExecutionEnvironment(platform)
            reports.append(env.run_many(case.source, seeds, mode=mode))
        return reports

    scalar_s, scalar_reports = _best_of(repeats, lambda: sweep("scalar"))
    batched_s, batched_reports = _best_of(repeats, lambda: sweep("batched"))
    for unit_scalar, unit_batched in zip(scalar_reports, batched_reports):
        for a, b in zip(unit_scalar, unit_batched):
            if (a.measurement != b.measurement or a.cost != b.cost
                    or a.true_ns != b.true_ns):
                raise SystemExit("FATAL: batched measurement is not "
                                 "bit-identical to scalar")
    return {
        "shaders": len(corpus),
        "platforms": len(platforms),
        "seeds_per_unit": seed_count,
        "scalar_seconds": round(scalar_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 2),
    }


def bench_corpus_trie(synth_count: int, repeats: int) -> dict:
    """Per-shader tries + isolated vendor JITs vs one corpus-global trie.

    Work unit = pass runs + emissions.  The baseline walks each synth
    shader's own ``VariantTrie`` and then compiles every measured text
    (unique variants + the original source) through every vendor JIT in
    isolation, counting the JIT pipeline steps actually executed.  The
    corpus mode routes the same workload — offline walks *and* vendor
    pipelines — through one shared :class:`CorpusTrie`, where overlapping
    vendor pass prefixes and repeated texts become edge-memo hits instead
    of recomputation.  Offline variant maps are checked byte-identical
    between the modes before any number is kept.
    """
    import os

    from repro.core.corpus_trie import (
        reset_shared_corpus_trie, shared_corpus_trie,
    )
    from repro.gpu.jit import (
        clear_frontend_memo, jit_pipeline_steps, reset_jit_pipeline_steps,
    )
    from repro.gpu.platform import all_platforms

    cases = [case
             for case in default_corpus(synth_seed=2018,
                                        synth_count=synth_count)
             if case.family.startswith("synth_")]
    platforms = all_platforms()

    def run_mode(mode):
        os.environ["REPRO_COMPILE"] = mode
        clear_frontend_memo()
        reset_jit_pipeline_steps()
        reset_shared_corpus_trie()
        texts = {}
        offline_work = 0
        for case in cases:
            compiler = ShaderCompiler(case.source)
            if mode == "corpus":
                variants = compiler.all_variants()
                index_to_text = variants.index_to_text
            else:
                walk = VariantTrie(compiler._module)
                index_to_text = walk.compile()
                offline_work += walk.stats.pass_runs + walk.stats.emits
            texts[case.name] = index_to_text
            measured = sorted(set(index_to_text.values())) + [case.source]
            for text in measured:
                for platform in platforms:
                    platform.jit.compile(text)
        if mode == "corpus":
            stats = shared_corpus_trie().stats
            work = stats.pass_runs + stats.emits
            counters = stats.as_dict()
        else:
            work = offline_work + jit_pipeline_steps()
            counters = None
        return texts, work, counters

    previous = os.environ.get("REPRO_COMPILE")
    try:
        baseline_s, (baseline_texts, baseline_work, _) = _best_of(
            repeats, lambda: run_mode("trie"))
        corpus_s, (corpus_texts, corpus_work, counters) = _best_of(
            repeats, lambda: run_mode("corpus"))
    finally:
        if previous is None:
            os.environ.pop("REPRO_COMPILE", None)
        else:
            os.environ["REPRO_COMPILE"] = previous
        clear_frontend_memo()
        reset_shared_corpus_trie()
    if corpus_texts != baseline_texts:
        raise SystemExit("FATAL: corpus-trie variants are not byte-identical "
                         "to the per-shader trie")
    return {
        "shaders": len(cases),
        "platforms": len(platforms),
        "baseline_work": baseline_work,
        "corpus_work": corpus_work,
        "work_ratio": round(baseline_work / corpus_work, 2),
        "step_hits": counters["hits"],
        "emit_hits": counters["emit_hits"],
        "interned_states": counters["interned_states"],
        "baseline_seconds": round(baseline_s, 6),
        "corpus_seconds": round(corpus_s, 6),
    }


def bench_service(max_shaders: int) -> dict:
    """Cold submit vs warm resubmit of one corpus study through the service.

    Runs the real service objects (journal, queue, worker pool, shared
    engine) in-process — the socket transport is the only piece skipped,
    so the numbers isolate the warm-cache win from connection overhead.
    """
    from repro.service.server import StudyService

    def submit_and_wait(svc):
        start = time.perf_counter()
        response = svc.handle(
            {"op": "submit", "spec": {"corpus": {"max_shaders": max_shaders}}})
        if not response.get("ok"):
            raise SystemExit(f"FATAL: service submit failed: {response}")
        job = svc.queue.get(response["id"])
        deadline = time.monotonic() + 300.0
        while not job.terminal:
            if time.monotonic() > deadline:
                raise SystemExit(f"FATAL: service job {job.id} never finished")
            time.sleep(0.01)
        elapsed = time.perf_counter() - start
        if job.state != "done":
            raise SystemExit(
                f"FATAL: service job ended {job.state}: {job.error}")
        return elapsed, job

    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        svc = StudyService(tmp, workers=1)
        svc.pool.start()
        try:
            cold_s, cold = submit_and_wait(svc)
            warm_s, warm = submit_and_wait(svc)
        finally:
            svc.stop()
    if any(warm.work.get(key) for key in ("frontends", "compiles",
                                          "measures")):
        raise SystemExit(f"FATAL: warm resubmit did engine work: {warm.work}")
    return {
        "shaders": max_shaders,
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 2),
        "cold_work": cold.work,
        "warm_work": warm.work,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_pipeline.json")
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--corpus-shaders", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--service-shaders", type=int, default=2)
    parser.add_argument("--min-measure-speedup", type=float, default=3.0)
    parser.add_argument("--measure-shaders", type=int, default=0,
                        help="0 = the whole default corpus")
    parser.add_argument("--measure-seeds", type=int, default=8)
    parser.add_argument("--corpus-trie-synth", type=int, default=8,
                        help="synth families per generator seed")
    parser.add_argument("--min-corpus-work-ratio", type=float, default=1.5)
    args = parser.parse_args(argv)

    motivating = bench_shader(MOTIVATING_SHADER, args.repeats)

    corpus = default_corpus(max_shaders=args.corpus_shaders)
    naive_total = trie_total = 0.0
    for case in corpus:
        numbers = bench_shader(case.source, 1)
        naive_total += numbers["naive_seconds"]
        trie_total += numbers["trie_seconds"]

    payload = {
        "benchmark": "pipeline_variant_compilation",
        "unit": "seconds (best of N, perf_counter)",
        "python": platform_mod.python_version(),
        "machine": platform_mod.machine(),
        "bench_all_256_variants": motivating,
        "corpus_aggregate": {
            "shaders": len(corpus),
            "naive_seconds": round(naive_total, 6),
            "trie_seconds": round(trie_total, 6),
            "speedup": round(naive_total / trie_total, 2),
        },
        "measurement_batching": bench_measurement(
            args.measure_shaders, args.measure_seeds, args.repeats),
        "corpus_trie": bench_corpus_trie(args.corpus_trie_synth, 1),
        "service_warm_resubmit": bench_service(args.service_shaders),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    speedup = motivating["speedup"]
    print(f"motivating shader: naive {motivating['naive_seconds']:.3f}s, "
          f"trie {motivating['trie_seconds']:.3f}s -> {speedup:.1f}x "
          f"({motivating['trie_pass_runs']} vs 1024 pass runs, "
          f"{motivating['trie_emits']} vs 256 emissions)")
    print(f"corpus x{len(corpus)}: naive {naive_total:.2f}s, "
          f"trie {trie_total:.2f}s -> {naive_total / trie_total:.1f}x")
    measure = payload["measurement_batching"]
    print(f"measurement x{measure['shaders']} shaders x"
          f"{measure['platforms']} platforms x{measure['seeds_per_unit']} "
          f"seeds: scalar {measure['scalar_seconds']:.2f}s, batched "
          f"{measure['batched_seconds']:.2f}s -> {measure['speedup']:.1f}x")
    corpus_trie = payload["corpus_trie"]
    print(f"corpus trie x{corpus_trie['shaders']} shaders x"
          f"{corpus_trie['platforms']} platforms: unshared "
          f"{corpus_trie['baseline_work']} vs shared "
          f"{corpus_trie['corpus_work']} pass-runs+emits -> "
          f"{corpus_trie['work_ratio']:.2f}x "
          f"({corpus_trie['step_hits']} step hits, "
          f"{corpus_trie['interned_states']} interned states)")
    service = payload["service_warm_resubmit"]
    print(f"service x{service['shaders']}: cold {service['cold_seconds']:.2f}s, "
          f"warm resubmit {service['warm_seconds']:.3f}s -> "
          f"{service['speedup']:.0f}x (warm work: 0/0/0)")
    print(f"wrote {args.out}")
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below the "
              f"{args.min_speedup:.1f}x floor", file=sys.stderr)
        return 1
    if measure["speedup"] < args.min_measure_speedup:
        print(f"FAIL: measurement speedup {measure['speedup']:.2f}x below "
              f"the {args.min_measure_speedup:.1f}x floor", file=sys.stderr)
        return 1
    if corpus_trie["work_ratio"] < args.min_corpus_work_ratio:
        print(f"FAIL: corpus-trie work ratio "
              f"{corpus_trie['work_ratio']:.2f}x below the "
              f"{args.min_corpus_work_ratio:.1f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
