#!/usr/bin/env python3
"""Enforce docstrings on the public surface of ``src/repro/``.

Every public module and every public module-level function and class (name
not starting with ``_``) must carry a docstring.  Methods are not yet
enforced — tighten ``CHECK_METHODS`` once the backlog is documented.  The
docs tree (``docs/corpus.md`` in particular) leans on docstrings as the API
reference of record, so CI runs this next to the link checker in the docs
job.

Exits non-zero listing every violation as ``path:line: message``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, Tuple

Violation = Tuple[Path, int, str]

#: Flip to also require docstrings on public methods of public classes.
CHECK_METHODS = False


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_body(body, path: Path, owner: str) -> Iterator[Violation]:
    """Yield violations for the defs/classes directly inside *body*."""
    for node in body:
        if isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            label = f"{owner}{node.name}"
            if ast.get_docstring(node) is None:
                yield path, node.lineno, f"class {label} lacks a docstring"
            if CHECK_METHODS:
                yield from _check_body(node.body, path, f"{label}.")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _is_public(node.name):
                continue
            if owner and not CHECK_METHODS:
                continue
            if ast.get_docstring(node) is None:
                yield (path, node.lineno,
                       f"def {owner}{node.name} lacks a docstring")
            # Nested defs are implementation detail: not checked.


def check_file(path: Path) -> Iterator[Violation]:
    """Yield every public-surface docstring violation in one source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    if _is_public(path.stem) and ast.get_docstring(tree) is None:
        yield path, 1, "module lacks a docstring"
    yield from _check_body(tree.body, path, "")


def main() -> int:
    """Check every module under src/repro; print violations, return 1 if any."""
    root = Path(__file__).resolve().parent.parent
    package = root / "src" / "repro"
    violations = []
    checked = 0
    for path in sorted(package.rglob("*.py")):
        checked += 1
        violations.extend(check_file(path))
    if violations:
        print("missing docstrings on the public surface:", file=sys.stderr)
        for path, line, message in violations:
            print(f"  {path.relative_to(root)}:{line}: {message}",
                  file=sys.stderr)
        print(f"{len(violations)} violations in {checked} modules",
              file=sys.stderr)
        return 1
    print(f"checked {checked} modules: public surface fully documented")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
