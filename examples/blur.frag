#version 450
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec4 ambient;

void main()
{
    const vec4[] weights = vec4[](
        vec4(0.01), vec4(0.15), vec4(0.42), vec4(0.63), vec4(1.83),
        vec4(0.63), vec4(0.42), vec4(0.15), vec4(0.01));
    const vec2[] offsets = vec2[](
        vec2(-0.0083), vec2(-0.0062), vec2(-0.0041), vec2(-0.0021),
        vec2(0.0), vec2(0.0021), vec2(0.0041), vec2(0.0062), vec2(0.0083));
    float weightTotal = 0.0;
    fragColor = vec4(0.0);
    for (int i = 0; i < 9; i++) {
        weightTotal += weights[i][0];
        fragColor += weights[i] * texture(tex, uv + offsets[i]) * 3.0 * ambient;
    }
    fragColor /= weightTotal;
}
