"""Peek inside the compiler: IR before/after passes, vendor JIT differences,
and the cost model's view of one shader.

Run:  python examples/inspect_compiler.py
"""

from repro import OptimizationFlags, ShaderCompiler, all_platforms
from repro.gpu.cost import estimate_kernel
from repro.harness.environment import ShaderExecutionEnvironment

SHADER = """
uniform sampler2D tex;
uniform float strength;
in vec2 uv;
out vec4 fragColor;
void main() {
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 5; i++) {
        acc += texture(tex, uv + vec2(float(i) * 0.01, 0.0)) * 0.2;
    }
    if (strength > 0.5) { acc = acc * strength; } else { acc = acc * 0.5; }
    fragColor = acc;
}
"""


def main() -> None:
    compiler = ShaderCompiler(SHADER)

    none = compiler.compile(OptimizationFlags.none())
    print("=== IR with all flags off ===")
    print(none.module.dump())

    full = compiler.compile(OptimizationFlags(unroll=True, hoist=True,
                                              fp_reassociate=True))
    print("\n=== IR after unroll + hoist + FP reassociation ===")
    print(full.module.dump())
    print("\n=== re-emitted GLSL ===")
    print(full.output)

    print("=== what each vendor's driver does to the unoptimized source ===")
    for platform in all_platforms():
        module = platform.jit.compile(none.output)
        env = ShaderExecutionEnvironment(platform)
        cost = estimate_kernel(module.function, platform.spec,
                               env.profile(module))
        blocks = len(module.function.blocks)
        print(f"{platform.name:10s} blocks={blocks:2d} "
              f"cycles/frag={cost.cycles_per_fragment:8.1f} "
              f"regs={cost.registers:3d} occupancy={cost.occupancy:.2f}")


if __name__ == "__main__":
    main()
