#version 300 es
// Terrain splat shading: nested structs, a #define with a line \
// continuation, and a do/while refinement loop feeding a switch.
precision highp float;

#define BLEND(a, b, t) \
    mix(a, b, t)

struct LayerParams {
    float scale;
    float sharpness;
};

struct Layer {
    vec3 tint;
    LayerParams params;
};

const int STEPS = 4;

uniform sampler2D height_map;
uniform vec3 grass_tint;
uniform vec3 rock_tint;
uniform float layer_scale;
uniform float layer_sharpness;
uniform int biome;

in vec2 v_uv;
out vec4 frag_color;

void main() {
    Layer grass = Layer(grass_tint, LayerParams(layer_scale, layer_sharpness));
    Layer rock = Layer(rock_tint, LayerParams(layer_scale * 2.0, 1.0));
    float height = 0.0;
    int step_index = 0;
    do {
        height += texture(height_map,
                          v_uv * grass.params.scale
                              + vec2(float(step_index))).r;
        step_index++;
    } while (step_index < STEPS);
    height /= float(STEPS);
    float t = clamp(height * rock.params.sharpness, 0.0, 1.0);
    vec3 base = BLEND(grass.tint, rock.tint, t);
    switch (biome) {
    case 0:
        base *= vec3(0.9, 1.1, 0.9);
        break;
    case 1:
        base *= vec3(1.1, 1.0, 0.8);
        break;
    default:
        break;
    }
    frag_color = vec4(base, 1.0);
}
