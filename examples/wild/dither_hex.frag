#version 300 es
/* Ordered dither with a hex-configured matrix size.  The preprocessor
 * arithmetic below exercises hex literals and integer division: with
 * LEVELS 0x10 the #if picks the 4x4 branch (0x10 / 4 == 4). */
precision highp float;

#define LEVELS 0x10

#if LEVELS / 4 == 4
#define DITHER_DIM 4
#else
#define DITHER_DIM 2
#endif

const int DIM = DITHER_DIM;

uniform sampler2D src;
uniform float thresholds[DIM * DIM];
uniform vec2 resolution;

in vec2 v_uv;
out vec4 frag_color;

void main() {
    vec4 color = texture(src, v_uv);
    vec2 pixel = floor(v_uv * resolution);
    int col = int(mod(pixel.x, float(DIM)));
    int row = int(mod(pixel.y, float(DIM)));
    float threshold = thresholds[row * DIM + col];
    vec3 quantized = floor(color.rgb * 15.0 + vec3(threshold)) / 15.0;
    frag_color = vec4(quantized, color.a);
}
