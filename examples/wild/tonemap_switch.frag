#version 300 es
// Tonemap operator selector; the switch fallthrough is intentional:
// mode 2 adds exposure bias and then reuses the reinhard path.
precision mediump float;

uniform sampler2D hdr_buffer;
uniform int tonemap_mode;
uniform float exposure;

in vec2 v_uv;
out vec4 frag_color;

void main() {
    vec3 color = texture(hdr_buffer, v_uv).rgb * exposure;
    switch (tonemap_mode) {
    case 0:
        // clamp-only passthrough
        color = clamp(color, 0.0, 1.0);
        break;
    case 2:
        color *= 1.5;
    case 1:
        // reinhard
        color = color / (color + vec3(1.0));
        break;
    default:
        // filmic-ish fallback
        color = (color * (2.51 * color + vec3(0.03)))
            / (color * (2.43 * color + vec3(0.59)) + vec3(0.14));
        break;
    }
    frag_color = vec4(color, 1.0);
}
