#version 300 es
// Deferred g-buffer writer: layout-qualified multiple render targets and
// a struct holding the surface sample being emitted.
precision highp float;

struct Surface {
    vec3 albedo;
    vec3 normal;
    float roughness;
};

uniform sampler2D albedo_map;
uniform sampler2D normal_map;
uniform float roughness_scale;

in vec2 v_uv;
in vec3 v_normal;

layout(location = 0) out vec4 out_albedo;
layout(location = 1) out vec4 out_normal;
layout(location = 2) out vec4 out_params;

void main() {
    Surface surf;
    surf.albedo = texture(albedo_map, v_uv).rgb;
    vec3 bump = texture(normal_map, v_uv).xyz * 2.0 - vec3(1.0);
    surf.normal = normalize(v_normal + bump);
    surf.roughness = clamp(
        texture(normal_map, v_uv).a * roughness_scale, 0.0, 1.0);
    out_albedo = vec4(surf.albedo, 1.0);
    out_normal = vec4(surf.normal * 0.5 + vec3(0.5), 0.0);
    out_params = vec4(surf.roughness, 0.0, 0.0, 1.0);
}
