#version 300 es
// Forward-lit phong accumulator, as dumped from an engine's shader cache.
precision highp float;

#define MAX_LIGHTS 3
#define ATTENUATE 1

#if MAX_LIGHTS > 4
#error too many lights for the mobile tier
#endif

struct Light {
    vec3 position;
    vec3 color;
    float intensity;
};

struct Material {
    vec3 albedo;
    float shininess;
};

const int LIGHT_COUNT = MAX_LIGHTS;

uniform vec3 light_positions[LIGHT_COUNT];
uniform vec3 light_colors[LIGHT_COUNT];
uniform float light_intensity;
uniform vec3 mat_albedo;
uniform float mat_shininess;
uniform vec3 camera_pos;

in vec3 v_normal;
in vec3 v_world_pos;
out vec4 frag_color;

vec3 shade(Light light, Material mat, vec3 normal, vec3 view_dir) {
    vec3 to_light = normalize(light.position - v_world_pos);
    float diffuse = max(dot(normal, to_light), 0.0);
    vec3 half_dir = normalize(to_light + view_dir);
    float spec = pow(max(dot(normal, half_dir), 0.0), mat.shininess);
#if ATTENUATE
    float dist = distance(light.position, v_world_pos);
    float atten = 1.0 / (1.0 + 0.1 * dist + 0.01 * dist * dist);
#else
    float atten = 1.0;
#endif
    return (mat.albedo * diffuse + vec3(spec)) * light.color
        * light.intensity * atten;
}

void main() {
    Material mat = Material(mat_albedo, mat_shininess);
    vec3 normal = normalize(v_normal);
    vec3 view_dir = normalize(camera_pos - v_world_pos);
    vec3 acc = vec3(0.0);
    for (int i = 0; i < LIGHT_COUNT; i++) {
        Light light = Light(light_positions[i], light_colors[i],
                            light_intensity);
        acc += shade(light, mat, normal, view_dir);
    }
    frag_color = vec4(acc, 1.0);
}
