#version 300 es
// Separable blur written with a do/while tap loop and a const-expression
// kernel size, the way GPU vendors' sample code tends to read.
precision highp float;

const int RADIUS = 3;
const int KERNEL = 2 * RADIUS + 1;

uniform sampler2D src;
uniform float tap_weights[KERNEL];
uniform vec2 texel;

in vec2 v_uv;
out vec4 frag_color;

void main() {
    vec4 acc = vec4(0.0);
    float total = 0.0;
    int i = 0;
    do {
        float w = tap_weights[i];
        vec2 offset = texel * float(i - RADIUS);
        acc += texture(src, v_uv + offset) * w;
        total += w;
        i++;
    } while (i < KERNEL);
    frag_color = acc / max(total, 0.0001);
}
