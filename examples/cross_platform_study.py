"""Run a small cross-platform study (a scaled-down version of the paper's
full evaluation) and print Table-I-style best static flags plus Fig.-9-style
per-flag summaries.

Run:  python examples/cross_platform_study.py
"""

from repro import StudyConfig, run_study
from repro.analysis.flags import best_static_flags, isolated_flag_impact
from repro.analysis.speedups import average_speedups
from repro.corpus import default_corpus
from repro.passes import ALL_FLAG_NAMES
from repro.reporting import render_table, render_violin_table


def main() -> None:
    corpus = default_corpus(families=["blur", "phong", "fog", "tonemap",
                                      "ssao", "sprite"])
    print(f"running exhaustive study over {len(corpus)} shaders "
          f"(256 combos each, 5 platforms)...")
    study = run_study(corpus, StudyConfig(seed=7, verbose=True))

    print()
    rows = [(r.platform, r.best_possible, r.best_static, r.default_lunarglass)
            for r in average_speedups(study)]
    print(render_table(
        ["platform", "best %", "best static %", "default %"], rows,
        title="Average speed-ups (Fig. 5 style)"))

    print()
    rows = [(p, str(best_static_flags(study, p))) for p in study.platforms]
    print(render_table(["platform", "best static flags"], rows,
                       title="Best static flags (Table I style)"))

    print()
    for platform in ("AMD", "ARM"):
        data = {name: isolated_flag_impact(study, platform, name).speedups_pct
                for name in ALL_FLAG_NAMES}
        print(render_violin_table(
            data, title=f"Isolated flag impact on {platform} (Fig. 9 style)"))
        print()


if __name__ == "__main__":
    main()
