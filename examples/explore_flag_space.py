"""Exhaustively explore all 256 flag combinations for one shader and find
the best set per platform — the paper's iterative-compilation workflow on a
single shader.

Run:  python examples/explore_flag_space.py
"""

from repro import ShaderCompiler, all_platforms
from repro.corpus import default_corpus
from repro.harness.environment import ShaderExecutionEnvironment


def main() -> None:
    case = next(c for c in default_corpus() if c.name == "pbr.l2_aces")
    print(f"shader: {case.name} (family {case.family})")

    compiler = ShaderCompiler(case.source)
    variants = compiler.all_variants()
    print(f"256 flag combinations collapse to {variants.unique_count} "
          f"unique shader texts\n")

    for platform in all_platforms():
        env = ShaderExecutionEnvironment(platform)
        base = env.run(case.source, seed=10).measurement.mean_ns
        best_time = base
        best_flags = "leave untouched"
        for text, combos in variants.items():
            time_ns = env.run(text, seed=11).measurement.mean_ns
            if time_ns < best_time:
                best_time = time_ns
                best_flags = str(min(combos, key=lambda f: f.index))
        gain = (base / best_time - 1.0) * 100.0
        print(f"{platform.name:10s} best={best_flags:40s} gain={gain:+6.2f}%")


if __name__ == "__main__":
    main()
