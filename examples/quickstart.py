"""Quickstart: optimize one shader and time it on every simulated platform.

Run:  python examples/quickstart.py
"""

from repro import (
    MOTIVATING_SHADER, OptimizationFlags, all_platforms, optimize_source,
)
from repro.harness.environment import ShaderExecutionEnvironment


def main() -> None:
    # 1. The paper's motivating blur shader (Listing 1).
    print("=== original shader ===")
    print(MOTIVATING_SHADER)

    # 2. Offline-optimize it: unroll, unsafe FP reassociation, div-to-mul.
    flags = OptimizationFlags(unroll=True, fp_reassociate=True,
                              div_to_mul=True, coalesce=True)
    optimized = optimize_source(MOTIVATING_SHADER, flags)
    print("=== optimized shader (LunarGlass-style output, Listing 2) ===")
    print(optimized)

    # 3. Time both through each platform's driver JIT + GPU model.
    print(f"{'platform':10s} {'device':28s} {'orig us':>9s} {'opt us':>9s} "
          f"{'speed-up':>9s}")
    for platform in all_platforms():
        env = ShaderExecutionEnvironment(platform)
        base = env.run(MOTIVATING_SHADER, seed=1).measurement.mean_us
        fast = env.run(optimized, seed=2).measurement.mean_us
        print(f"{platform.name:10s} {platform.device:28s} "
              f"{base:9.1f} {fast:9.1f} {(base / fast - 1) * 100.0:+8.1f}%")


if __name__ == "__main__":
    main()
