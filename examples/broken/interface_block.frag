#version 300 es
// Known-bad input (kept outside examples/wild/ so --import-dir runs stay
// clean): uniform interface blocks are outside the supported subset, so
// `repro import` rejects this file and --minimize shrinks it to a
// one-line reproducer (see docs/import.md and the CI import job).
precision highp float;

uniform CameraBlock {
    mat4 view_projection;
    vec4 camera_position;
};

in vec2 v_uv;
out vec4 frag_color;

void main() {
    frag_color = vec4(v_uv, camera_position.xy);
}
