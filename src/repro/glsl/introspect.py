"""Shader interface introspection.

The harness uses this to auto-generate a matching vertex shader and to
initialise every uniform to a default value (Section IV-B of the paper: "we
used shader introspection to ascertain types and sizes for all uniform
inputs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.glsl import ast
from repro.glsl import types as T


@dataclass(frozen=True)
class InterfaceVar:
    """One uniform / input / output slot."""

    name: str
    ty: T.GLSLType

    @property
    def is_sampler(self) -> bool:
        base = self.ty.element if isinstance(self.ty, T.Array) else self.ty
        return isinstance(base, T.Sampler)


@dataclass
class ShaderInterface:
    """Uniforms, stage inputs, and stage outputs of a shader."""

    uniforms: List[InterfaceVar] = field(default_factory=list)
    inputs: List[InterfaceVar] = field(default_factory=list)
    outputs: List[InterfaceVar] = field(default_factory=list)

    @property
    def samplers(self) -> List[InterfaceVar]:
        return [u for u in self.uniforms if u.is_sampler]


def shader_interface(shader: ast.Shader) -> ShaderInterface:
    """Collect the interface of a parsed shader."""
    interface = ShaderInterface()
    for decl in shader.globals:
        var = InterfaceVar(decl.name, decl.ty)
        if decl.qualifier == "uniform":
            interface.uniforms.append(var)
        elif decl.qualifier == "in":
            interface.inputs.append(var)
        elif decl.qualifier == "out":
            interface.outputs.append(var)
    return interface


def interface_summary(shader: ast.Shader) -> str:
    """One-line-per-slot description of a shader's interface.

    Used by ``repro import`` to report what each ingested shader exposes
    (the harness will need to synthesize values for every slot).
    """
    interface = shader_interface(shader)
    lines: List[str] = []
    for label, slots in (("uniform", interface.uniforms),
                         ("in", interface.inputs),
                         ("out", interface.outputs)):
        for var in slots:
            lines.append(f"  {label} {var.ty} {var.name}")
    if not lines:
        return "  (no interface variables)"
    return "\n".join(lines)
