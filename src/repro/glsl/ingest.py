"""Wild-GLSL ingestion: bring real-world shaders into the studied subset.

Real fragment shaders found in the wild (engine dumps, ShaderToy exports,
GFXBench-style captures) use a wider surface than the subset the rest of
the library studies: preprocessor conditionals with arithmetic, ``struct``
declarations, ``do``/``while``, ``switch``, const-expression array sizes.
:func:`ingest_source` runs the full import pipeline over one shader:

1. preprocess with full conditional semantics,
2. parse with the widened grammar,
3. normalize into the core subset (:mod:`repro.glsl.normalize`), and
4. validate that the canonical output round-trips through lowering and
   SSA construction — i.e. it will behave like a natively-authored
   corpus shader in ``repro study`` / ``tune`` / ``report``.

Any failure raises the frontend's usual :class:`~repro.errors.ReproError`
subclass; callers that want an automatically shrunk reproducer instead
should use :mod:`repro.glsl.minimize`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.glsl import ast
from repro.glsl.normalize import normalize_shader
from repro.glsl.parser import parse_shader
from repro.glsl.preprocessor import preprocess
from repro.glsl.printer import print_shader

#: File suffixes scanned by :func:`ingest_directory`, in scan order.
SHADER_SUFFIXES = (".frag", ".glsl", ".fs")


@dataclass
class IngestResult:
    """One successfully imported shader."""

    name: str          # stem used to identify the shader in corpora
    source: str        # original wild text, as read
    canonical: str     # normalized text inside the core subset
    shader: ast.Shader  # the normalized AST behind ``canonical``
    version: Optional[str]  # ``#version`` string from the original, if any

    @property
    def loc_before(self) -> int:
        return sum(1 for ln in self.source.splitlines() if ln.strip())

    @property
    def loc_after(self) -> int:
        return sum(1 for ln in self.canonical.splitlines() if ln.strip())


def ingest_source(
    source: str,
    name: str = "<import>",
    defines: Optional[Dict[str, str]] = None,
) -> IngestResult:
    """Import one wild shader; raises a ReproError subclass on failure."""
    pp = preprocess(source, defines)
    shader = parse_shader(pp.text)
    normalize_shader(shader)
    canonical = print_shader(shader)
    _validate(canonical)
    return IngestResult(name=name, source=source, canonical=canonical,
                        shader=shader, version=pp.version)


def _validate(canonical: str) -> None:
    """Round-trip the canonical text through lowering + SSA.

    Imported late to avoid a glsl -> ir package cycle at import time.
    """
    from repro.ir import lower_shader, promote_to_ssa

    reparsed = parse_shader(canonical)
    module = lower_shader(reparsed)
    promote_to_ssa(module.function)


def ingest_file(path: Union[str, Path],
                defines: Optional[Dict[str, str]] = None) -> IngestResult:
    """Import the shader file at *path*."""
    path = Path(path)
    return ingest_source(path.read_text(), name=path.stem, defines=defines)


def iter_shader_files(directory: Union[str, Path]) -> List[Path]:
    """Shader files under *directory* (recursive), sorted for determinism."""
    root = Path(directory)
    return sorted(
        p for p in root.rglob("*")
        if p.is_file() and p.suffix in SHADER_SUFFIXES
    )


def ingest_directory(
    directory: Union[str, Path],
    defines: Optional[Dict[str, str]] = None,
) -> List[IngestResult]:
    """Import every shader file under *directory*; fails on the first error."""
    return [ingest_file(p, defines=defines) for p in iter_shader_files(directory)]
