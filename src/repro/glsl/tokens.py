"""Token definitions for the GLSL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Lexical token categories."""
    IDENT = auto()
    KEYWORD = auto()
    TYPE = auto()          # basic type name (float, vec3, mat4, sampler2D, ...)
    INT = auto()
    FLOAT = auto()
    BOOL = auto()
    OP = auto()            # operator or punctuation
    EOF = auto()


#: GLSL keywords relevant to the subset we support.  Type names are kept in a
#: separate set so the parser can distinguish declarations from expressions.
KEYWORDS = frozenset(
    {
        "attribute", "break", "case", "const", "continue", "default",
        "discard", "do", "else", "flat", "for", "highp", "if", "in", "inout",
        "layout", "lowp", "mediump", "out", "precision", "return", "struct",
        "switch", "uniform", "varying", "void", "while",
    }
)

TYPE_NAMES = frozenset(
    {
        "float", "int", "uint", "bool",
        "vec2", "vec3", "vec4",
        "ivec2", "ivec3", "ivec4",
        "uvec2", "uvec3", "uvec4",
        "bvec2", "bvec3", "bvec4",
        "mat2", "mat3", "mat4",
        "sampler2D", "sampler3D", "samplerCube", "sampler2DShadow",
        "sampler2DArray",
    }
)

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPS = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "^^",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++", "--", "<<", ">>",
)

SINGLE_CHAR_OPS = frozenset("+-*/%<>=!&|^?:;,.()[]{}~")


def parse_int_literal(text: str) -> int:
    """Value of a GLSL integer literal token (decimal, hex, or octal).

    Accepts the optional ``u``/``U`` suffix.  Mirrors the GLSL spec: a
    ``0x``/``0X`` prefix is hexadecimal, a leading ``0`` is octal, anything
    else decimal.
    """
    body = text.rstrip("uU")
    if body[:2].lower() == "0x":
        return int(body, 16)
    if body.startswith("0") and len(body) > 1:
        return int(body, 8)
    return int(body, 10)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"
