"""Typed AST node definitions for the GLSL subset.

Nodes are plain dataclasses.  Expression nodes gain a ``ty`` attribute during
parsing (the parser performs type inference so lowering never guesses), and
every node records the 1-based source ``line`` for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.glsl.types import GLSLType


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    """Base expression; ``ty`` is filled in by the parser's type inference."""

    line: int = 0
    ty: Optional[GLSLType] = None


@dataclass
class FloatLit(Expr):
    """Float literal."""
    value: float = 0.0


@dataclass
class IntLit(Expr):
    """Integer literal."""
    value: int = 0


@dataclass
class BoolLit(Expr):
    """Boolean literal."""
    value: bool = False


@dataclass
class Ident(Expr):
    """Name reference."""
    name: str = ""


@dataclass
class Binary(Expr):
    """Infix binary expression."""
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Unary(Expr):
    """Prefix unary expression."""
    op: str = ""
    operand: Optional[Expr] = None
    postfix: bool = False  # i++ / i--


@dataclass
class Ternary(Expr):
    """``cond ? a : b`` conditional expression."""
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class Call(Expr):
    """Builtin call, user function call, or type constructor (vec3(...))."""

    callee: str = ""
    args: List[Expr] = field(default_factory=list)
    is_constructor: bool = False


@dataclass
class ArrayLiteral(Expr):
    """``vec2[](e0, e1, ...)`` — sized by its element list."""

    element_type: Optional[GLSLType] = None
    elements: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """Subscript expression: ``base[index]``."""
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Member(Expr):
    """``base.name`` — a vector swizzle or a struct field access.

    The parser distinguishes the two by the base's type: when ``base.ty`` is
    a :class:`~repro.glsl.types.Struct` this is a field access (flattened
    away by the normalizer before lowering); otherwise a swizzle.
    """

    base: Optional[Expr] = None
    name: str = ""


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statements."""
    line: int = 0


@dataclass
class Declarator:
    """One declared name within a declaration statement."""

    name: str
    ty: GLSLType
    init: Optional[Expr] = None


@dataclass
class DeclStmt(Stmt):
    """Local declaration, e.g. ``vec3 x = ...;``."""
    declarators: List[Declarator] = field(default_factory=list)
    is_const: bool = False


@dataclass
class AssignStmt(Stmt):
    """Assignment, including the compound ``+=`` family."""
    target: Optional[Expr] = None  # Ident / Index / Member chains
    op: str = "="  # =, +=, -=, *=, /=
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    """Expression evaluated for its side effects."""
    expr: Optional[Expr] = None


@dataclass
class BlockStmt(Stmt):
    """``{ ... }`` statement list."""
    body: List[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    """``if`` / ``else`` conditional."""
    cond: Optional[Expr] = None
    then_body: Optional[BlockStmt] = None
    else_body: Optional[BlockStmt] = None


@dataclass
class ForStmt(Stmt):
    """``for (init; cond; step)`` loop."""
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Optional[BlockStmt] = None


@dataclass
class WhileStmt(Stmt):
    """``while`` loop."""
    cond: Optional[Expr] = None
    body: Optional[BlockStmt] = None


@dataclass
class DoWhileStmt(Stmt):
    """``do { ... } while (cond);`` — body runs before the first test.

    Ingested shaders only: the normalizer rewrites this into a ``while``
    loop with a first-iteration latch before lowering.
    """

    cond: Optional[Expr] = None
    body: Optional[BlockStmt] = None


@dataclass
class SwitchCase:
    """One ``case``/``default`` group inside a ``switch`` statement.

    ``values`` lists the (const-folded) case labels sharing this body —
    adjacent labels with no statements between them collapse into one
    group.  ``None`` marks the ``default`` group.
    """

    values: Optional[List[int]]
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class SwitchStmt(Stmt):
    """``switch (scrutinee) { case ...: ... }`` over an integer scrutinee.

    Ingested shaders only: the normalizer lowers the statement into an
    ``if``/``else if`` chain (with C fallthrough semantics preserved by
    body concatenation) before lowering.
    """

    cond: Optional[Expr] = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    """``return [expr];``."""
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    """``break;``."""
    pass


@dataclass
class ContinueStmt(Stmt):
    """``continue;``."""
    pass


@dataclass
class DiscardStmt(Stmt):
    """``discard;`` — fragment kill."""
    pass


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass
class StructDecl:
    """A top-level ``struct Name { ... };`` type declaration."""

    ty: "GLSLType"  # the Struct type this declaration introduced
    line: int = 0

    @property
    def name(self) -> str:
        return str(self.ty)


@dataclass
class GlobalDecl:
    """A module-scope declaration (uniform / in / out / const global)."""

    qualifier: Optional[str]  # "uniform" | "in" | "out" | "const" | None
    ty: GLSLType
    name: str
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class Param:
    """One function parameter."""
    qualifier: str  # "in" | "out" | "inout"
    ty: GLSLType
    name: str


@dataclass
class FunctionDef:
    """A function definition: signature plus body."""
    return_type: GLSLType
    name: str
    params: List[Param]
    body: BlockStmt
    line: int = 0


@dataclass
class Shader:
    """A parsed translation unit."""

    version: Optional[str]
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
    #: struct type declarations, in source order (empty after normalization)
    structs: List[StructDecl] = field(default_factory=list)

    def function(self, name: str) -> Optional[FunctionDef]:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None

    @property
    def uniforms(self) -> List[GlobalDecl]:
        return [g for g in self.globals if g.qualifier == "uniform"]

    @property
    def inputs(self) -> List[GlobalDecl]:
        return [g for g in self.globals if g.qualifier == "in"]

    @property
    def outputs(self) -> List[GlobalDecl]:
        return [g for g in self.globals if g.qualifier == "out"]


LValue = (Ident, Index, Member)
