"""Render a GLSL AST back to source text.

The printer produces canonical formatting (4-space indents, one statement per
line, minimal parentheses driven by precedence), so printing also serves as a
normalizer: two ASTs print equal iff they are structurally identical.
"""

from __future__ import annotations

from typing import List, Optional

from repro.glsl import ast
from repro.glsl import types as T

_PREC = {
    "||": 1, "^^": 2, "&&": 3,
    "==": 4, "!=": 4,
    "<": 5, ">": 5, "<=": 5, ">=": 5,
    "+": 6, "-": 6,
    "*": 7, "/": 7, "%": 7,
}
_UNARY_PREC = 8


def print_shader(shader: ast.Shader) -> str:
    """Render *shader* to GLSL source."""
    lines: List[str] = []
    if shader.version:
        lines.append(f"#version {shader.version}")
    for struct in shader.structs:
        lines.extend(_struct_decl(struct))
    for decl in shader.globals:
        lines.append(_global_decl(decl))
    for fn in shader.functions:
        lines.append("")
        lines.extend(_function(fn))
    return "\n".join(lines) + "\n"


def format_float(value: float) -> str:
    """GLSL float literal: always contains a decimal point or exponent."""
    if value != value:  # NaN guard; GLSL has no NaN literal
        return "(0.0 / 0.0)"
    if value in (float("inf"), float("-inf")):
        return "(1.0 / 0.0)" if value > 0 else "(-1.0 / 0.0)"
    text = repr(float(value))
    if "e" in text or "E" in text or "." in text:
        return text
    return text + ".0"


def _struct_decl(decl: ast.StructDecl) -> List[str]:
    lines = [f"struct {decl.name}", "{"]
    for field_name, field_ty in decl.ty.fields:
        ty, suffix = _split_array(field_ty)
        lines.append(f"    {ty} {field_name}{suffix};")
    lines.append("};")
    return lines


def _global_decl(decl: ast.GlobalDecl) -> str:
    qual = f"{decl.qualifier} " if decl.qualifier else ""
    ty, suffix = _split_array(decl.ty)
    init = f" = {print_expr(decl.init)}" if decl.init is not None else ""
    return f"{qual}{ty} {decl.name}{suffix}{init};"


def _split_array(ty: T.GLSLType):
    if isinstance(ty, T.Array):
        length = "" if ty.length is None else str(ty.length)
        return str(ty.element), f"[{length}]"
    return str(ty), ""


def _function(fn: ast.FunctionDef) -> List[str]:
    params = ", ".join(
        (f"{p.qualifier} " if p.qualifier != "in" else "") + f"{p.ty} {p.name}"
        for p in fn.params
    )
    lines = [f"{fn.return_type} {fn.name}({params})"]
    lines.extend(_block(fn.body, 0))
    return lines


def _block(block: ast.BlockStmt, indent: int) -> List[str]:
    pad = "    " * indent
    lines = [pad + "{"]
    for stmt in block.body:
        lines.extend(_stmt(stmt, indent + 1))
    lines.append(pad + "}")
    return lines


def _stmt(stmt: ast.Stmt, indent: int) -> List[str]:
    pad = "    " * indent
    if isinstance(stmt, ast.BlockStmt):
        return _block(stmt, indent)
    if isinstance(stmt, ast.DeclStmt):
        prefix = "const " if stmt.is_const else ""
        parts = []
        for decl in stmt.declarators:
            ty, suffix = _split_array(decl.ty)
            init = f" = {print_expr(decl.init)}" if decl.init is not None else ""
            parts.append(f"{prefix}{ty} {decl.name}{suffix}{init};")
        return [pad + " ".join(parts)]
    if isinstance(stmt, ast.AssignStmt):
        return [pad + f"{print_expr(stmt.target)} {stmt.op} {print_expr(stmt.value)};"]
    if isinstance(stmt, ast.ExprStmt):
        return [pad + f"{print_expr(stmt.expr)};"]
    if isinstance(stmt, ast.IfStmt):
        lines = [pad + f"if ({print_expr(stmt.cond)})"]
        lines.extend(_block(stmt.then_body, indent))
        if stmt.else_body is not None:
            lines.append(pad + "else")
            lines.extend(_block(stmt.else_body, indent))
        return lines
    if isinstance(stmt, ast.ForStmt):
        init = _inline_stmt(stmt.init)
        cond = print_expr(stmt.cond) if stmt.cond is not None else ""
        step = _inline_stmt(stmt.step)
        lines = [pad + f"for ({init}; {cond}; {step})"]
        lines.extend(_block(stmt.body, indent))
        return lines
    if isinstance(stmt, ast.WhileStmt):
        lines = [pad + f"while ({print_expr(stmt.cond)})"]
        lines.extend(_block(stmt.body, indent))
        return lines
    if isinstance(stmt, ast.DoWhileStmt):
        lines = [pad + "do"]
        lines.extend(_block(stmt.body, indent))
        lines.append(pad + f"while ({print_expr(stmt.cond)});")
        return lines
    if isinstance(stmt, ast.SwitchStmt):
        lines = [pad + f"switch ({print_expr(stmt.cond)})", pad + "{"]
        for case in stmt.cases:
            if case.values is None:
                lines.append(pad + "default:")
            else:
                for value in case.values:
                    lines.append(pad + f"case {value}:")
            for inner in case.body:
                lines.extend(_stmt(inner, indent + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, ast.ReturnStmt):
        if stmt.value is None:
            return [pad + "return;"]
        return [pad + f"return {print_expr(stmt.value)};"]
    if isinstance(stmt, ast.BreakStmt):
        return [pad + "break;"]
    if isinstance(stmt, ast.ContinueStmt):
        return [pad + "continue;"]
    if isinstance(stmt, ast.DiscardStmt):
        return [pad + "discard;"]
    raise TypeError(f"unknown statement node {type(stmt).__name__}")


def _inline_stmt(stmt: Optional[ast.Stmt]) -> str:
    if stmt is None:
        return ""
    rendered = _stmt(stmt, 0)
    return rendered[0].rstrip(";")


def print_expr(expr: Optional[ast.Expr], parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if expr is None:
        return ""
    if isinstance(expr, ast.FloatLit):
        return format_float(expr.value)
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.Binary):
        prec = _PREC[expr.op]
        left = print_expr(expr.left, prec)
        right = print_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, ast.Unary):
        inner = print_expr(expr.operand, _UNARY_PREC)
        text = f"{inner}{expr.op}" if expr.postfix else f"{expr.op}{inner}"
        return f"({text})" if _UNARY_PREC < parent_prec else text
    if isinstance(expr, ast.Ternary):
        text = (f"{print_expr(expr.cond, 1)} ? {print_expr(expr.then)}"
                f" : {print_expr(expr.otherwise)}")
        return f"({text})"
    if isinstance(expr, ast.Call):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, ast.ArrayLiteral):
        elems = ", ".join(print_expr(e) for e in expr.elements)
        return f"{expr.element_type}[]({elems})"
    if isinstance(expr, ast.Index):
        return f"{print_expr(expr.base, _UNARY_PREC + 1)}[{print_expr(expr.index)}]"
    if isinstance(expr, ast.Member):
        return f"{print_expr(expr.base, _UNARY_PREC + 1)}.{expr.name}"
    raise TypeError(f"unknown expression node {type(expr).__name__}")
