"""The GLSL type system used by the parser, lowering, and introspection."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from repro.errors import TypeError_


class ScalarKind(Enum):
    """The scalar element kinds."""
    FLOAT = "float"
    INT = "int"
    UINT = "uint"
    BOOL = "bool"


@dataclass(frozen=True)
class GLSLType:
    """Base class; concrete types below."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class Void(GLSLType):
    """The ``void`` type."""
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class Scalar(GLSLType):
    """A scalar type (``float`` / ``int`` / ``uint`` / ``bool``)."""
    kind: ScalarKind

    def __str__(self) -> str:
        return self.kind.value


@dataclass(frozen=True)
class Vector(GLSLType):
    """A vector type, e.g. ``vec3`` / ``ivec2`` / ``bvec4``."""
    kind: ScalarKind
    size: int  # 2..4

    def __str__(self) -> str:
        prefix = {
            ScalarKind.FLOAT: "vec",
            ScalarKind.INT: "ivec",
            ScalarKind.UINT: "uvec",
            ScalarKind.BOOL: "bvec",
        }[self.kind]
        return f"{prefix}{self.size}"


@dataclass(frozen=True)
class Matrix(GLSLType):
    """Square float matrix (mat2/mat3/mat4); column-major like GLSL."""

    size: int  # 2..4

    def __str__(self) -> str:
        return f"mat{self.size}"

    @property
    def column_type(self) -> Vector:
        return Vector(ScalarKind.FLOAT, self.size)


@dataclass(frozen=True)
class Sampler(GLSLType):
    """An opaque sampler type, e.g. ``sampler2D`` / ``samplerCube``."""
    name: str  # e.g. "sampler2D"

    def __str__(self) -> str:
        return self.name

    @property
    def coord_size(self) -> int:
        return {
            "sampler2D": 2,
            "sampler2DArray": 3,
            "sampler2DShadow": 3,
            "sampler3D": 3,
            "samplerCube": 3,
        }[self.name]


@dataclass(frozen=True)
class Struct(GLSLType):
    """A user-declared ``struct`` type: an ordered set of named fields.

    Structs enter through the wild-GLSL ingest front end
    (:mod:`repro.glsl.ingest`); the normalizer flattens every struct value
    into one variable per (recursively scalar/vector/matrix/array) field
    before lowering, so the IR never sees one.
    """

    name: str
    fields: "Tuple[Tuple[str, GLSLType], ...]"

    def __str__(self) -> str:
        return self.name

    def field_type(self, name: str) -> GLSLType:
        """Type of the field called *name* (raises TypeError_ if absent)."""
        for field_name, ty in self.fields:
            if field_name == name:
                return ty
        raise TypeError_(f"struct {self.name} has no field {name!r}")

    @property
    def field_names(self) -> "Tuple[str, ...]":
        return tuple(name for name, _ in self.fields)


@dataclass(frozen=True)
class Array(GLSLType):
    """A sized array of some element type."""
    element: GLSLType
    length: Optional[int]  # None for unsized (sized by initializer)

    def __str__(self) -> str:
        suffix = f"[{self.length}]" if self.length is not None else "[]"
        return f"{self.element}{suffix}"


VOID = Void()
FLOAT = Scalar(ScalarKind.FLOAT)
INT = Scalar(ScalarKind.INT)
UINT = Scalar(ScalarKind.UINT)
BOOL = Scalar(ScalarKind.BOOL)
VEC2 = Vector(ScalarKind.FLOAT, 2)
VEC3 = Vector(ScalarKind.FLOAT, 3)
VEC4 = Vector(ScalarKind.FLOAT, 4)
IVEC2 = Vector(ScalarKind.INT, 2)
IVEC3 = Vector(ScalarKind.INT, 3)
IVEC4 = Vector(ScalarKind.INT, 4)
BVEC2 = Vector(ScalarKind.BOOL, 2)
BVEC3 = Vector(ScalarKind.BOOL, 3)
BVEC4 = Vector(ScalarKind.BOOL, 4)
MAT2 = Matrix(2)
MAT3 = Matrix(3)
MAT4 = Matrix(4)

_BY_NAME = {
    "void": VOID,
    "float": FLOAT,
    "int": INT,
    "uint": UINT,
    "bool": BOOL,
    "vec2": VEC2,
    "vec3": VEC3,
    "vec4": VEC4,
    "ivec2": IVEC2,
    "ivec3": IVEC3,
    "ivec4": IVEC4,
    "uvec2": Vector(ScalarKind.UINT, 2),
    "uvec3": Vector(ScalarKind.UINT, 3),
    "uvec4": Vector(ScalarKind.UINT, 4),
    "bvec2": BVEC2,
    "bvec3": BVEC3,
    "bvec4": BVEC4,
    "mat2": MAT2,
    "mat3": MAT3,
    "mat4": MAT4,
    "sampler2D": Sampler("sampler2D"),
    "sampler3D": Sampler("sampler3D"),
    "samplerCube": Sampler("samplerCube"),
    "sampler2DShadow": Sampler("sampler2DShadow"),
    "sampler2DArray": Sampler("sampler2DArray"),
}


def type_from_name(name: str) -> GLSLType:
    """Look up a basic type by its GLSL name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise TypeError_(f"unknown type name {name!r}")


def scalar_kind_of(ty: GLSLType) -> ScalarKind:
    """The element scalar kind of a scalar/vector/matrix type."""
    if isinstance(ty, Scalar):
        return ty.kind
    if isinstance(ty, Vector):
        return ty.kind
    if isinstance(ty, Matrix):
        return ScalarKind.FLOAT
    raise TypeError_(f"type {ty} has no scalar kind")


def component_count(ty: GLSLType) -> int:
    """Number of scalar components (1 for scalars, n for vecN, n*n for matN)."""
    if isinstance(ty, Scalar):
        return 1
    if isinstance(ty, Vector):
        return ty.size
    if isinstance(ty, Matrix):
        return ty.size * ty.size
    raise TypeError_(f"type {ty} has no component count")


def vector_of(kind: ScalarKind, size: int) -> GLSLType:
    """vecN/ivecN/bvecN constructor; size 1 gives the scalar type."""
    if size == 1:
        return Scalar(kind)
    if 2 <= size <= 4:
        return Vector(kind, size)
    raise TypeError_(f"invalid vector size {size}")


def is_float_based(ty: GLSLType) -> bool:
    """Whether *ty* is float-valued (scalar, vector, or matrix)."""
    return isinstance(ty, (Matrix,)) or (
        isinstance(ty, (Scalar, Vector)) and scalar_kind_of(ty) == ScalarKind.FLOAT
    )


def can_implicitly_convert(src: GLSLType, dst: GLSLType) -> bool:
    """GLSL's implicit conversions: int/uint -> float, element-wise for vectors."""
    if src == dst:
        return True
    if isinstance(src, Scalar) and isinstance(dst, Scalar):
        return src.kind in (ScalarKind.INT, ScalarKind.UINT) and dst.kind == ScalarKind.FLOAT
    if isinstance(src, Vector) and isinstance(dst, Vector) and src.size == dst.size:
        return src.kind in (ScalarKind.INT, ScalarKind.UINT) and dst.kind == ScalarKind.FLOAT
    return False
