"""Builtin GLSL function signatures and return-type resolution.

The table is intentionally rule-based rather than enumerating every overload:
most GLSL builtins are *generic* over ``genType`` (float, vec2, vec3, vec4),
so we classify each builtin by shape and compute the return type from the
argument types.  :func:`resolve_builtin` is used by the parser's type
inference; the IR layer re-uses :data:`BUILTIN_NAMES` for intrinsic emission,
and the interpreter implements the same set numerically.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import TypeError_
from repro.glsl import types as T

#: Builtins returning their (generic) first argument's type.
_GEN_SAME = frozenset(
    {
        "radians", "degrees", "sin", "cos", "tan", "asin", "acos", "atan",
        "exp", "log", "exp2", "log2", "sqrt", "inversesqrt",
        "abs", "sign", "floor", "ceil", "fract", "round", "trunc",
        "normalize", "pow", "mod", "min", "max", "clamp", "mix", "step",
        "smoothstep", "reflect", "refract", "faceforward", "saturate",
    }
)

#: Builtins reducing a genType to a scalar float.
_GEN_TO_FLOAT = frozenset({"length", "distance", "dot"})

#: Texture sampling builtins (including the legacy ES names).
TEXTURE_BUILTINS = frozenset(
    {"texture", "textureLod", "texture2D", "texture2DLod", "textureCube", "textureProj"}
)

BUILTIN_NAMES = frozenset(
    _GEN_SAME
    | _GEN_TO_FLOAT
    | TEXTURE_BUILTINS
    | {"cross", "transpose", "any", "all", "not", "lessThan", "greaterThan", "equal"}
)


def is_builtin(name: str) -> bool:
    """Whether *name* is a recognized GLSL builtin function."""
    return name in BUILTIN_NAMES


def _widest(arg_types: List[T.GLSLType]) -> T.GLSLType:
    """The widest float-based argument type (scalars broadcast to vectors)."""
    best: Optional[T.GLSLType] = None
    best_n = 0
    for ty in arg_types:
        if isinstance(ty, (T.Scalar, T.Vector)):
            n = T.component_count(ty)
            if n > best_n:
                best, best_n = ty, n
    if best is None:
        raise TypeError_("builtin requires scalar or vector arguments")
    if isinstance(best, T.Scalar):
        return T.FLOAT
    return T.Vector(T.ScalarKind.FLOAT, best.size)


def resolve_builtin(name: str, arg_types: List[T.GLSLType]) -> T.GLSLType:
    """Return type of builtin *name* applied to *arg_types*.

    Raises :class:`~repro.errors.TypeError_` for unknown builtins or argument
    shapes the subset does not support.
    """
    if name in _GEN_SAME:
        if not arg_types:
            raise TypeError_(f"{name}() requires arguments")
        # step(edge, x): the *second* operand carries the genType.
        if name == "step" and len(arg_types) == 2:
            return _shape_like(arg_types[1])
        if name == "smoothstep" and len(arg_types) == 3:
            return _shape_like(arg_types[2])
        return _shape_like(arg_types[0])

    if name in _GEN_TO_FLOAT:
        return T.FLOAT

    if name == "cross":
        return T.VEC3

    if name == "transpose":
        if len(arg_types) == 1 and isinstance(arg_types[0], T.Matrix):
            return arg_types[0]
        raise TypeError_("transpose() requires a matrix argument")

    if name in ("any", "all"):
        return T.BOOL

    if name == "not":
        if len(arg_types) == 1 and isinstance(arg_types[0], T.Vector):
            return arg_types[0]
        raise TypeError_("not() requires a bvec argument")

    if name in ("lessThan", "greaterThan", "equal"):
        if len(arg_types) == 2 and isinstance(arg_types[0], T.Vector):
            return T.Vector(T.ScalarKind.BOOL, arg_types[0].size)
        raise TypeError_(f"{name}() requires vector arguments")

    if name in TEXTURE_BUILTINS:
        if not arg_types or not isinstance(arg_types[0], T.Sampler):
            raise TypeError_(f"{name}() requires a sampler first argument")
        if arg_types[0].name == "sampler2DShadow":
            return T.FLOAT
        return T.VEC4

    raise TypeError_(f"unknown builtin {name!r}")


def _shape_like(ty: T.GLSLType) -> T.GLSLType:
    """Float scalar/vector with the same component count as *ty*."""
    if isinstance(ty, T.Scalar):
        return T.FLOAT
    if isinstance(ty, T.Vector):
        return T.Vector(T.ScalarKind.FLOAT, ty.size)
    raise TypeError_(f"builtin cannot take argument of type {ty}")
