"""Rewrite wild-GLSL AST constructs into the core shader subset.

The widened parser (see :mod:`repro.glsl.parser`) accepts ``struct``
declarations, ``do``/``while`` loops, and ``switch`` statements so that
real-world shaders ingest cleanly.  The IR lowering, however, only
understands the core subset, so :func:`normalize_shader` rewrites each of
the extended constructs away:

* ``do { B } while (c);`` becomes a ``while`` loop guarded by a
  first-iteration latch: ``bool __dwN = true; while (__dwN || c) {
  __dwN = false; B }`` — the short-circuit ``||`` keeps the condition
  unevaluated on the first pass, matching C semantics.
* ``switch`` becomes an ``if``/``else if`` chain over a scrutinee
  temporary.  C fallthrough is preserved by concatenating each case's
  body with the bodies of the following groups up to the first
  terminating one; a single trailing ``break`` per group is stripped.
  ``break`` anywhere else inside a case (including conditionally) has no
  if-chain equivalent and raises :class:`~repro.errors.NormalizeError`.
* Every struct value is flattened into one variable per leaf field
  (``light.pos`` becomes ``light__pos``, nested fields join with
  ``__``), covering globals, locals, function parameters, constructors,
  member reads, and whole-struct assignment.  Struct return types and
  struct arrays have no flat equivalent and raise ``NormalizeError``.

The result is a shader that prints, lowers, and measures exactly like a
natively-authored one; ``normalize_shader`` is idempotent on shaders
already inside the subset.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import NormalizeError
from repro.glsl import ast
from repro.glsl import types as T


def normalize_shader(shader: ast.Shader) -> ast.Shader:
    """Rewrite *shader* in place into the core subset and return it."""
    _Normalizer().run(shader)
    return shader


def _flat_name(parts: Tuple[str, ...]) -> str:
    return "__".join(parts)


def _leaves(ty: T.GLSLType, prefix: Tuple[str, ...] = ()
            ) -> Iterator[Tuple[Tuple[str, ...], T.GLSLType]]:
    """Yield ``(field_path, leaf_type)`` for every flattened field of *ty*."""
    if isinstance(ty, T.Struct):
        for fname, fty in ty.fields:
            yield from _leaves(fty, prefix + (fname,))
        return
    if isinstance(ty, T.Array) and isinstance(ty.element, T.Struct):
        raise NormalizeError("arrays of struct values are not supported")
    yield prefix, ty


class _Normalizer:
    """Single-shader rewrite state (fresh-name counters)."""

    def __init__(self) -> None:
        self._counter = 0

    def _fresh(self, prefix: str) -> str:
        name = f"__{prefix}{self._counter}"
        self._counter += 1
        return name

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def run(self, shader: ast.Shader) -> None:
        for fn in shader.functions:
            fn.body = self._rewrite_block(fn.body)
        self._flatten_structs(shader)

    # ------------------------------------------------------------------
    # Pass 1: do/while and switch elimination
    # ------------------------------------------------------------------

    def _rewrite_block(self, block: ast.BlockStmt) -> ast.BlockStmt:
        out: List[ast.Stmt] = []
        for stmt in block.body:
            out.extend(self._rewrite_stmt(stmt))
        block.body = out
        return block

    def _rewrite_stmt(self, stmt: ast.Stmt) -> List[ast.Stmt]:
        if isinstance(stmt, ast.BlockStmt):
            return [self._rewrite_block(stmt)]
        if isinstance(stmt, ast.IfStmt):
            stmt.then_body = self._rewrite_block(stmt.then_body)
            if stmt.else_body is not None:
                stmt.else_body = self._rewrite_block(stmt.else_body)
            return [stmt]
        if isinstance(stmt, ast.ForStmt):
            stmt.body = self._rewrite_block(stmt.body)
            return [stmt]
        if isinstance(stmt, ast.WhileStmt):
            stmt.body = self._rewrite_block(stmt.body)
            return [stmt]
        if isinstance(stmt, ast.DoWhileStmt):
            return [self._rewrite_do_while(stmt)]
        if isinstance(stmt, ast.SwitchStmt):
            return [self._rewrite_switch(stmt)]
        return [stmt]

    def _rewrite_do_while(self, stmt: ast.DoWhileStmt) -> ast.Stmt:
        body = self._rewrite_block(stmt.body)
        latch = self._fresh("dw")
        line = stmt.line
        latch_decl = ast.DeclStmt(line=line, declarators=[
            ast.Declarator(name=latch, ty=T.BOOL,
                           init=ast.BoolLit(line=line, ty=T.BOOL, value=True))])
        reset = ast.AssignStmt(
            line=line, target=ast.Ident(line=line, ty=T.BOOL, name=latch),
            op="=", value=ast.BoolLit(line=line, ty=T.BOOL, value=False))
        cond = ast.Binary(
            line=line, ty=T.BOOL, op="||",
            left=ast.Ident(line=line, ty=T.BOOL, name=latch), right=stmt.cond)
        loop = ast.WhileStmt(line=line, cond=cond, body=ast.BlockStmt(
            line=line, body=[reset, body]))
        return ast.BlockStmt(line=line, body=[latch_decl, loop])

    def _rewrite_switch(self, stmt: ast.SwitchStmt) -> ast.Stmt:
        scrutinee_ty = stmt.cond.ty if stmt.cond.ty is not None else T.INT
        name = self._fresh("sw")
        line = stmt.line
        decl = ast.DeclStmt(line=line, declarators=[
            ast.Declarator(name=name, ty=scrutinee_ty, init=stmt.cond)])
        for case in stmt.cases:
            rewritten: List[ast.Stmt] = []
            for inner in case.body:
                rewritten.extend(self._rewrite_stmt(inner))
            case.body = rewritten
        chain = self._switch_chain(stmt.cases, name, scrutinee_ty, line)
        body: List[ast.Stmt] = [decl]
        if chain is not None:
            body.append(chain)
        return ast.BlockStmt(line=line, body=body)

    def _switch_chain(
        self,
        cases: List[ast.SwitchCase],
        name: str,
        scrutinee_ty: T.GLSLType,
        line: int,
    ) -> Optional[ast.Stmt]:
        arms: List[Tuple[Optional[ast.Expr], List[ast.Stmt], int]] = []
        default_arm: Optional[Tuple[List[ast.Stmt], int]] = None
        for index, case in enumerate(cases):
            effective = self._effective_body(cases, index)
            if case.values is None:
                default_arm = (effective, case.line)
                continue
            cond: Optional[ast.Expr] = None
            for value in case.values:
                eq = ast.Binary(
                    line=case.line, ty=T.BOOL, op="==",
                    left=ast.Ident(line=case.line, ty=scrutinee_ty, name=name),
                    right=ast.IntLit(line=case.line, ty=scrutinee_ty, value=value))
                cond = eq if cond is None else ast.Binary(
                    line=case.line, ty=T.BOOL, op="||", left=cond, right=eq)
            arms.append((cond, effective, case.line))

        result: Optional[ast.BlockStmt] = None
        if default_arm is not None:
            result = ast.BlockStmt(line=default_arm[1], body=default_arm[0])
        for cond, body, arm_line in reversed(arms):
            result = ast.BlockStmt(line=arm_line, body=[ast.IfStmt(
                line=arm_line, cond=cond,
                then_body=ast.BlockStmt(line=arm_line, body=body),
                else_body=result)])
        if result is None:
            return None
        # The outermost wrapper block is redundant; keep the if directly.
        if len(result.body) == 1:
            return result.body[0]
        return result

    def _effective_body(self, cases: List[ast.SwitchCase], index: int
                        ) -> List[ast.Stmt]:
        """Case body with C fallthrough: concatenate groups until one
        terminates, then strip the single trailing ``break``."""
        body: List[ast.Stmt] = []
        for case in cases[index:]:
            body.extend(case.body)
            if self._terminates(case.body):
                break
        if body and isinstance(body[-1], ast.BreakStmt):
            body = body[:-1]
        for inner in body:
            self._reject_switch_breaks(inner)
        return list(body)

    def _terminates(self, body: List[ast.Stmt]) -> bool:
        if not body:
            return False
        last = body[-1]
        if isinstance(last, (ast.BreakStmt, ast.ContinueStmt,
                             ast.ReturnStmt, ast.DiscardStmt)):
            return True
        if isinstance(last, ast.IfStmt) and last.else_body is not None:
            return (self._terminates(last.then_body.body)
                    and self._terminates(last.else_body.body))
        if isinstance(last, ast.BlockStmt):
            return self._terminates(last.body)
        return False

    def _reject_switch_breaks(self, stmt: ast.Stmt) -> None:
        """A ``break`` that is not the trailing statement of its case group
        would bind to the enclosing loop after the if-chain rewrite, so it
        cannot be translated faithfully."""
        if isinstance(stmt, ast.BreakStmt):
            raise NormalizeError(
                "break inside a switch case is only supported as the "
                "trailing statement of the case", stmt.line)
        if isinstance(stmt, ast.BlockStmt):
            for inner in stmt.body:
                self._reject_switch_breaks(inner)
        elif isinstance(stmt, ast.IfStmt):
            for inner in stmt.then_body.body:
                self._reject_switch_breaks(inner)
            if stmt.else_body is not None:
                for inner in stmt.else_body.body:
                    self._reject_switch_breaks(inner)
        # for/while bodies own their breaks — do not descend.

    # ------------------------------------------------------------------
    # Pass 2: struct flattening
    # ------------------------------------------------------------------

    def _flatten_structs(self, shader: ast.Shader) -> None:
        if not shader.structs and not any(
            isinstance(g.ty, T.Struct) for g in shader.globals
        ):
            return
        new_globals: List[ast.GlobalDecl] = []
        for decl in shader.globals:
            if not isinstance(decl.ty, T.Struct):
                if isinstance(decl.ty, T.Array) and isinstance(
                    decl.ty.element, T.Struct
                ):
                    raise NormalizeError(
                        "arrays of struct values are not supported", decl.line)
                if decl.init is not None:
                    decl.init = self._rx(decl.init)
                new_globals.append(decl)
                continue
            if decl.qualifier in ("in", "out"):
                raise NormalizeError(
                    f"struct-typed {decl.qualifier!r} globals are not "
                    "supported", decl.line)
            inits: List[Optional[ast.Expr]]
            if decl.init is not None:
                inits = list(self._decompose(decl.init, decl.ty))
            else:
                inits = [None] * sum(1 for _ in _leaves(decl.ty))
            for (path, leaf_ty), init in zip(_leaves(decl.ty), inits):
                new_globals.append(ast.GlobalDecl(
                    qualifier=decl.qualifier, ty=leaf_ty,
                    name=_flat_name((decl.name,) + path), init=init,
                    line=decl.line))
        shader.globals = new_globals

        for fn in shader.functions:
            if isinstance(fn.return_type, T.Struct):
                raise NormalizeError(
                    f"function {fn.name!r} returns a struct; struct return "
                    "types are not supported", fn.line)
            new_params: List[ast.Param] = []
            for param in fn.params:
                if isinstance(param.ty, T.Struct):
                    for path, leaf_ty in _leaves(param.ty):
                        new_params.append(ast.Param(
                            qualifier=param.qualifier, ty=leaf_ty,
                            name=_flat_name((param.name,) + path)))
                else:
                    new_params.append(param)
            fn.params = new_params
            fn.body = self._fx_block(fn.body)
        shader.structs = []

    def _fx_block(self, block: ast.BlockStmt) -> ast.BlockStmt:
        out: List[ast.Stmt] = []
        for stmt in block.body:
            out.extend(self._fx_stmt(stmt))
        block.body = out
        return block

    def _fx_stmt(self, stmt: ast.Stmt) -> List[ast.Stmt]:
        if isinstance(stmt, ast.BlockStmt):
            return [self._fx_block(stmt)]
        if isinstance(stmt, ast.DeclStmt):
            return self._fx_decl(stmt)
        if isinstance(stmt, ast.AssignStmt):
            return self._fx_assign(stmt)
        if isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._rx(stmt.expr)
            return [stmt]
        if isinstance(stmt, ast.IfStmt):
            stmt.cond = self._rx(stmt.cond)
            stmt.then_body = self._fx_block(stmt.then_body)
            if stmt.else_body is not None:
                stmt.else_body = self._fx_block(stmt.else_body)
            return [stmt]
        if isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                init_stmts = self._fx_stmt(stmt.init)
                if len(init_stmts) != 1:
                    raise NormalizeError(
                        "struct declarations in for-init are not supported",
                        stmt.line)
                stmt.init = init_stmts[0]
            if stmt.cond is not None:
                stmt.cond = self._rx(stmt.cond)
            if stmt.step is not None:
                stmt.step = self._fx_stmt(stmt.step)[0]
            stmt.body = self._fx_block(stmt.body)
            return [stmt]
        if isinstance(stmt, ast.WhileStmt):
            stmt.cond = self._rx(stmt.cond)
            stmt.body = self._fx_block(stmt.body)
            return [stmt]
        if isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                stmt.value = self._rx(stmt.value)
            return [stmt]
        return [stmt]

    def _fx_decl(self, stmt: ast.DeclStmt) -> List[ast.Stmt]:
        declarators: List[ast.Declarator] = []
        for decl in stmt.declarators:
            if isinstance(decl.ty, T.Struct):
                inits: List[Optional[ast.Expr]]
                if decl.init is not None:
                    inits = list(self._decompose(decl.init, decl.ty))
                else:
                    inits = [None] * sum(1 for _ in _leaves(decl.ty))
                for (path, leaf_ty), init in zip(_leaves(decl.ty), inits):
                    declarators.append(ast.Declarator(
                        name=_flat_name((decl.name,) + path),
                        ty=leaf_ty, init=init))
            else:
                if isinstance(decl.ty, T.Array) and isinstance(
                    decl.ty.element, T.Struct
                ):
                    raise NormalizeError(
                        "arrays of struct values are not supported", stmt.line)
                if decl.init is not None:
                    decl.init = self._rx(decl.init)
                declarators.append(decl)
        stmt.declarators = declarators
        # const-ness does not survive flattening of struct declarators
        # (struct constructors may take non-const args), so keep it as-is
        # only when no struct was involved.
        return [stmt]

    def _fx_assign(self, stmt: ast.AssignStmt) -> List[ast.Stmt]:
        target_ty = stmt.target.ty
        if isinstance(target_ty, T.Struct):
            if stmt.op != "=":
                raise NormalizeError(
                    f"compound assignment {stmt.op!r} on a struct value",
                    stmt.line)
            path = self._path_of(stmt.target)
            if path is None:
                raise NormalizeError(
                    "unsupported struct assignment target", stmt.line)
            values = self._decompose(stmt.value, target_ty)
            out: List[ast.Stmt] = []
            for (leaf_path, leaf_ty), value in zip(_leaves(target_ty), values):
                out.append(ast.AssignStmt(
                    line=stmt.line,
                    target=ast.Ident(line=stmt.line, ty=leaf_ty,
                                     name=_flat_name(path + leaf_path)),
                    op="=", value=value))
            return out
        stmt.target = self._rx(stmt.target)
        stmt.value = self._rx(stmt.value)
        return [stmt]

    def _path_of(self, expr: ast.Expr) -> Optional[Tuple[str, ...]]:
        """The variable/field path of an Ident / Member chain, else None."""
        if isinstance(expr, ast.Ident):
            return (expr.name,)
        if isinstance(expr, ast.Member) and isinstance(expr.base.ty, T.Struct):
            base = self._path_of(expr.base)
            if base is None:
                return None
            return base + (expr.name,)
        return None

    def _decompose(self, expr: ast.Expr, ty: T.Struct) -> List[ast.Expr]:
        """Flatten a struct-typed *expr* into per-leaf expressions aligned
        with ``_leaves(ty)``."""
        if (isinstance(expr, ast.Call) and expr.is_constructor
                and isinstance(expr.ty, T.Struct)):
            out: List[ast.Expr] = []
            for arg, (_, fty) in zip(expr.args, expr.ty.fields):
                if isinstance(fty, T.Struct):
                    out.extend(self._decompose(arg, fty))
                else:
                    out.append(self._rx(arg))
            return out
        path = self._path_of(expr)
        if path is not None:
            return [
                ast.Ident(line=expr.line, ty=leaf_ty,
                          name=_flat_name(path + leaf_path))
                for leaf_path, leaf_ty in _leaves(ty)
            ]
        raise NormalizeError(
            "struct value is neither a constructor call nor a named "
            "variable; cannot flatten", expr.line)

    def _rx(self, expr: ast.Expr) -> ast.Expr:
        """Rewrite expression subtrees, replacing struct member reads."""
        if isinstance(expr, ast.Member) and isinstance(expr.base.ty, T.Struct):
            path = self._path_of(expr)
            if path is None:
                raise NormalizeError(
                    "struct field access on an unnamed value", expr.line)
            if isinstance(expr.ty, T.Struct):
                raise NormalizeError(
                    "struct value used where a scalar/vector is required",
                    expr.line)
            return ast.Ident(line=expr.line, ty=expr.ty, name=_flat_name(path))
        if isinstance(expr, ast.Ident):
            if isinstance(expr.ty, T.Struct):
                raise NormalizeError(
                    "struct value used where a scalar/vector is required",
                    expr.line)
            return expr
        if isinstance(expr, ast.Binary):
            expr.left = self._rx(expr.left)
            expr.right = self._rx(expr.right)
            return expr
        if isinstance(expr, ast.Unary):
            expr.operand = self._rx(expr.operand)
            return expr
        if isinstance(expr, ast.Ternary):
            expr.cond = self._rx(expr.cond)
            expr.then = self._rx(expr.then)
            expr.otherwise = self._rx(expr.otherwise)
            return expr
        if isinstance(expr, ast.Call):
            if expr.is_constructor and isinstance(expr.ty, T.Struct):
                raise NormalizeError(
                    "struct constructor used where a scalar/vector is "
                    "required", expr.line)
            args: List[ast.Expr] = []
            for arg in expr.args:
                if isinstance(arg.ty, T.Struct):
                    args.extend(self._decompose(arg, arg.ty))
                else:
                    args.append(self._rx(arg))
            expr.args = args
            return expr
        if isinstance(expr, ast.ArrayLiteral):
            expr.elements = [self._rx(e) for e in expr.elements]
            return expr
        if isinstance(expr, ast.Index):
            expr.base = self._rx(expr.base)
            expr.index = self._rx(expr.index)
            return expr
        if isinstance(expr, ast.Member):
            expr.base = self._rx(expr.base)
            return expr
        return expr
