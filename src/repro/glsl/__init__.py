"""GLSL frontend: lexer, preprocessor, parser, AST, type system, printer.

The public surface of this package mirrors the pipeline order:

- :func:`repro.glsl.preprocessor.preprocess` — run `#define` / conditional
  directives and macro expansion over raw shader text.
- :func:`repro.glsl.lexer.tokenize` — turn preprocessed text into tokens.
- :func:`repro.glsl.parser.parse_shader` — build a typed AST.
- :func:`repro.glsl.printer.print_shader` — render an AST back to GLSL.
- :func:`repro.glsl.normalize.normalize_shader` — rewrite the widened wild
  constructs (structs, do/while, switch) into the core subset.
- :func:`repro.glsl.introspect.shader_interface` — enumerate uniforms/ins/outs.
- :func:`repro.glsl.metrics.lines_of_code` — the paper's Fig. 4a LoC metric.

The wild-GLSL import pipeline (``repro import``) composes these:
:mod:`repro.glsl.ingest` runs preprocess → parse → normalize → validate,
and :mod:`repro.glsl.minimize` delta-debugs failing imports into minimal
committed reproducers.
"""

from repro.glsl.lexer import tokenize
from repro.glsl.preprocessor import preprocess
from repro.glsl.parser import parse_shader
from repro.glsl.printer import print_shader
from repro.glsl.normalize import normalize_shader
from repro.glsl.introspect import shader_interface
from repro.glsl.metrics import lines_of_code

__all__ = [
    "tokenize",
    "preprocess",
    "parse_shader",
    "print_shader",
    "normalize_shader",
    "shader_interface",
    "lines_of_code",
]
