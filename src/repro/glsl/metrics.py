"""Static code-size metric from the paper (Fig. 4a).

The paper measures "lines of code" *after preprocessing*, ignoring
non-executable lines: uniform / input / output / precision declarations,
comments, whitespace, and lines consisting only of brackets.  Unused function
definitions *do* count (the paper notes they inflate the metric).
"""

from __future__ import annotations

import re
from typing import Optional

from repro.glsl.preprocessor import preprocess

_NON_EXECUTABLE_PREFIXES = (
    "uniform", "in ", "out ", "attribute", "varying", "precision", "layout",
    "flat ",
)
_BRACKETS_ONLY = re.compile(r"^[\s{}()\[\];]*$")


def lines_of_code(source: str, defines: Optional[dict] = None,
                  preprocessed: bool = False) -> int:
    """Count executable lines of *source* per the paper's Fig. 4a rules."""
    text = source if preprocessed else preprocess(source, defines).text
    text = _strip_comments(text)
    count = 0
    for raw in text.split("\n"):
        line = raw.strip()
        if not line:
            continue
        if _BRACKETS_ONLY.match(line):
            continue
        if line.startswith("#"):
            continue
        if any(line.startswith(p) for p in _NON_EXECUTABLE_PREFIXES):
            continue
        count += 1
    return count


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)
