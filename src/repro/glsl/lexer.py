"""Hand-written lexer for the GLSL subset used throughout the library.

The lexer assumes its input has already been preprocessed (no ``#`` directives
remain); :func:`tokenize` raises :class:`~repro.errors.LexerError` if it meets
one, which usually indicates a caller skipped :func:`repro.glsl.preprocess`.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexerError
from repro.glsl.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPS,
    SINGLE_CHAR_OPS,
    TYPE_NAMES,
    Token,
    TokenKind,
)

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


def tokenize(source: str) -> List[Token]:
    """Tokenize preprocessed GLSL source into a token list ending with EOF."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(message: str) -> LexerError:
        return LexerError(message, line, col)

    while i < n:
        ch = source[i]

        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue

        # Comments (tolerated even post-preprocess).
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue

        if ch == "#":
            raise error("preprocessor directive in lexer input; run preprocess() first")

        if ch in _IDENT_START:
            start = i
            while i < n and source[i] in _IDENT_CONT:
                i += 1
            text = source[start:i]
            if text in ("true", "false"):
                kind = TokenKind.BOOL
            elif text in TYPE_NAMES:
                kind = TokenKind.TYPE
            elif text in KEYWORDS:
                kind = TokenKind.KEYWORD
            else:
                kind = TokenKind.IDENT
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue

        if ch in _DIGITS or (ch == "." and i + 1 < n and source[i + 1] in _DIGITS):
            start = i
            is_float = False
            if ch == "0" and i + 1 < n and source[i + 1] in "xX":
                i += 2
                while i < n and source[i] in _HEX_DIGITS:
                    i += 1
                if i == start + 2:
                    raise error("hexadecimal literal needs at least one digit")
                if i < n and source[i] in "uU":
                    i += 1
                tokens.append(Token(TokenKind.INT, source[start:i], line, col))
                col += i - start
                continue
            while i < n and source[i] in _DIGITS:
                i += 1
            if i < n and source[i] == ".":
                is_float = True
                i += 1
                while i < n and source[i] in _DIGITS:
                    i += 1
            if i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j] in _DIGITS:
                    is_float = True
                    i = j
                    while i < n and source[i] in _DIGITS:
                        i += 1
            if i < n and source[i] in "fF" and is_float:
                i += 1
            elif i < n and source[i] in "uU" and not is_float:
                i += 1
            text = source[start:i]
            kind = TokenKind.FLOAT if is_float else TokenKind.INT
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue

        matched = False
        for op in MULTI_CHAR_OPS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, line, col))
                i += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue

        if ch in SINGLE_CHAR_OPS:
            tokens.append(Token(TokenKind.OP, ch, line, col))
            i += 1
            col += 1
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
