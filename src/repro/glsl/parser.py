"""Recursive-descent parser for the GLSL subset, with type inference.

The parser produces a :class:`repro.glsl.ast.Shader` whose expression nodes
all carry a resolved ``ty``.  Doing inference here keeps the IR lowering free
of guessing: it can rely on ``expr.ty`` everywhere.

Supported surface (the subset real GFXBench-style fragment shaders use, plus
the wild-GLSL widening behind ``repro import``): global ``uniform`` / ``in``
/ ``out`` / ``const`` declarations, layout qualifiers (multiple render
targets), ``struct`` declarations, user function definitions, ``if``/
``else``, ``for``, ``while``, ``do``/``while``, ``switch``, ``return``,
``discard``, ``break``, ``continue``, compound assignment, swizzles and
struct field access, constructors, and sized/unsized arrays whose sizes may
be any constant integer expression (const-folded against declared ``const
int`` values).  ``struct``/``do``/``switch`` parse into dedicated AST nodes
that :mod:`repro.glsl.normalize` rewrites into the core subset before
lowering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError, TypeError_
from repro.glsl import ast
from repro.glsl import types as T
from repro.glsl.builtins import is_builtin, resolve_builtin
from repro.glsl.lexer import tokenize
from repro.glsl.tokens import Token, TokenKind, parse_int_literal

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=")

#: Binary operator precedence, higher binds tighter.
_BIN_PREC = {
    "||": 1,
    "^^": 2,
    "&&": 3,
    "==": 4,
    "!=": 4,
    "<": 5,
    ">": 5,
    "<=": 5,
    ">=": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "/": 7,
    "%": 7,
}

_SWIZZLE_SETS = ("xyzw", "rgba", "stpq")


def parse_shader(source: str) -> ast.Shader:
    """Parse preprocessed GLSL *source* into a typed AST."""
    return _Parser(source).parse()


class _Scope:
    """A lexical scope mapping names to GLSL types (and const int values)."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, T.GLSLType] = {}
        self.const_ints: Dict[str, int] = {}

    def lookup(self, name: str) -> Optional[T.GLSLType]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def declare(self, name: str, ty: T.GLSLType) -> None:
        self.names[name] = ty

    def declare_const_int(self, name: str, value: int) -> None:
        """Record a ``const int`` binding for constant-expression folding."""
        self.const_ints[name] = value

    def lookup_const_int(self, name: str) -> Optional[int]:
        """The folded value of a ``const int``, searching enclosing scopes."""
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:  # nearest declaration wins, even if
                return scope.const_ints.get(name)  # it is not const
            scope = scope.parent
        return None


class _Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.globals_scope = _Scope()
        self.scope = self.globals_scope
        self.functions: Dict[str, Tuple[T.GLSLType, List[ast.Param]]] = {}
        self.structs: Dict[str, T.Struct] = {}
        self.current_return_type: Optional[T.GLSLType] = None

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        return self.peek().text == text and self.peek().kind is not TokenKind.EOF

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if tok.text != text or tok.kind is TokenKind.EOF:
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.line, tok.col)
        return self.advance()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.line, tok.col)
        return self.advance()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse(self) -> ast.Shader:
        shader = ast.Shader(version=None)
        while self.peek().kind is not TokenKind.EOF:
            tok = self.peek()
            if tok.text == "precision":
                self._skip_until(";")
                continue
            if tok.text == "layout":
                self._skip_layout()
                tok = self.peek()
            if tok.text == "struct":
                shader.structs.append(self._struct_decl())
                continue
            if tok.text in ("uniform", "in", "out", "attribute", "varying", "flat"):
                shader.globals.extend(self._global_decl())
                continue
            if tok.text == "const":
                shader.globals.extend(self._global_decl())
                continue
            if tok.kind is TokenKind.TYPE or tok.text == "void" or self._is_struct_name(tok):
                if self._looks_like_function():
                    shader.functions.append(self._function_def())
                else:
                    shader.globals.extend(self._global_decl())
                continue
            raise ParseError(f"unexpected token {tok.text!r} at top level", tok.line, tok.col)
        return shader

    def _is_struct_name(self, tok: Token) -> bool:
        return tok.kind is TokenKind.IDENT and tok.text in self.structs

    def _struct_decl(self) -> ast.StructDecl:
        """Parse ``struct Name { type field, ...; ... };``."""
        line = self.peek().line
        self.expect("struct")
        name_tok = self.expect_ident()
        if name_tok.text in self.structs:
            raise ParseError(f"struct {name_tok.text!r} redeclared",
                             name_tok.line, name_tok.col)
        self.expect("{")
        fields: List[Tuple[str, T.GLSLType]] = []
        seen: set = set()
        while not self.check("}"):
            if self.peek().kind is TokenKind.EOF:
                raise ParseError("unterminated struct declaration", line)
            while self.peek().text in ("highp", "mediump", "lowp"):
                self.advance()
            field_base = self._parse_type()
            while True:
                field_tok = self.expect_ident()
                field_ty = field_base
                if self.accept("["):
                    size = self._const_int()
                    self.expect("]")
                    field_ty = T.Array(field_base, size)
                if field_tok.text in seen:
                    raise ParseError(
                        f"duplicate struct field {field_tok.text!r}",
                        field_tok.line, field_tok.col)
                seen.add(field_tok.text)
                fields.append((field_tok.text, field_ty))
                if not self.accept(","):
                    break
            self.expect(";")
        self.expect("}")
        if not fields:
            raise ParseError(f"struct {name_tok.text!r} has no fields", line)
        if not self.check(";"):
            tok = self.peek()
            raise ParseError(
                "struct declarations with trailing instance names are not "
                "supported; declare the instance separately", tok.line, tok.col)
        self.expect(";")
        struct_ty = T.Struct(name_tok.text, tuple(fields))
        self.structs[name_tok.text] = struct_ty
        return ast.StructDecl(ty=struct_ty, line=line)

    def _skip_until(self, text: str) -> None:
        while not self.check(text) and self.peek().kind is not TokenKind.EOF:
            self.advance()
        self.accept(text)

    def _skip_layout(self) -> None:
        self.expect("layout")
        self.expect("(")
        depth = 1
        while depth and self.peek().kind is not TokenKind.EOF:
            tok = self.advance()
            if tok.text == "(":
                depth += 1
            elif tok.text == ")":
                depth -= 1

    def _looks_like_function(self) -> bool:
        """TYPE IDENT ( ...  at top level means a function definition."""
        return (
            self.peek(1).kind is TokenKind.IDENT
            and self.peek(2).text == "("
        )

    def _parse_type(self) -> T.GLSLType:
        tok = self.peek()
        if tok.text == "void":
            self.advance()
            return T.VOID
        if self._is_struct_name(tok):
            self.advance()
            base: T.GLSLType = self.structs[tok.text]
        elif tok.kind is TokenKind.TYPE:
            self.advance()
            base = T.type_from_name(tok.text)
        else:
            raise ParseError(f"expected type name, found {tok.text!r}", tok.line, tok.col)
        if self.accept("["):
            if self.check("]"):
                self.advance()
                return T.Array(base, None)
            size = self._const_int()
            self.expect("]")
            return T.Array(base, size)
        return base

    def _const_int(self) -> int:
        """Parse a constant integer expression and fold it to a value.

        Array sizes (and case labels) in real shaders are rarely bare
        literals — ``const int N = 4; float w[N];`` and ``w[N - 1]``-style
        sizes are ubiquitous — so any expression built from integer
        literals, declared ``const int`` names, and integer arithmetic is
        accepted and folded here.
        """
        tok = self.peek()
        expr = self._ternary()
        return self._fold_int(expr, tok)

    def _fold_int(self, expr: ast.Expr, tok: Token) -> int:
        value = self._try_fold_int(expr)
        if value is None:
            raise ParseError(
                "expected a constant integer expression (integer literals, "
                "const int names, and integer arithmetic)", tok.line, tok.col)
        return value

    def _try_fold_int(self, expr: ast.Expr) -> Optional[int]:
        """Fold *expr* to an int if it is a constant integer expression."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Ident):
            return self.scope.lookup_const_int(expr.name)
        if isinstance(expr, ast.Unary) and not expr.postfix:
            value = self._try_fold_int(expr.operand)
            if value is None:
                return None
            return -value if expr.op == "-" else value if expr.op == "+" else None
        if isinstance(expr, ast.Binary):
            left = self._try_fold_int(expr.left)
            right = self._try_fold_int(expr.right)
            if left is None or right is None:
                return None
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op in ("/", "%"):
                if right == 0:
                    return None
                # GLSL integer division truncates toward zero, like C.
                quotient = abs(left) // abs(right)
                if expr.op == "/":
                    return quotient if (left < 0) == (right < 0) else -quotient
                remainder = abs(left) % abs(right)
                return remainder if left >= 0 else -remainder
            return None
        return None

    def _global_decl(self) -> List[ast.GlobalDecl]:
        line = self.peek().line
        qualifier: Optional[str] = None
        while self.peek().text in ("flat", "highp", "mediump", "lowp"):
            self.advance()
        if self.peek().text in ("uniform", "in", "out", "const", "attribute", "varying"):
            qualifier = self.advance().text
            if qualifier == "attribute":
                qualifier = "in"
            elif qualifier == "varying":
                qualifier = "in"
        while self.peek().text in ("highp", "mediump", "lowp"):
            self.advance()
        ty = self._parse_type()
        decls: List[ast.GlobalDecl] = []
        while True:
            name_tok = self.expect_ident()
            this_ty = ty
            if self.accept("["):
                if self.check("]"):
                    self.advance()
                    this_ty = T.Array(ty, None)
                else:
                    size = self._const_int()
                    self.expect("]")
                    this_ty = T.Array(ty, size)
            init: Optional[ast.Expr] = None
            if self.accept("="):
                init = self._expression()
                if isinstance(this_ty, T.Array) and this_ty.length is None:
                    if isinstance(init, ast.ArrayLiteral):
                        this_ty = T.Array(this_ty.element, len(init.elements))
            self.globals_scope.declare(name_tok.text, this_ty)
            if qualifier == "const" and this_ty == T.INT and init is not None:
                value = self._try_fold_int(init)
                if value is not None:
                    self.globals_scope.declare_const_int(name_tok.text, value)
            decls.append(
                ast.GlobalDecl(qualifier=qualifier, ty=this_ty, name=name_tok.text,
                               init=init, line=line)
            )
            if not self.accept(","):
                break
        self.expect(";")
        return decls

    def _function_def(self) -> ast.FunctionDef:
        line = self.peek().line
        return_type = self._parse_type()
        name = self.expect_ident().text
        self.expect("(")
        params: List[ast.Param] = []
        if not self.check(")"):
            while True:
                qual = "in"
                if self.peek().text in ("in", "out", "inout"):
                    qual = self.advance().text
                while self.peek().text in ("highp", "mediump", "lowp", "const"):
                    self.advance()
                if self.check("void") and self.peek(1).text == ")":
                    self.advance()
                    break
                pty = self._parse_type()
                pname = self.expect_ident().text
                if self.accept("["):
                    size = self._const_int()
                    self.expect("]")
                    pty = T.Array(pty, size)
                params.append(ast.Param(qualifier=qual, ty=pty, name=pname))
                if not self.accept(","):
                    break
        self.expect(")")
        self.functions[name] = (return_type, params)
        outer = self.scope
        self.scope = _Scope(self.globals_scope)
        for param in params:
            self.scope.declare(param.name, param.ty)
        saved_ret = self.current_return_type
        self.current_return_type = return_type
        body = self._block()
        self.current_return_type = saved_ret
        self.scope = outer
        return ast.FunctionDef(return_type=return_type, name=name, params=params,
                               body=body, line=line)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _block(self) -> ast.BlockStmt:
        line = self.peek().line
        self.expect("{")
        outer = self.scope
        self.scope = _Scope(outer)
        body: List[ast.Stmt] = []
        while not self.check("}"):
            if self.peek().kind is TokenKind.EOF:
                raise ParseError("unterminated block", line)
            body.append(self._statement())
        self.expect("}")
        self.scope = outer
        return ast.BlockStmt(line=line, body=body)

    def _statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.text == "{":
            return self._block()
        if tok.text == "if":
            return self._if_stmt()
        if tok.text == "for":
            return self._for_stmt()
        if tok.text == "while":
            return self._while_stmt()
        if tok.text == "do":
            return self._do_while_stmt()
        if tok.text == "switch":
            return self._switch_stmt()
        if tok.text == "return":
            self.advance()
            value = None if self.check(";") else self._expression()
            self.expect(";")
            return ast.ReturnStmt(line=tok.line, value=value)
        if tok.text == "discard":
            self.advance()
            self.expect(";")
            return ast.DiscardStmt(line=tok.line)
        if tok.text == "break":
            self.advance()
            self.expect(";")
            return ast.BreakStmt(line=tok.line)
        if tok.text == "continue":
            self.advance()
            self.expect(";")
            return ast.ContinueStmt(line=tok.line)
        if self._starts_declaration():
            stmt = self._decl_stmt()
            self.expect(";")
            return stmt
        stmt = self._expr_or_assign_stmt()
        self.expect(";")
        return stmt

    def _starts_declaration(self) -> bool:
        tok = self.peek()
        if tok.text == "const":
            return True
        if tok.text in ("highp", "mediump", "lowp"):
            return self.peek(1).kind is TokenKind.TYPE
        if self._is_struct_name(tok):
            return self.peek(1).kind is TokenKind.IDENT
        if tok.kind is TokenKind.TYPE:
            # Distinguish `vec3 v = ...;` from constructor `vec3(...)` and
            # array literal `vec3[](...)`.
            nxt = self.peek(1)
            if nxt.kind is TokenKind.IDENT:
                return True
            if nxt.text == "[":
                # `vec2[] name` (declaration) vs `vec2[](…)` (array literal)
                j = 2
                if self.peek(2).kind is TokenKind.INT:
                    j = 3
                if self.peek(j).text == "]":
                    return self.peek(j + 1).kind is TokenKind.IDENT
            return False
        return False

    def _decl_stmt(self) -> ast.DeclStmt:
        line = self.peek().line
        is_const = self.accept("const")
        while self.peek().text in ("highp", "mediump", "lowp"):
            self.advance()
        base_ty = self._parse_type()
        declarators: List[ast.Declarator] = []
        while True:
            name = self.expect_ident().text
            this_ty = base_ty
            if self.accept("["):
                if self.check("]"):
                    self.advance()
                    this_ty = T.Array(base_ty, None)
                else:
                    size = self._const_int()
                    self.expect("]")
                    this_ty = T.Array(base_ty, size)
            init: Optional[ast.Expr] = None
            if self.accept("="):
                init = self._expression()
                if isinstance(this_ty, T.Array) and this_ty.length is None:
                    if isinstance(init, ast.ArrayLiteral):
                        this_ty = T.Array(this_ty.element, len(init.elements))
                init = self._coerce(init, this_ty)
            self.scope.declare(name, this_ty)
            if is_const and this_ty == T.INT and init is not None:
                value = self._try_fold_int(init)
                if value is not None:
                    self.scope.declare_const_int(name, value)
            declarators.append(ast.Declarator(name=name, ty=this_ty, init=init))
            if not self.accept(","):
                break
        return ast.DeclStmt(line=line, declarators=declarators, is_const=is_const)

    def _expr_or_assign_stmt(self) -> ast.Stmt:
        line = self.peek().line
        expr = self._expression()
        tok = self.peek()
        if tok.text in _ASSIGN_OPS:
            if not isinstance(expr, ast.LValue):
                raise ParseError("invalid assignment target", tok.line, tok.col)
            op = self.advance().text
            value = self._expression()
            if op == "=" and expr.ty is not None:
                value = self._coerce(value, expr.ty)
            return ast.AssignStmt(line=line, target=expr, op=op, value=value)
        return ast.ExprStmt(line=line, expr=expr)

    def _if_stmt(self) -> ast.IfStmt:
        line = self.peek().line
        self.expect("if")
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        then_body = self._stmt_as_block()
        else_body: Optional[ast.BlockStmt] = None
        if self.accept("else"):
            else_body = self._stmt_as_block()
        return ast.IfStmt(line=line, cond=cond, then_body=then_body, else_body=else_body)

    def _stmt_as_block(self) -> ast.BlockStmt:
        if self.check("{"):
            return self._block()
        stmt = self._statement()
        return ast.BlockStmt(line=stmt.line, body=[stmt])

    def _for_stmt(self) -> ast.ForStmt:
        line = self.peek().line
        self.expect("for")
        self.expect("(")
        outer = self.scope
        self.scope = _Scope(outer)
        init: Optional[ast.Stmt] = None
        if not self.check(";"):
            if self._starts_declaration():
                init = self._decl_stmt()
            else:
                init = self._expr_or_assign_stmt()
        self.expect(";")
        cond = None if self.check(";") else self._expression()
        self.expect(";")
        step = None if self.check(")") else self._expr_or_assign_stmt()
        self.expect(")")
        body = self._stmt_as_block()
        self.scope = outer
        return ast.ForStmt(line=line, init=init, cond=cond, step=step, body=body)

    def _while_stmt(self) -> ast.WhileStmt:
        line = self.peek().line
        self.expect("while")
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        body = self._stmt_as_block()
        return ast.WhileStmt(line=line, cond=cond, body=body)

    def _do_while_stmt(self) -> ast.DoWhileStmt:
        line = self.peek().line
        self.expect("do")
        body = self._stmt_as_block()
        self.expect("while")
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        self.expect(";")
        if cond.ty != T.BOOL:
            raise ParseError("do/while condition must be bool", line)
        return ast.DoWhileStmt(line=line, cond=cond, body=body)

    def _switch_stmt(self) -> ast.SwitchStmt:
        line = self.peek().line
        self.expect("switch")
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        if cond.ty not in (T.INT, T.UINT):
            raise ParseError("switch scrutinee must be an integer", line)
        self.expect("{")
        outer = self.scope
        self.scope = _Scope(outer)
        cases: List[ast.SwitchCase] = []
        seen_values: set = set()
        seen_default = False
        while not self.check("}"):
            tok = self.peek()
            if tok.kind is TokenKind.EOF:
                raise ParseError("unterminated switch statement", line)
            if tok.text == "case":
                self.advance()
                value = self._const_int()
                self.expect(":")
                if value in seen_values:
                    raise ParseError(f"duplicate case label {value}",
                                     tok.line, tok.col)
                seen_values.add(value)
                if cases and not cases[-1].body:
                    # `case 1: case 2:` — merge labels into one group.
                    if cases[-1].values is not None:
                        cases[-1].values.append(value)
                        continue
                cases.append(ast.SwitchCase(values=[value], line=tok.line))
                continue
            if tok.text == "default":
                self.advance()
                self.expect(":")
                if seen_default:
                    raise ParseError("duplicate default label",
                                     tok.line, tok.col)
                seen_default = True
                cases.append(ast.SwitchCase(values=None, line=tok.line))
                continue
            if not cases:
                raise ParseError("statement before first case label in switch",
                                 tok.line, tok.col)
            cases[-1].body.append(self._statement())
        self.expect("}")
        self.scope = outer
        return ast.SwitchStmt(line=line, cond=cond, cases=cases)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._ternary()

    def _ternary(self) -> ast.Expr:
        cond = self._binary(1)
        if not self.accept("?"):
            return cond
        then = self._expression()
        self.expect(":")
        otherwise = self._ternary()
        then, otherwise = self._unify(then, otherwise)
        return ast.Ternary(line=cond.line, ty=then.ty, cond=cond, then=then,
                           otherwise=otherwise)

    def _binary(self, min_prec: int) -> ast.Expr:
        left = self._unary()
        while True:
            op = self.peek().text
            prec = _BIN_PREC.get(op)
            if prec is None or prec < min_prec:
                return left
            line = self.peek().line
            self.advance()
            right = self._binary(prec + 1)
            ty, left, right = self._binary_type(op, left, right, line)
            left = ast.Binary(line=line, ty=ty, op=op, left=left, right=right)

    def _unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.text in ("-", "+", "!"):
            self.advance()
            operand = self._unary()
            if tok.text == "+":
                return operand
            ty = operand.ty
            if tok.text == "!" and ty != T.BOOL:
                raise ParseError("operator ! requires a bool operand", tok.line, tok.col)
            return ast.Unary(line=tok.line, ty=ty, op=tok.text, operand=operand)
        if tok.text in ("++", "--"):
            self.advance()
            operand = self._unary()
            return ast.Unary(line=tok.line, ty=operand.ty, op=tok.text, operand=operand)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            tok = self.peek()
            if tok.text == "[":
                self.advance()
                index = self._expression()
                self.expect("]")
                expr = ast.Index(line=tok.line, ty=self._index_type(expr, tok),
                                 base=expr, index=index)
            elif tok.text == ".":
                self.advance()
                name = self.expect_ident().text
                expr = ast.Member(line=tok.line, ty=self._member_type(expr, name, tok),
                                  base=expr, name=name)
            elif tok.text in ("++", "--"):
                self.advance()
                expr = ast.Unary(line=tok.line, ty=expr.ty, op=tok.text,
                                 operand=expr, postfix=True)
            else:
                return expr

    def _primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.FLOAT:
            self.advance()
            return ast.FloatLit(line=tok.line, ty=T.FLOAT,
                                value=float(tok.text.rstrip("fF")))
        if tok.kind is TokenKind.INT:
            self.advance()
            return ast.IntLit(line=tok.line, ty=T.INT,
                              value=parse_int_literal(tok.text))
        if tok.kind is TokenKind.BOOL:
            self.advance()
            return ast.BoolLit(line=tok.line, ty=T.BOOL, value=tok.text == "true")
        if tok.text == "(":
            self.advance()
            expr = self._expression()
            self.expect(")")
            return expr
        if tok.kind is TokenKind.TYPE:
            return self._constructor_or_array_literal()
        if tok.kind is TokenKind.IDENT:
            if self.peek(1).text == "(":
                return self._call()
            self.advance()
            ty = self.scope.lookup(tok.text)
            if ty is None:
                raise ParseError(f"undeclared identifier {tok.text!r}", tok.line, tok.col)
            return ast.Ident(line=tok.line, ty=ty, name=tok.text)
        raise ParseError(f"unexpected token {tok.text!r} in expression", tok.line, tok.col)

    def _constructor_or_array_literal(self) -> ast.Expr:
        tok = self.advance()
        base = T.type_from_name(tok.text)
        if self.accept("["):
            length: Optional[int] = None
            if not self.check("]"):
                length = self._const_int()
            self.expect("]")
            self.expect("(")
            elements: List[ast.Expr] = []
            if not self.check(")"):
                while True:
                    elements.append(self._coerce(self._expression(), base))
                    if not self.accept(","):
                        break
            self.expect(")")
            if length is not None and length != len(elements):
                raise ParseError(
                    f"array literal has {len(elements)} elements, expected {length}",
                    tok.line, tok.col)
            return ast.ArrayLiteral(line=tok.line, ty=T.Array(base, len(elements)),
                                    element_type=base, elements=elements)
        self.expect("(")
        args: List[ast.Expr] = []
        if not self.check(")"):
            while True:
                args.append(self._expression())
                if not self.accept(","):
                    break
        self.expect(")")
        self._check_constructor(base, args, tok)
        return ast.Call(line=tok.line, ty=base, callee=tok.text, args=args,
                        is_constructor=True)

    def _check_constructor(self, ty: T.GLSLType, args: List[ast.Expr], tok: Token) -> None:
        if isinstance(ty, T.Sampler):
            raise ParseError("cannot construct a sampler", tok.line, tok.col)
        if not args:
            raise ParseError(f"constructor {ty}() requires arguments", tok.line, tok.col)
        provided = 0
        for arg in args:
            if arg.ty is None or isinstance(arg.ty, (T.Sampler, T.Array, T.Void)):
                raise ParseError(f"invalid constructor argument for {ty}", tok.line, tok.col)
            provided += T.component_count(arg.ty)
        needed = T.component_count(ty)
        if isinstance(ty, T.Scalar):
            return  # scalar cast takes the first component
        if isinstance(ty, T.Matrix) and len(args) == 1 and isinstance(args[0].ty, T.Scalar):
            return  # diagonal constructor mat4(1.0)
        if isinstance(ty, T.Matrix) and len(args) == 1 and isinstance(args[0].ty, T.Matrix):
            return  # matrix from matrix
        if provided == 1:
            return  # splat constructor vec4(0.0)
        if provided < needed:
            raise ParseError(
                f"constructor {ty} needs {needed} components, got {provided}",
                tok.line, tok.col)

    def _call(self) -> ast.Expr:
        name_tok = self.advance()
        name = name_tok.text
        self.expect("(")
        args: List[ast.Expr] = []
        if not self.check(")"):
            while True:
                args.append(self._expression())
                if not self.accept(","):
                    break
        self.expect(")")
        arg_types = [a.ty for a in args]
        if any(t is None for t in arg_types):
            raise ParseError(f"untyped argument to {name}()", name_tok.line, name_tok.col)
        if name in self.structs:
            struct_ty = self.structs[name]
            if len(args) != len(struct_ty.fields):
                raise ParseError(
                    f"constructor {name}() expects {len(struct_ty.fields)} "
                    f"arguments, got {len(args)}",
                    name_tok.line, name_tok.col)
            args = [self._coerce(a, fty)
                    for a, (_, fty) in zip(args, struct_ty.fields)]
            return ast.Call(line=name_tok.line, ty=struct_ty, callee=name,
                            args=args, is_constructor=True)
        if name in self.functions:
            ret, params = self.functions[name]
            if len(args) != len(params):
                raise ParseError(
                    f"{name}() expects {len(params)} arguments, got {len(args)}",
                    name_tok.line, name_tok.col)
            args = [self._coerce(a, p.ty) for a, p in zip(args, params)]
            return ast.Call(line=name_tok.line, ty=ret, callee=name, args=args)
        if is_builtin(name):
            try:
                ret = resolve_builtin(name, [a.ty for a in args])  # type: ignore[misc]
            except TypeError_ as exc:
                raise ParseError(str(exc), name_tok.line, name_tok.col)
            return ast.Call(line=name_tok.line, ty=ret, callee=name, args=args)
        raise ParseError(f"call to undeclared function {name!r}",
                         name_tok.line, name_tok.col)

    # ------------------------------------------------------------------
    # Type inference helpers
    # ------------------------------------------------------------------

    def _coerce(self, expr: ast.Expr, target: T.GLSLType) -> ast.Expr:
        """Insert an implicit int->float conversion where GLSL allows one."""
        if expr.ty == target or expr.ty is None:
            return expr
        if T.can_implicitly_convert(expr.ty, target):
            conv = ast.Call(line=expr.line, ty=target, callee=str(target),
                            args=[expr], is_constructor=True)
            return conv
        # Scalar float broadcasting into a vector initializer is *not*
        # implicit in GLSL, so anything else is a real error.
        raise ParseError(f"cannot convert {expr.ty} to {target}", expr.line)

    def _unify(self, a: ast.Expr, b: ast.Expr) -> Tuple[ast.Expr, ast.Expr]:
        if a.ty == b.ty:
            return a, b
        if a.ty is not None and b.ty is not None:
            if T.can_implicitly_convert(a.ty, b.ty):
                return self._coerce(a, b.ty), b
            if T.can_implicitly_convert(b.ty, a.ty):
                return a, self._coerce(b, a.ty)
        raise ParseError(f"mismatched ternary branches: {a.ty} vs {b.ty}", a.line)

    def _binary_type(
        self, op: str, left: ast.Expr, right: ast.Expr, line: int
    ) -> Tuple[T.GLSLType, ast.Expr, ast.Expr]:
        lt, rt = left.ty, right.ty
        if lt is None or rt is None:
            raise ParseError("untyped operand", line)

        if op in ("&&", "||", "^^"):
            if lt != T.BOOL or rt != T.BOOL:
                raise ParseError(f"operator {op} requires bool operands", line)
            return T.BOOL, left, right

        if op in ("==", "!="):
            left, right = self._unify(left, right)
            return T.BOOL, left, right

        if op in ("<", ">", "<=", ">="):
            left, right = self._unify(left, right)
            if not isinstance(left.ty, T.Scalar):
                raise ParseError(f"operator {op} requires scalar operands", line)
            return T.BOOL, left, right

        if op == "%":
            if lt != T.INT or rt != T.INT:
                raise ParseError("operator % requires int operands", line)
            return T.INT, left, right

        # Arithmetic: +, -, *, /
        return self._arith_type(op, left, right, line)

    def _arith_type(
        self, op: str, left: ast.Expr, right: ast.Expr, line: int
    ) -> Tuple[T.GLSLType, ast.Expr, ast.Expr]:
        lt, rt = left.ty, right.ty
        assert lt is not None and rt is not None

        # Matrix algebra first (float-based only).
        if isinstance(lt, T.Matrix) or isinstance(rt, T.Matrix):
            if op == "*":
                if isinstance(lt, T.Matrix) and isinstance(rt, T.Matrix):
                    if lt.size != rt.size:
                        raise ParseError("matrix size mismatch", line)
                    return lt, left, right
                if isinstance(lt, T.Matrix) and isinstance(rt, T.Vector):
                    if rt.size != lt.size:
                        raise ParseError("matrix*vector size mismatch", line)
                    return rt, left, right
                if isinstance(lt, T.Vector) and isinstance(rt, T.Matrix):
                    if lt.size != rt.size:
                        raise ParseError("vector*matrix size mismatch", line)
                    return lt, left, right
            # mat op scalar / mat +- mat are component-wise
            if isinstance(lt, T.Matrix) and isinstance(rt, T.Matrix):
                if lt != rt:
                    raise ParseError("matrix size mismatch", line)
                return lt, left, right
            mat = lt if isinstance(lt, T.Matrix) else rt
            other = rt if isinstance(lt, T.Matrix) else lt
            if isinstance(other, T.Scalar):
                if other.kind != T.ScalarKind.FLOAT:
                    if other is rt:
                        right = self._coerce(right, T.FLOAT)
                    else:
                        left = self._coerce(left, T.FLOAT)
                return mat, left, right
            raise ParseError(f"invalid matrix operand types {lt} {op} {rt}", line)

        # Promote mixed int/float scalars and vectors.
        lk = T.scalar_kind_of(lt)
        rk = T.scalar_kind_of(rt)
        if lk == T.ScalarKind.BOOL or rk == T.ScalarKind.BOOL:
            raise ParseError(f"arithmetic on bool operands", line)
        if lk != rk:
            if lk in (T.ScalarKind.INT, T.ScalarKind.UINT) and rk == T.ScalarKind.FLOAT:
                left = self._coerce(left, _float_like(lt))
            elif rk in (T.ScalarKind.INT, T.ScalarKind.UINT) and lk == T.ScalarKind.FLOAT:
                right = self._coerce(right, _float_like(rt))
            else:
                raise ParseError(f"mixed operand kinds {lt} {op} {rt}", line)
            lt, rt = left.ty, right.ty
            assert lt is not None and rt is not None

        if isinstance(lt, T.Scalar) and isinstance(rt, T.Scalar):
            return lt, left, right
        if isinstance(lt, T.Vector) and isinstance(rt, T.Vector):
            if lt.size != rt.size:
                raise ParseError(f"vector size mismatch {lt} {op} {rt}", line)
            return lt, left, right
        if isinstance(lt, T.Vector) and isinstance(rt, T.Scalar):
            return lt, left, right
        if isinstance(lt, T.Scalar) and isinstance(rt, T.Vector):
            return rt, left, right
        raise ParseError(f"invalid operand types {lt} {op} {rt}", line)

    def _index_type(self, base: ast.Expr, tok: Token) -> T.GLSLType:
        ty = base.ty
        if isinstance(ty, T.Array):
            return ty.element
        if isinstance(ty, T.Vector):
            return T.Scalar(ty.kind)
        if isinstance(ty, T.Matrix):
            return ty.column_type
        raise ParseError(f"type {ty} is not indexable", tok.line, tok.col)

    def _member_type(self, base: ast.Expr, name: str, tok: Token) -> T.GLSLType:
        """Type of ``base.name`` — struct field access or vector swizzle."""
        if isinstance(base.ty, T.Struct):
            try:
                return base.ty.field_type(name)
            except TypeError_ as exc:
                raise ParseError(str(exc), tok.line, tok.col)
        return self._swizzle_type(base, name, tok)

    def _swizzle_type(self, base: ast.Expr, name: str, tok: Token) -> T.GLSLType:
        ty = base.ty
        if not isinstance(ty, T.Vector):
            raise ParseError(f"swizzle on non-vector type {ty}", tok.line, tok.col)
        if not 1 <= len(name) <= 4:
            raise ParseError(f"invalid swizzle {name!r}", tok.line, tok.col)
        for charset in _SWIZZLE_SETS:
            if all(c in charset for c in name):
                if any(charset.index(c) >= ty.size for c in name):
                    raise ParseError(
                        f"swizzle {name!r} out of range for {ty}", tok.line, tok.col)
                return T.vector_of(ty.kind, len(name))
        raise ParseError(f"invalid swizzle {name!r}", tok.line, tok.col)


def swizzle_indices(name: str) -> List[int]:
    """Map a swizzle string like ``"xzy"`` to component indices ``[0, 2, 1]``."""
    for charset in _SWIZZLE_SETS:
        if all(c in charset for c in name):
            return [charset.index(c) for c in name]
    raise ParseError(f"invalid swizzle {name!r}")
