"""Delta-debugging auto-minimizer for failing wild-GLSL imports.

When :func:`repro.glsl.ingest.ingest_source` rejects a shader, the most
useful artifact is not the 900-line original but the smallest slice of it
that still fails the same way.  :func:`minimize_source` shrinks a failing
input at line granularity until it is 1-minimal — removing any single
remaining line either makes the import succeed or changes the failure —
while holding the *failure signature* fixed: the exception class plus its
message with line/column numbers masked, so the minimizer cannot drift
onto a different bug as lines shift upward.

:func:`write_reproducer` then emits the shrunk shader next to a
self-contained, ready-to-commit pytest regression test asserting the
failure, which is how parser/preprocessor bugs found in the wild enter the
test suite.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.glsl.ingest import ingest_source

#: ``line 12, col 3:`` / ``line 12:`` prefixes and embedded numbers are
#: masked when comparing failures, so the signature survives line removal.
_NUM_RE = re.compile(r"\d+")
_LOC_PREFIX_RE = re.compile(r"^line \d+(?:, col \d+)?: ")


@dataclass(frozen=True)
class FailureSignature:
    """What makes two import failures "the same bug"."""

    error_class: str   # exception class name, e.g. "ParseError"
    message: str       # message with all numbers masked to "N"

    @classmethod
    def of_exception(cls, exc: ReproError) -> "FailureSignature":
        return cls(type(exc).__name__, _NUM_RE.sub("N", str(exc)))


@dataclass
class MinimizeResult:
    """Outcome of shrinking one failing import."""

    minimized: str             # the 1-minimal failing source
    signature: FailureSignature
    error_message: str         # exact message raised by ``minimized``
    original_lines: int
    minimized_lines: int
    probes: int                # number of candidate imports attempted


def failure_of(source: str) -> Optional[ReproError]:
    """The exception *source* raises on import, or None if it ingests."""
    try:
        ingest_source(source)
    except ReproError as exc:
        return exc
    return None


def minimize_source(source: str) -> Optional[MinimizeResult]:
    """Shrink a failing import to a 1-minimal line-level reproducer.

    Returns None when *source* imports cleanly (nothing to minimize).
    Classic ddmin over lines: try dropping chunks of decreasing size,
    accepting any removal that preserves the failure signature, and
    repeat single-line passes until a fixpoint proves 1-minimality.
    """
    original = failure_of(source)
    if original is None:
        return None
    signature = FailureSignature.of_exception(original)
    lines = source.splitlines()
    original_count = len(lines)
    probes = 0

    def still_fails(candidate: List[str]) -> bool:
        nonlocal probes
        probes += 1
        exc = failure_of("\n".join(candidate))
        return exc is not None and FailureSignature.of_exception(exc) == signature

    chunk = max(len(lines) // 2, 1)
    while True:
        removed_any = False
        i = 0
        while i < len(lines):
            candidate = lines[:i] + lines[i + chunk:]
            if still_fails(candidate):
                lines = candidate
                removed_any = True
            else:
                i += chunk
        if chunk == 1:
            if not removed_any:
                break  # no single line can go: 1-minimal
        else:
            chunk = max(chunk // 2, 1)

    minimized = "\n".join(lines)
    exc = failure_of(minimized)
    assert exc is not None  # signature-preserving by construction
    return MinimizeResult(
        minimized=minimized,
        signature=signature,
        error_message=str(exc),
        original_lines=original_count,
        minimized_lines=len(lines),
        probes=probes,
    )


def core_message(message: str) -> str:
    """Strip the ``line N[, col M]:`` location prefix from an error message."""
    return _LOC_PREFIX_RE.sub("", message)


_TEST_TEMPLATE = '''"""Auto-generated wild-GLSL regression test (repro import --minimize).

The shader below is the 1-minimal slice of a rejected import that still
fails with {error_class}: {core!r}.  If the frontend
learns to accept it, delete this test and promote the input to a corpus
example instead.
"""

import pytest

from repro.errors import {error_class}
from repro.glsl.ingest import ingest_source

SOURCE = {source!r}


def test_minimized_reproducer_still_fails():
    with pytest.raises({error_class}) as excinfo:
        ingest_source(SOURCE)
    assert {core!r} in str(excinfo.value)
'''


def write_reproducer(
    result: MinimizeResult,
    directory: Union[str, Path],
    slug: str,
) -> Tuple[Path, Path]:
    """Write ``<slug>.min.frag`` and ``test_<slug>.py`` under *directory*.

    The test is self-contained (embeds the minimized source) so it can be
    committed directly into ``tests/``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9_]", "_", slug)
    frag_path = directory / f"{slug}.min.frag"
    frag_path.write_text(result.minimized + "\n")
    test_path = directory / f"test_{slug}.py"
    test_path.write_text(_TEST_TEMPLATE.format(
        error_class=result.signature.error_class,
        core=core_message(result.error_message),
        source=result.minimized,
    ))
    return frag_path, test_path
