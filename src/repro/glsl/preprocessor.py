"""A GLSL preprocessor supporting the directives übershaders rely on.

Supported: ``#version``, ``#extension``, ``#pragma`` (recorded/stripped),
``#define`` (object-like and function-like), ``#undef``, ``#ifdef``,
``#ifndef``, ``#if``, ``#elif``, ``#else``, ``#endif``.  Conditional
expressions support integer literals, ``defined(X)``, the usual arithmetic,
comparison and logical operators, and macro substitution.

The implementation is line-based and textual, like the preprocessors inside
real GLSL compilers (which operate before tokenization).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PreprocessorError

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_MAX_EXPANSION_DEPTH = 64


@dataclass
class MacroDef:
    """A single ``#define`` entry."""

    name: str
    body: str
    params: Optional[Tuple[str, ...]] = None  # None => object-like

    @property
    def is_function_like(self) -> bool:
        return self.params is not None


@dataclass
class PreprocessResult:
    """Output of :func:`preprocess`."""

    text: str
    version: Optional[str] = None
    extensions: List[str] = field(default_factory=list)
    macros: Dict[str, MacroDef] = field(default_factory=dict)


def preprocess(source: str, defines: Optional[Dict[str, str]] = None) -> PreprocessResult:
    """Run the preprocessor over *source*.

    ``defines`` supplies predefined object-like macros (the übershader
    specialisation mechanism): mapping name -> replacement text ("" for a bare
    ``#define NAME``).
    """
    macros: Dict[str, MacroDef] = {}
    for name, value in (defines or {}).items():
        macros[name] = MacroDef(name, value)

    result = PreprocessResult(text="", macros=macros)
    out_lines: List[str] = []
    # Stack of (parent_active, this_branch_taken, any_branch_taken_yet)
    cond_stack: List[List[bool]] = []

    lines = _splice_continuations(_strip_block_comments(source))
    for lineno, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if stripped.startswith("#"):
            _directive(stripped, lineno, macros, cond_stack, result)
            continue
        if _active(cond_stack):
            out_lines.append(_expand_macros(raw, macros, lineno))

    if cond_stack:
        raise PreprocessorError("unterminated #if/#ifdef block", len(lines))

    while out_lines and not out_lines[-1].strip():
        out_lines.pop()
    result.text = "\n".join(out_lines) + ("\n" if out_lines else "")
    return result


def _strip_block_comments(source: str) -> str:
    """Remove ``/* */`` comments, preserving newlines for line numbering."""
    out: List[str] = []
    i = 0
    n = len(source)
    while i < n:
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise PreprocessorError("unterminated block comment")
            out.append("\n" * source.count("\n", i, end + 2))
            i = end + 2
        elif source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
        else:
            out.append(source[i])
            i += 1
    return "".join(out)


def _splice_continuations(source: str) -> List[str]:
    """Join lines ending in a backslash (macro bodies spanning lines)."""
    lines = source.split("\n")
    out: List[str] = []
    buffer = ""
    for line in lines:
        if line.endswith("\\"):
            buffer += line[:-1] + " "
        else:
            out.append(buffer + line)
            buffer = ""
    if buffer:
        out.append(buffer)
    return out


def _active(cond_stack: Sequence[Sequence[bool]]) -> bool:
    return all(frame[0] and frame[1] for frame in cond_stack)


def _directive(
    line: str,
    lineno: int,
    macros: Dict[str, MacroDef],
    cond_stack: List[List[bool]],
    result: PreprocessResult,
) -> None:
    body = line[1:].strip()
    if not body:
        return
    match = _WORD_RE.match(body)
    if not match:
        raise PreprocessorError(f"malformed directive {line!r}", lineno)
    name = match.group(0)
    rest = body[match.end() :].strip()

    if name in ("ifdef", "ifndef"):
        macro = rest.split()[0] if rest else ""
        if not macro:
            raise PreprocessorError(f"#{name} requires a macro name", lineno)
        taken = (macro in macros) == (name == "ifdef")
        cond_stack.append([_active(cond_stack), taken, taken])
        return
    if name == "if":
        taken = bool(_eval_condition(rest, macros, lineno))
        cond_stack.append([_active(cond_stack), taken, taken])
        return
    if name == "elif":
        if not cond_stack:
            raise PreprocessorError("#elif without #if", lineno)
        frame = cond_stack[-1]
        if frame[2]:
            frame[1] = False
        else:
            frame[1] = bool(_eval_condition(rest, macros, lineno))
            frame[2] = frame[1]
        return
    if name == "else":
        if not cond_stack:
            raise PreprocessorError("#else without #if", lineno)
        frame = cond_stack[-1]
        frame[1] = not frame[2]
        frame[2] = True
        return
    if name == "endif":
        if not cond_stack:
            raise PreprocessorError("#endif without #if", lineno)
        cond_stack.pop()
        return

    if not _active(cond_stack):
        return

    if name == "define":
        _define(rest, lineno, macros)
    elif name == "undef":
        if rest:
            macros.pop(rest.split()[0], None)
    elif name == "version":
        result.version = rest
    elif name == "extension":
        result.extensions.append(rest)
    elif name == "pragma":
        pass
    else:
        raise PreprocessorError(f"unsupported directive #{name}", lineno)


def _define(rest: str, lineno: int, macros: Dict[str, MacroDef]) -> None:
    match = _WORD_RE.match(rest)
    if not match:
        raise PreprocessorError("#define requires a name", lineno)
    name = match.group(0)
    after = rest[match.end() :]
    if after.startswith("("):
        close = after.find(")")
        if close < 0:
            raise PreprocessorError(f"unterminated parameter list for macro {name}", lineno)
        params = tuple(p.strip() for p in after[1:close].split(",") if p.strip())
        body = after[close + 1 :].strip()
        macros[name] = MacroDef(name, body, params)
    else:
        macros[name] = MacroDef(name, after.strip())


def _expand_macros(text: str, macros: Dict[str, MacroDef], lineno: int, depth: int = 0) -> str:
    if depth > _MAX_EXPANSION_DEPTH:
        raise PreprocessorError("macro expansion too deep (recursive macro?)", lineno)
    out: List[str] = []
    i = 0
    n = len(text)
    changed = False
    while i < n:
        match = _WORD_RE.search(text, i)
        if not match:
            out.append(text[i:])
            break
        out.append(text[i : match.start()])
        word = match.group(0)
        macro = macros.get(word)
        if macro is None:
            out.append(word)
            i = match.end()
            continue
        if macro.is_function_like:
            args, end = _parse_macro_args(text, match.end(), lineno)
            if args is None:  # not a call; leave the identifier alone
                out.append(word)
                i = match.end()
                continue
            if len(args) != len(macro.params or ()):
                raise PreprocessorError(
                    f"macro {word} expects {len(macro.params or ())} args, got {len(args)}",
                    lineno,
                )
            body = macro.body
            for param, arg in zip(macro.params or (), args):
                body = re.sub(rf"\b{re.escape(param)}\b", arg.strip(), body)
            out.append(body)
            i = end
        else:
            out.append(macro.body)
            i = match.end()
        changed = True
    expanded = "".join(out)
    if changed:
        return _expand_macros(expanded, macros, lineno, depth + 1)
    return expanded


def _parse_macro_args(
    text: str, pos: int, lineno: int
) -> Tuple[Optional[List[str]], int]:
    """Parse a parenthesised argument list starting at or after *pos*.

    Returns (args, end_index); args is None when no call parenthesis follows.
    """
    i = pos
    while i < len(text) and text[i] in " \t":
        i += 1
    if i >= len(text) or text[i] != "(":
        return None, pos
    depth = 0
    args: List[str] = []
    current: List[str] = []
    while i < len(text):
        ch = text[i]
        if ch == "(":
            depth += 1
            if depth > 1:
                current.append(ch)
        elif ch == ")":
            depth -= 1
            if depth == 0:
                args.append("".join(current))
                return ([a for a in args] if any(a.strip() for a in args) else []), i + 1
            current.append(ch)
        elif ch == "," and depth == 1:
            args.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    raise PreprocessorError("unterminated macro argument list", lineno)


def _eval_condition(expr: str, macros: Dict[str, MacroDef], lineno: int) -> int:
    """Evaluate a ``#if`` expression to an integer."""
    # Resolve defined(X) / defined X before macro expansion.
    def replace_defined(match: re.Match) -> str:
        name = match.group(1) or match.group(2)
        return "1" if name in macros else "0"

    expr = re.sub(r"defined\s*\(\s*(\w+)\s*\)|defined\s+(\w+)", replace_defined, expr)
    expr = _expand_macros(expr, macros, lineno)
    # Remaining identifiers evaluate to 0 per the C preprocessor convention.
    expr = _WORD_RE.sub("0", expr)
    expr = expr.replace("&&", " and ").replace("||", " or ")
    expr = expr.replace("!=", "__NE__").replace("!", " not ").replace("__NE__", "!=")
    if not expr.strip():
        raise PreprocessorError("empty #if condition", lineno)
    try:
        value = eval(expr, {"__builtins__": {}}, {})  # noqa: S307 - sanitized arithmetic
    except Exception as exc:
        raise PreprocessorError(f"cannot evaluate condition {expr!r}: {exc}", lineno)
    return int(bool(value)) if isinstance(value, bool) else int(value)
