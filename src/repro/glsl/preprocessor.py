"""A GLSL preprocessor supporting the directives übershaders rely on.

Supported: ``#version``, ``#extension``, ``#pragma`` (recorded/stripped),
``#define`` (object-like and function-like), ``#undef``, ``#ifdef``,
``#ifndef``, ``#if``, ``#elif``, ``#else``, ``#endif``, ``#error``.
Conditional expressions follow C preprocessor semantics: integer literals
(decimal, hex, octal, with ``u``/``l`` suffixes), ``defined(X)``, the usual
arithmetic / bitwise / comparison / logical operators with truncating integer
division, short-circuit ``&&`` / ``||``, and macro substitution.  Directives
inside inactive conditional groups are skipped without being evaluated, so a
``#if`` branch guarded off by an outer conditional may reference macros and
syntax outside our subset (how real drivers survive wild shader soup).

The implementation is line-based and textual, like the preprocessors inside
real GLSL compilers (which operate before tokenization).  The output text is
**line-preserving**: every consumed source line (directive, inactive branch,
or continuation) is replaced by an empty line, so line numbers in downstream
lexer/parser diagnostics refer to the *original* file — essential when the
input is a wild shader we did not author.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PreprocessorError

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_MAX_EXPANSION_DEPTH = 64


@dataclass
class MacroDef:
    """A single ``#define`` entry."""

    name: str
    body: str
    params: Optional[Tuple[str, ...]] = None  # None => object-like

    @property
    def is_function_like(self) -> bool:
        return self.params is not None


@dataclass
class PreprocessResult:
    """Output of :func:`preprocess`."""

    text: str
    version: Optional[str] = None
    extensions: List[str] = field(default_factory=list)
    macros: Dict[str, MacroDef] = field(default_factory=dict)


def preprocess(source: str, defines: Optional[Dict[str, str]] = None) -> PreprocessResult:
    """Run the preprocessor over *source*.

    ``defines`` supplies predefined object-like macros (the übershader
    specialisation mechanism): mapping name -> replacement text ("" for a bare
    ``#define NAME``).
    """
    macros: Dict[str, MacroDef] = {}
    for name, value in (defines or {}).items():
        macros[name] = MacroDef(name, value)

    result = PreprocessResult(text="", macros=macros)
    out_lines: List[str] = []
    # Stack of (parent_active, this_branch_taken, any_branch_taken_yet)
    cond_stack: List[List[bool]] = []

    last_lineno = 1
    for lineno, raw, span in _logical_lines(_strip_comments(source)):
        last_lineno = lineno + span - 1
        stripped = raw.strip()
        if stripped.startswith("#"):
            _directive(stripped, lineno, macros, cond_stack, result)
            out_lines.extend([""] * span)
            continue
        if _active(cond_stack):
            out_lines.append(_expand_macros(raw, macros, lineno))
            out_lines.extend([""] * (span - 1))
        else:
            out_lines.extend([""] * span)

    if cond_stack:
        raise PreprocessorError("unterminated #if/#ifdef block", last_lineno)

    while out_lines and not out_lines[-1].strip():
        out_lines.pop()
    result.text = "\n".join(out_lines) + ("\n" if out_lines else "")
    return result


def _strip_comments(source: str) -> str:
    """Remove ``/* */`` and ``//`` comments ahead of directive handling.

    A block comment is replaced by one space (so ``a/*x*/b`` stays two
    tokens) plus every newline it spanned, keeping all subsequent line
    numbers accurate.  An unterminated block comment reports the line the
    comment *opened* on.
    """
    out: List[str] = []
    i = 0
    n = len(source)
    while i < n:
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise PreprocessorError("unterminated block comment",
                                        source.count("\n", 0, i) + 1)
            out.append(" ")
            out.append("\n" * source.count("\n", i, end + 2))
            i = end + 2
        elif source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
        else:
            out.append(source[i])
            i += 1
    return "".join(out)


# Backwards-compatible alias (the comment stripper used to handle only block
# comments; tests and callers may still import it under the old name).
_strip_block_comments = _strip_comments


def _logical_lines(source: str) -> List[Tuple[int, str, int]]:
    """Split into logical lines, splicing backslash continuations.

    Yields ``(first_lineno, text, span)`` where *span* is how many physical
    lines the logical line covers, so callers can keep output and
    diagnostics aligned with the original file.
    """
    lines = source.split("\n")
    out: List[Tuple[int, str, int]] = []
    buffer = ""
    start = 1
    span = 0
    for number, line in enumerate(lines, start=1):
        if not span:
            start = number
        span += 1
        if line.endswith("\\"):
            buffer += line[:-1] + " "
        else:
            out.append((start, buffer + line, span))
            buffer = ""
            span = 0
    if span:
        out.append((start, buffer, span))
    return out


def _active(cond_stack: Sequence[Sequence[bool]]) -> bool:
    return all(frame[0] and frame[1] for frame in cond_stack)


def _directive(
    line: str,
    lineno: int,
    macros: Dict[str, MacroDef],
    cond_stack: List[List[bool]],
    result: PreprocessResult,
) -> None:
    body = line[1:].strip()
    if not body:
        return
    match = _WORD_RE.match(body)
    if not match:
        if _active(cond_stack):
            raise PreprocessorError(f"malformed directive {line!r}", lineno)
        return  # garbage directives in skipped groups are ignored, per C
    name = match.group(0)
    rest = body[match.end() :].strip()

    if name in ("ifdef", "ifndef"):
        macro = rest.split()[0] if rest else ""
        if not macro:
            raise PreprocessorError(f"#{name} requires a macro name", lineno)
        parent = _active(cond_stack)
        taken = parent and (macro in macros) == (name == "ifdef")
        cond_stack.append([parent, taken, taken])
        return
    if name == "if":
        # C semantics: the condition of a conditional inside an inactive
        # group is *not* evaluated — it may use macros or syntax we cannot
        # handle, and that must not be an error.
        parent = _active(cond_stack)
        taken = parent and bool(_eval_condition(rest, macros, lineno))
        cond_stack.append([parent, taken, taken])
        return
    if name == "elif":
        if not cond_stack:
            raise PreprocessorError("#elif without #if", lineno)
        frame = cond_stack[-1]
        if not frame[0] or frame[2]:
            frame[1] = False  # parent inactive or a branch already taken
        else:
            frame[1] = bool(_eval_condition(rest, macros, lineno))
            frame[2] = frame[1]
        return
    if name == "else":
        if not cond_stack:
            raise PreprocessorError("#else without #if", lineno)
        frame = cond_stack[-1]
        frame[1] = not frame[2]
        frame[2] = True
        return
    if name == "endif":
        if not cond_stack:
            raise PreprocessorError("#endif without #if", lineno)
        cond_stack.pop()
        return

    if not _active(cond_stack):
        return

    if name == "define":
        _define(rest, lineno, macros)
    elif name == "undef":
        if rest:
            macros.pop(rest.split()[0], None)
    elif name == "version":
        result.version = rest
    elif name == "extension":
        result.extensions.append(rest)
    elif name == "pragma":
        pass
    elif name == "error":
        raise PreprocessorError(f"#error {rest}".strip(), lineno)
    else:
        raise PreprocessorError(f"unsupported directive #{name}", lineno)


def _define(rest: str, lineno: int, macros: Dict[str, MacroDef]) -> None:
    match = _WORD_RE.match(rest)
    if not match:
        raise PreprocessorError("#define requires a name", lineno)
    name = match.group(0)
    after = rest[match.end() :]
    if after.startswith("("):
        close = after.find(")")
        if close < 0:
            raise PreprocessorError(f"unterminated parameter list for macro {name}", lineno)
        params = tuple(p.strip() for p in after[1:close].split(",") if p.strip())
        body = after[close + 1 :].strip()
        macros[name] = MacroDef(name, body, params)
    else:
        macros[name] = MacroDef(name, after.strip())


def _expand_macros(text: str, macros: Dict[str, MacroDef], lineno: int, depth: int = 0) -> str:
    if depth > _MAX_EXPANSION_DEPTH:
        raise PreprocessorError("macro expansion too deep (recursive macro?)", lineno)
    out: List[str] = []
    i = 0
    n = len(text)
    changed = False
    while i < n:
        match = _WORD_RE.search(text, i)
        if not match:
            out.append(text[i:])
            break
        out.append(text[i : match.start()])
        word = match.group(0)
        macro = macros.get(word)
        if macro is None:
            out.append(word)
            i = match.end()
            continue
        if macro.is_function_like:
            args, end = _parse_macro_args(text, match.end(), lineno)
            if args is None:  # not a call; leave the identifier alone
                out.append(word)
                i = match.end()
                continue
            if len(args) != len(macro.params or ()):
                raise PreprocessorError(
                    f"macro {word} expects {len(macro.params or ())} args, got {len(args)}",
                    lineno,
                )
            body = macro.body
            for param, arg in zip(macro.params or (), args):
                body = re.sub(rf"\b{re.escape(param)}\b", arg.strip(), body)
            out.append(body)
            i = end
        else:
            out.append(macro.body)
            i = match.end()
        changed = True
    expanded = "".join(out)
    if changed:
        return _expand_macros(expanded, macros, lineno, depth + 1)
    return expanded


def _parse_macro_args(
    text: str, pos: int, lineno: int
) -> Tuple[Optional[List[str]], int]:
    """Parse a parenthesised argument list starting at or after *pos*.

    Returns (args, end_index); args is None when no call parenthesis follows.
    """
    i = pos
    while i < len(text) and text[i] in " \t":
        i += 1
    if i >= len(text) or text[i] != "(":
        return None, pos
    depth = 0
    args: List[str] = []
    current: List[str] = []
    while i < len(text):
        ch = text[i]
        if ch == "(":
            depth += 1
            if depth > 1:
                current.append(ch)
        elif ch == ")":
            depth -= 1
            if depth == 0:
                args.append("".join(current))
                return ([a for a in args] if any(a.strip() for a in args) else []), i + 1
            current.append(ch)
        elif ch == "," and depth == 1:
            args.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    raise PreprocessorError("unterminated macro argument list", lineno)


# ---------------------------------------------------------------------------
# #if condition evaluation — a real tokenizer + C-semantics evaluator
# ---------------------------------------------------------------------------

_COND_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<num>0[xX][0-9a-fA-F]+[uUlL]*|\.?\d[\w.]*)
      | (?P<ident>[A-Za-z_]\w*)
      | (?P<op><<|>>|<=|>=|==|!=|&&|\|\||[-+*/%()!~<>&^|?:])
    )""",
    re.VERBOSE,
)

#: Binary operator precedence for conditions, C order, higher binds tighter.
_COND_PREC = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


def _int_literal(text: str, lineno: int) -> int:
    """Parse a C integer literal (decimal/hex/octal with u/l suffixes)."""
    body = text.rstrip("uUlL")
    try:
        if body[:2].lower() == "0x":
            return int(body, 16)
        if "." in body or ("e" in body.lower() and not body.lower().startswith("0x")):
            raise ValueError("floating constant")
        if body.startswith("0") and len(body) > 1:
            return int(body, 8)
        return int(body, 10)
    except (ValueError, IndexError):
        raise PreprocessorError(
            f"invalid integer constant {text!r} in #if condition", lineno)


class _CondParser:
    """Recursive-descent parser for ``#if`` expressions.

    Builds a small tuple tree so evaluation can short-circuit ``&&`` / ``||``
    and ``?:`` the way C requires (a division in a dead branch must not
    fault).
    """

    def __init__(self, expr: str, lineno: int):
        self.lineno = lineno
        self.tokens: List[str] = []
        self.values: Dict[int, int] = {}
        pos = 0
        while pos < len(expr):
            match = _COND_TOKEN_RE.match(expr, pos)
            if not match:
                if expr[pos:].strip():
                    raise PreprocessorError(
                        f"unexpected {expr[pos:].strip()[0]!r} in #if "
                        f"condition {expr.strip()!r}", lineno)
                break
            if match.group("num") is not None:
                self.values[len(self.tokens)] = _int_literal(
                    match.group("num"), lineno)
                self.tokens.append("<num>")
            elif match.group("ident") is not None:
                # Remaining identifiers evaluate to 0, per the C convention.
                self.values[len(self.tokens)] = 0
                self.tokens.append("<num>")
            else:
                self.tokens.append(match.group("op"))
            pos = match.end()
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def parse(self):
        """Parse the whole condition; raises on trailing tokens."""
        tree = self._ternary()
        if self.peek() is not None:
            raise PreprocessorError(
                f"unexpected {self.peek()!r} in #if condition", self.lineno)
        return tree

    def _ternary(self):
        cond = self._binary(1)
        if self.peek() != "?":
            return cond
        self.pos += 1
        then = self._ternary()
        if self.peek() != ":":
            raise PreprocessorError("expected ':' in #if condition", self.lineno)
        self.pos += 1
        return ("cond", cond, then, self._ternary())

    def _binary(self, min_prec: int):
        left = self._unary()
        while True:
            op = self.peek()
            prec = _COND_PREC.get(op or "")
            if prec is None or prec < min_prec:
                return left
            self.pos += 1
            left = ("bin", op, left, self._binary(prec + 1))

    def _unary(self):
        op = self.peek()
        if op in ("-", "+", "!", "~"):
            self.pos += 1
            return ("un", op, self._unary())
        if op == "(":
            self.pos += 1
            inner = self._ternary()
            if self.peek() != ")":
                raise PreprocessorError(
                    "unbalanced parentheses in #if condition", self.lineno)
            self.pos += 1
            return inner
        if op == "<num>":
            value = self.values[self.pos]
            self.pos += 1
            return ("num", value)
        raise PreprocessorError(
            f"expected an operand in #if condition, found {op!r}", self.lineno)


def _trunc_div(a: int, b: int) -> int:
    """C integer division: truncate toward zero (Python // floors)."""
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def _trunc_mod(a: int, b: int) -> int:
    """C integer remainder: same sign as the dividend."""
    r = abs(a) % abs(b)
    return r if a >= 0 else -r


def _eval_tree(tree, lineno: int) -> int:
    kind = tree[0]
    if kind == "num":
        return tree[1]
    if kind == "un":
        value = _eval_tree(tree[2], lineno)
        if tree[1] == "-":
            return -value
        if tree[1] == "+":
            return value
        if tree[1] == "!":
            return 0 if value else 1
        return ~value  # "~"
    if kind == "cond":
        branch = tree[2] if _eval_tree(tree[1], lineno) else tree[3]
        return _eval_tree(branch, lineno)
    op = tree[1]
    left = _eval_tree(tree[2], lineno)
    if op == "&&":
        return 1 if left and _eval_tree(tree[3], lineno) else 0
    if op == "||":
        return 1 if left or _eval_tree(tree[3], lineno) else 0
    right = _eval_tree(tree[3], lineno)
    if op in ("/", "%"):
        if right == 0:
            raise PreprocessorError("division by zero in #if condition", lineno)
        return _trunc_div(left, right) if op == "/" else _trunc_mod(left, right)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    comparisons = {"==": left == right, "!=": left != right,
                   "<": left < right, ">": left > right,
                   "<=": left <= right, ">=": left >= right}
    return 1 if comparisons[op] else 0


def _eval_condition(expr: str, macros: Dict[str, MacroDef], lineno: int) -> int:
    """Evaluate a ``#if`` expression to an integer with C semantics."""
    # Resolve defined(X) / defined X before macro expansion.
    def replace_defined(match: re.Match) -> str:
        name = match.group(1) or match.group(2)
        return "1" if name in macros else "0"

    expr = re.sub(r"defined\s*\(\s*(\w+)\s*\)|defined\s+(\w+)", replace_defined, expr)
    expr = _expand_macros(expr, macros, lineno)
    if not expr.strip():
        raise PreprocessorError("empty #if condition", lineno)
    return _eval_tree(_CondParser(expr, lineno).parse(), lineno)
