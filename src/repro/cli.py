"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

- ``optimize``  — run the offline optimizer over a GLSL file.
- ``variants``  — count/list the unique variants of a shader (Fig. 4c).
- ``import``    — ingest wild real-world GLSL into the studied subset
                  (widened grammar + normalization); failing inputs can be
                  auto-minimized into committed reproducer test cases.
- ``time``      — time a shader on one or all simulated platforms.
- ``study``     — run the exhaustive study over the corpus (optionally one
                  shard of it) and print the Fig. 5 / Table I summaries.
- ``tune``      — search the flag space with a budgeted strategy and report
                  the best-found flags against the exhaustive optimum.
- ``report``    — regenerate every registered paper artifact from a study
                  run (or saved study JSON) as report.md / report.html.
- ``merge-results`` — reassemble ``--shard`` study runs (and their caches)
                  into one complete study, byte-identical to an unsharded
                  run.
- ``dispatch``  — the fault-tolerant one-command version of the shard
                  workflow: fan the corpus out over supervised workers,
                  retry/resume failures, and auto-merge (see
                  ``docs/dispatch.md``).
- ``serve``     — run the long-running study service: a job queue, a worker
                  pool, and one process-wide warm result cache shared across
                  every submitted job (see ``docs/service.md``).
- ``client``    — submit/status/tail/cancel/shutdown against a running
                  ``repro serve`` daemon, over its local socket.

``study``, ``tune``, and ``report`` all accept ``--synth-seed`` /
``--synth-count`` to extend the corpus with procedurally synthesized
übershader families (see ``repro.corpus.synth`` and ``docs/corpus.md``),
and ``--import-dir`` to merge ingested wild shaders in as the ``imported``
family (see ``docs/import.md``).
See ``docs/cli.md`` for copy-pasteable examples of each command and
``docs/tutorial.md`` for a ten-minute walkthrough.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.flags import best_static_flags
from repro.analysis.speedups import average_speedups
from repro.core import ShaderCompiler, optimize_source
from repro.corpus import CorpusSpec
from repro.gpu.platform import all_platforms, platform_by_name
from repro.harness.environment import ShaderExecutionEnvironment
from repro.harness.results import StudyResult, merge_study_results
from repro.harness.study import ShardSpec, StudyConfig, run_study
from repro.passes import ALL_FLAG_NAMES, DEFAULT_LUNARGLASS, OptimizationFlags
from repro.passes.flags import SPACE_SIZE
from repro.reporting import ReportBuilder, all_artifacts, render_table
from repro.search import (
    STRATEGIES, EvaluationEngine, Exhaustive, ResultCache, make_strategy,
)


def parse_flags(text: str) -> OptimizationFlags:
    """Parse "unroll,fp_reassociate" / "default" / "all" / "none"."""
    if text == "default":
        return DEFAULT_LUNARGLASS
    if text == "all":
        return OptimizationFlags.all()
    if text == "none" or not text:
        return OptimizationFlags.none()
    flags = OptimizationFlags.none()
    for name in text.split(","):
        name = name.strip()
        if name not in ALL_FLAG_NAMES:
            raise SystemExit(
                f"unknown flag {name!r}; choose from {', '.join(ALL_FLAG_NAMES)}")
        flags = flags.with_flag(name, True)
    return flags


def _platforms_for(name: str):
    """Resolve --platform into a platform list, with a clean CLI error."""
    if name == "all":
        return all_platforms()
    try:
        return [platform_by_name(name)]
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None


def _cmd_optimize(args: argparse.Namespace) -> int:
    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    print(optimize_source(source, parse_flags(args.flags), es=args.es), end="")
    return 0


def _cmd_variants(args: argparse.Namespace) -> int:
    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    variants = ShaderCompiler(source).all_variants()
    print(f"{variants.unique_count} unique variants from 256 combinations")
    for index, (text, combos) in enumerate(variants.items()):
        smallest = min(combos, key=lambda f: f.index)
        print(f"  variant {index}: {len(combos):3d} combos, "
              f"e.g. [{smallest}] ({len(text.splitlines())} lines)")
    return 0


def _cmd_time(args: argparse.Namespace) -> int:
    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    flags = parse_flags(args.flags)
    optimized = optimize_source(source, flags)
    platforms = _platforms_for(args.platform)
    rows = []
    for platform in platforms:
        env = ShaderExecutionEnvironment(platform)
        base = env.run(source, seed=args.seed).measurement.mean_us
        opt = env.run(optimized, seed=args.seed + 1).measurement.mean_us
        rows.append((platform.name, base, opt, (base / opt - 1.0) * 100.0))
    print(render_table(["platform", "original us", "optimized us", "speed-up %"],
                       rows, title=f"flags: {flags}"))
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import ReproError
    from repro.glsl.ingest import ingest_file, iter_shader_files
    from repro.glsl.introspect import interface_summary
    from repro.glsl.minimize import minimize_source, write_reproducer

    paths: List[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            found = iter_shader_files(path)
            if not found:
                print(f"note: no shader files under {path}", file=sys.stderr)
            paths.extend(found)
        elif path.is_file():
            paths.append(path)
        else:
            raise SystemExit(f"error: no such file or directory: {raw}")

    imported = 0
    failed = 0
    for path in paths:
        try:
            result = ingest_file(path)
        except ReproError as exc:
            failed += 1
            print(f"FAIL {path}: {type(exc).__name__}: {exc}")
            if args.minimize:
                shrunk = minimize_source(path.read_text())
                assert shrunk is not None  # it just failed above
                frag, test = write_reproducer(
                    shrunk, args.repro_dir, path.stem)
                print(f"  minimized {shrunk.original_lines} -> "
                      f"{shrunk.minimized_lines} lines "
                      f"({shrunk.probes} probes)")
                print(f"  reproducer: {frag}")
                print(f"  regression test: {test}")
            continue
        imported += 1
        print(f"ok   {path}: {result.loc_before} -> {result.loc_after} loc")
        if args.verbose:
            print(interface_summary(result.shader))
        if args.emit_dir:
            out_dir = Path(args.emit_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            out_path = out_dir / f"{result.name}.frag"
            out_path.write_text(result.canonical)
            print(f"  canonical: {out_path}")

    print(f"\nimported {imported}/{len(paths)} shaders"
          + (f", {failed} failed" if failed else ""))
    return 1 if failed else 0


def corpus_spec_from_args(args: argparse.Namespace) -> CorpusSpec:
    """The :class:`CorpusSpec` behind the shared corpus-selection flags.

    ``study``/``tune``/``report`` *and* ``client submit`` all funnel their
    ``--max-shaders``/``--synth-seed``/``--synth-count`` flags through this
    one helper, so the CLI surface and the service's :class:`JobSpec`
    cannot drift apart: both build the corpus via ``CorpusSpec.build()``.
    """
    return CorpusSpec(max_shaders=args.max_shaders or None,
                      synth_seed=args.synth_seed,
                      synth_count=args.synth_count,
                      import_dir=args.import_dir or None)


def _synth_corpus(args: argparse.Namespace):
    """The corpus selected by the shared --max-shaders/--synth-* flags."""
    return corpus_spec_from_args(args).build()


class _Terminated(Exception):
    """Raised by a SIGTERM handler to unwind to a graceful exit."""


def _on_signals(callback, *signums) -> bool:
    """Install *callback* as the handler for *signums* (main thread only).

    Signal handlers can only be installed from the main thread; tests and
    library callers driving commands from worker threads simply run
    without one.  Returns True when installed.
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return False
    for signum in signums:
        signal.signal(signum, lambda _signum, _frame: callback())
    return True


def _cmd_study(args: argparse.Namespace) -> int:
    import signal

    from repro.dispatch import fault_from_env, write_study_output

    shard = None
    if args.shard:
        try:
            shard = ShardSpec.parse(args.shard)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
        if not args.output:
            print("note: --shard without --output; the shard result is "
                  "needed by `repro merge-results`", file=sys.stderr)
    try:
        # Resolved before the work: a bad injection directive must fail
        # loudly up front, not after minutes of measuring.
        fault = fault_from_env()
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    corpus = _synth_corpus(args)
    engine = EvaluationEngine(seed=args.seed,
                              cache=ResultCache(args.cache or None))

    def _terminate() -> None:
        raise _Terminated()

    _on_signals(_terminate, signal.SIGTERM)
    try:
        study = run_study(corpus, StudyConfig(
            seed=args.seed, verbose=True, max_workers=args.jobs,
            shard=shard, checkpoint_every=args.checkpoint_every,
            heartbeat_path=args.heartbeat or None), engine=engine)
    except _Terminated:
        # Graceful drain for a dispatched worker: flush what we measured
        # (the redo replays it warm), write no output (the shard stays
        # re-queueable — the dispatcher retries it), and exit 0.
        engine.cache.save()
        print("repro study: terminated; result cache flushed, no output "
              "written (the shard stays re-queueable)", file=sys.stderr)
        return 0
    if shard is not None:
        print(f"\nshard {shard}: {len(study.shaders)} of {len(corpus)} "
              "cases (summaries cover this shard only)")
    print()
    rows = [(r.platform, r.best_possible, r.best_static, r.default_lunarglass)
            for r in average_speedups(study)]
    print(render_table(
        ["platform", "best %", "best static %", "default %"], rows,
        title="Average speed-ups (Fig. 5)"))
    print()
    rows = [(p, str(best_static_flags(study, p))) for p in study.platforms]
    print(render_table(["platform", "best static flags"], rows,
                       title="Best static flags (Table I)"))
    if args.output:
        write_study_output(args.output, study.to_json(), fault=fault)
        print(f"\nstudy saved to {args.output}")
    if args.trie_stats:
        import json
        from pathlib import Path

        from repro.core.pipeline import compile_mode

        payload = {"mode": compile_mode(),
                   **engine.corpus_stats.as_dict()}
        Path(args.trie_stats).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"corpus-trie stats saved to {args.trie_stats}")
    return 0


def _cmd_dispatch(args: argparse.Namespace) -> int:
    import signal

    from repro.dispatch import (
        BackoffPolicy, FaultPlan, ShardDispatcher, SubprocessTransport,
        ThreadTransport,
    )

    if args.shards < 1:
        raise SystemExit(f"error: --shards must be >= 1, got {args.shards}")
    spec = corpus_spec_from_args(args)
    cases = spec.build()
    if not cases:
        raise SystemExit("error: the selected corpus is empty")
    try:
        faults = (FaultPlan.parse(args.inject) if args.inject
                  else FaultPlan.from_env())
        policy = BackoffPolicy(base=args.backoff_base, seed=args.seed,
                               max_attempts=args.retries)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.transport == "thread":
        # One shared in-memory cache: a retried shard replays the work its
        # failed attempt already measured as cache hits.
        transport = ThreadTransport(cases, cache=ResultCache())
    else:
        transport = SubprocessTransport(spec)
    dispatcher = ShardDispatcher(
        cases=cases, shard_count=args.shards, transport=transport,
        state_dir=args.dir, seed=args.seed, policy=policy,
        timeout=args.timeout, heartbeat_timeout=args.heartbeat_timeout,
        workers=args.workers, jobs=args.jobs, faults=faults,
        output=args.output or None, fresh=args.fresh, verbose=True)
    # SIGTERM/SIGINT wind the supervision loop down gracefully: in-flight
    # shards are killed (and stay re-queueable), completed shards stay
    # checkpointed, and the manifest records the interruption.
    _on_signals(dispatcher.request_stop, signal.SIGTERM, signal.SIGINT)
    report = dispatcher.run()

    print(f"\ndispatch: {len(report.completed)}/{args.shards} shards "
          f"complete ({len(report.resumed)} resumed from checkpoint, "
          f"{report.retries} retries)")
    print(f"manifest: {report.manifest_path}")
    if report.complete:
        print(f"merged study: {report.merged_path}")
        return 0
    if report.interrupted and not report.failed:
        print("dispatch: interrupted — re-run the same command to resume "
              "from the checkpoints", file=sys.stderr)
        return 0
    print(f"error: shards {report.missing_shards} missing after "
          f"{report.retries} retries", file=sys.stderr)
    for index in sorted(report.failed):
        print(f"  shard {index}: {report.failed[index]}", file=sys.stderr)
    if report.partial_path is not None:
        print(f"partial merge (completed shards only): "
              f"{report.partial_path}", file=sys.stderr)
    return 1


def _cmd_merge_results(args: argparse.Namespace) -> int:
    from pathlib import Path

    if bool(args.caches) != bool(args.cache_out):
        raise SystemExit("error: --caches and --cache-out go together")
    if bool(args.trie_stats) != bool(args.trie_stats_out):
        raise SystemExit(
            "error: --trie-stats and --trie-stats-out go together")
    parts = []
    for path in args.shards:
        try:
            parts.append(StudyResult.from_json(Path(path).read_text()))
        except OSError as exc:
            raise SystemExit(f"error: cannot read shard {path!r}: "
                             f"{exc.strerror or exc}") from None
        except (KeyError, TypeError, ValueError) as exc:
            raise SystemExit(
                f"error: {path!r} is not a saved study JSON ({exc})") from None
    try:
        merged = merge_study_results(parts)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    Path(args.output).write_text(merged.to_json())
    print(f"merged {len(parts)} shards -> {len(merged.shaders)} shaders "
          f"x {len(merged.platforms)} platforms: {args.output}")

    if args.cache_out:
        merged_cache = ResultCache(args.cache_out)
        for path in args.caches:
            try:
                added = merged_cache.merge_from(path)
            except ValueError as exc:
                raise SystemExit(f"error: {exc}") from None
            print(f"cache {path}: {added} new entries")
        merged_cache.save()
        print(f"merged cache ({len(merged_cache)} entries): {args.cache_out}")

    if args.trie_stats_out:
        import json

        from repro.core.corpus_trie import CorpusTrieStats

        parts = []
        for path in args.trie_stats:
            try:
                parts.append(json.loads(Path(path).read_text()))
            except OSError as exc:
                raise SystemExit(f"error: cannot read trie stats {path!r}: "
                                 f"{exc.strerror or exc}") from None
            except json.JSONDecodeError as exc:
                raise SystemExit(f"error: {path!r} is not a trie-stats "
                                 f"JSON ({exc})") from None
        summed = CorpusTrieStats.merge_dicts(parts)
        modes = {part.get("mode") for part in parts if "mode" in part}
        if len(modes) == 1:
            summed["mode"] = modes.pop()
        Path(args.trie_stats_out).write_text(
            json.dumps(summed, indent=2) + "\n")
        print(f"merged corpus-trie stats of {len(parts)} shards "
              f"({summed['hits']} hits, {summed['pass_runs']} runs): "
              f"{args.trie_stats_out}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    if args.budget < 1:
        raise SystemExit(f"error: --budget must be >= 1, got {args.budget}")
    corpus = _synth_corpus(args)
    platforms = _platforms_for(args.platform)
    engine = EvaluationEngine(platforms=platforms, seed=args.seed,
                              cache=ResultCache(args.cache or None))
    strategy = make_strategy(args.strategy, seed=args.seed)

    rows = []
    worst_gap = 0.0
    for platform in platforms:
        objective = engine.corpus_objective(corpus, platform.name)
        outcome = strategy.search(objective, budget=args.budget)
        found_flags = OptimizationFlags.from_index(outcome.best_index)
        if args.no_reference:
            rows.append((platform.name, str(found_flags),
                         f"{outcome.best_score:.2f}", "-", "-", "-",
                         outcome.points_evaluated,
                         f"{100.0 * outcome.fraction_of_space:.1f}%"))
            continue
        # Exhaustive reference shares the engine, so the strategy's points
        # are cache hits and only the remainder of the space is measured.
        reference = Exhaustive(seed=args.seed).search(objective)
        optimum_flags = OptimizationFlags.from_index(reference.best_index)
        # Gap as a time ratio: how much slower is the found set than the
        # optimum?  Within 1% means gap <= 1.0.
        found_factor = 1.0 + outcome.best_score / 100.0
        optimum_factor = 1.0 + reference.best_score / 100.0
        gap = (optimum_factor / found_factor - 1.0) * 100.0
        worst_gap = max(worst_gap, gap)
        rows.append((platform.name, str(found_flags),
                     f"{outcome.best_score:.2f}", str(optimum_flags),
                     f"{reference.best_score:.2f}", f"{gap:.2f}",
                     outcome.points_evaluated,
                     f"{100.0 * outcome.fraction_of_space:.1f}%"))

    print(render_table(
        ["platform", "best found", "mean %", "exhaustive optimum", "opt %",
         "gap %", "evaluated", "of space"],
        rows,
        title=(f"tune: strategy={strategy.name} budget={args.budget} "
               f"seed={args.seed} shaders={len(corpus)}")))
    if not args.no_reference:
        print(f"\nworst-platform gap to exhaustive optimum: {worst_gap:.2f}%")
        budget_fraction = 100.0 * min(args.budget, SPACE_SIZE) / SPACE_SIZE
        print(f"search budget: {args.budget}/{SPACE_SIZE} points "
              f"({budget_fraction:.1f}% of the space)")
    engine.cache.save()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.list:
        rows = [(a.name, a.paper_ref, a.title) for a in all_artifacts()]
        print(render_table(["artifact", "paper", "title"], rows,
                           title="Registered paper artifacts"))
        return 0

    only = None
    if args.only:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
        known = {a.name for a in all_artifacts()}
        unknown = [name for name in only if name not in known]
        if unknown:
            raise SystemExit(
                f"error: unknown artifact(s) {', '.join(unknown)}; "
                f"see `repro report --list`")

    builder = ReportBuilder(config=StudyConfig(
        seed=args.seed, verbose=args.verbose, max_workers=args.jobs,
        cache_path=args.cache or None))
    if args.study:
        from pathlib import Path
        ignored = [flag for flag, on in
                   [("--max-shaders", args.max_shaders),
                    ("--seed", args.seed != 2018),
                    ("--jobs", args.jobs is not None),
                    ("--synth-count", args.synth_count)] if on]
        if ignored:
            print(f"note: {', '.join(ignored)} ignored with --study "
                  "(the saved study's corpus and seed are used)",
                  file=sys.stderr)
        try:
            study = StudyResult.from_json(Path(args.study).read_text())
        except OSError as exc:
            raise SystemExit(f"error: cannot read study {args.study!r}: "
                             f"{exc.strerror or exc}") from None
        except (KeyError, TypeError, ValueError) as exc:
            raise SystemExit(
                f"error: {args.study!r} is not a saved study JSON ({exc})") \
                from None
    else:
        corpus = _synth_corpus(args)
        study = builder.run_study(corpus)
    report = builder.build(study, only=only)
    paths = report.write(args.out_dir)

    engine = builder.engine
    print(f"rendered {len(report.sections)} artifacts over "
          f"{report.shader_count} shaders x {len(report.platforms)} "
          f"platforms (seed {report.seed})")
    print(f"engine work: {engine.frontend_count} front-ends, "
          f"{engine.compile_count} pass-pipeline compiles, "
          f"{engine.measure_count} measurements "
          f"(cache: {engine.cache.hits} hits / {engine.cache.misses} misses)")
    for kind, path in sorted(paths.items()):
        print(f"report.{kind}: {path}")
    return 0


# ---------------------------------------------------------------------------
# The study service: `repro serve` + the `repro client` command group
# ---------------------------------------------------------------------------

#: Default service directory; the socket lives at <dir>/service.sock.
DEFAULT_SERVICE_DIR = ".repro-service"


def _default_socket() -> str:
    import os
    return os.path.join(DEFAULT_SERVICE_DIR, "service.sock")


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service import StudyService, socket_available

    if not socket_available():
        raise SystemExit("error: repro serve needs AF_UNIX socket support")
    service = StudyService(args.dir, workers=args.workers,
                           socket_path=args.socket or None,
                           cache_path=args.cache or None,
                           job_workers=args.job_workers)
    # SIGTERM = graceful drain: wait() returns, the finally below stops the
    # service (running jobs re-queue as pending, journal + cache flushed),
    # and we exit 0 — what an init system or the chaos harness expects.
    _on_signals(service.request_stop, signal.SIGTERM)
    service.start()
    print(f"repro serve: listening on {service.socket_path}")
    print(f"  journal: {service.journal.path} "
          f"({service.recovered_jobs} jobs recovered)")
    print(f"  cache:   {service.cache.path} "
          f"({len(service.cache)} warm entries)")
    print(f"  workers: {service.pool.workers} "
          f"(x{service.runner.job_workers} job processes); stop with "
          f"`repro client shutdown` or ctrl-c")
    try:
        service.wait()
    except KeyboardInterrupt:
        print("\nrepro serve: interrupted, draining "
              "(running jobs re-queue as pending)")
    finally:
        service.stop()
    print("repro serve: stopped (pending jobs remain journalled)")
    return 0


def _client(args: argparse.Namespace):
    from repro.service import ServiceClient

    return ServiceClient(args.socket)


def _client_request(fn):
    """Run one client call, mapping connection/service errors to exit 1."""
    from repro.service import ServiceError

    try:
        return fn()
    except (ConnectionError, ServiceError) as exc:
        raise SystemExit(f"error: {exc}") from None


def _client_job_spec(args: argparse.Namespace):
    """Build the JobSpec a `repro client submit` invocation describes."""
    from repro.service import JobSpec

    source = None
    corpus = None
    if args.file:
        source = (sys.stdin.read() if args.file == "-"
                  else open(args.file).read())
    else:
        corpus = corpus_spec_from_args(args)
    platforms = () if args.platform == "all" else (args.platform,)
    spec = JobSpec(source=source, corpus=corpus, strategy=args.strategy,
                   budget=args.budget, platforms=platforms, seed=args.seed,
                   timeout=args.timeout, shards=args.shards)
    try:
        spec.validate()
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    return spec


def _print_event(event: dict) -> None:
    kind = event.get("type")
    if kind == "case":
        best = ", ".join(f"{name} {pct:+.1f}%"
                         for name, pct in sorted(event["best_pct"].items()))
        print(f"[{event['position']}/{event['total']}] {event['name']}: "
              f"{event['variants']} variants; best {best}")
    elif kind == "shard":
        detail = f": {event['error']}" if event.get("error") else ""
        if event.get("delay") is not None:
            detail += f" (retry in {event['delay']}s)"
        attempt = (f" attempt {event['attempt']}"
                   if event.get("attempt") else "")
        print(f"[shard {event['shard']}] {event['state']}{attempt}{detail}")
    elif kind == "dispatch":
        print(f"dispatch {event['state']}: {event['completed']} shards "
              f"complete, missing {event['missing'] or 'none'} "
              f"({event['retries']} retries)")
    elif kind == "platform":
        print(f"[{event['platform']}] best {event['best_flags']} "
              f"-> {event['best_pct']:+.2f}% "
              f"({event['evaluated']} points evaluated)")
    elif kind == "state":
        suffix = f": {event['error']}" if event.get("error") else ""
        work = event.get("work") or {}
        print(f"job {event['state']}{suffix} "
              f"(work: {work.get('frontends', 0)} front-ends, "
              f"{work.get('compiles', 0)} compiles, "
              f"{work.get('measures', 0)} measures, "
              f"{work.get('cache_hits', 0)} cache hits)")
    else:
        import json
        print(json.dumps(event))


def _follow_job(client, job_id: str, since: int = 0) -> int:
    from repro.service import ServiceError

    final_state = None
    try:
        # Stream: print each event the moment the poll returns it.
        for event in client.follow(job_id, since=since):
            _print_event(event)
            if event.get("type") == "state":
                final_state = event.get("state")
    except (ConnectionError, ServiceError) as exc:
        raise SystemExit(f"error: {exc}") from None
    return 0 if final_state == "done" else 1


def _cmd_client_submit(args: argparse.Namespace) -> int:
    spec = _client_job_spec(args)
    client = _client(args)
    response = _client_request(lambda: client.submit(spec))
    print(f"submitted {response['id']} (digest {response['digest'][:12]}, "
          f"queue position {response['position']})")
    if args.wait:
        return _follow_job(client, response["id"])
    print(f"follow with: repro client tail {response['id']}")
    return 0


def _cmd_client_status(args: argparse.Namespace) -> int:
    import json

    response = _client_request(
        lambda: _client(args).status(args.id or None))
    if args.id:
        print(json.dumps(response["job"], indent=2))
        return 0
    rows = [(job["id"], job["strategy"], job["state"],
             job["events"], job["error"] or "-")
            for job in response["jobs"]]
    print(render_table(["job", "strategy", "state", "events", "error"],
                       rows, title=f"{len(rows)} jobs"))
    return 0


def _cmd_client_tail(args: argparse.Namespace) -> int:
    return _follow_job(_client(args), args.id, since=args.since)


def _cmd_client_cancel(args: argparse.Namespace) -> int:
    response = _client_request(lambda: _client(args).cancel(args.id))
    note = f" ({response['note']})" if response.get("note") else ""
    print(f"{response['id']}: {response['state']}{note}")
    return 0


def _cmd_client_stats(args: argparse.Namespace) -> int:
    import json

    response = _client_request(lambda: _client(args).stats())
    response.pop("ok", None)
    print(json.dumps(response, indent=2))
    return 0


def _cmd_client_ping(args: argparse.Namespace) -> int:
    response = _client_request(lambda: _client(args).ping())
    print(f"ok: {response['service']} (pid {response['pid']})")
    return 0


def _cmd_client_shutdown(args: argparse.Namespace) -> int:
    response = _client_request(lambda: _client(args).shutdown())
    print(f"stopping ({response['pending']} pending jobs stay journalled)")
    return 0


def _add_corpus_args(p: argparse.ArgumentParser) -> None:
    """The corpus-selection flags shared by study/tune/report."""
    p.add_argument("--max-shaders", type=int, default=0,
                   help="truncate the corpus (0 = everything); truncation "
                        "is lazy, so huge synth corpora stay cheap")
    p.add_argument("--synth-count", type=int, default=0,
                   help="append N procedurally synthesized übershader "
                        "families (repro.corpus.synth)")
    p.add_argument("--synth-seed", type=int, default=None,
                   help="seed for the synthesized families (default: 2018); "
                        "changes their content, never their names/order")
    p.add_argument("--import-dir", default="",
                   help="ingest every wild shader file under this directory "
                        "(via `repro import` normalization) as the "
                        "'imported' corpus family")


def build_parser() -> argparse.ArgumentParser:
    """The complete ``repro`` argparse tree (one sub-parser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ISPASS 2018 shader compiler optimization reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("optimize", help="offline-optimize a GLSL file")
    p.add_argument("file", help="fragment shader path, or - for stdin")
    p.add_argument("--flags", default="default",
                   help="comma list / 'default' / 'all' / 'none'")
    p.add_argument("--es", action="store_true", help="emit the GLES dialect")
    p.set_defaults(fn=_cmd_optimize)

    p = sub.add_parser("variants", help="enumerate unique variants (Fig. 4c)")
    p.add_argument("file")
    p.set_defaults(fn=_cmd_variants)

    p = sub.add_parser("time", help="time a shader on the simulated GPUs")
    p.add_argument("file")
    p.add_argument("--flags", default="default")
    p.add_argument("--platform", default="all",
                   help="Intel|AMD|NVIDIA|ARM|Qualcomm|all")
    p.add_argument("--seed", type=int, default=2018)
    p.set_defaults(fn=_cmd_time)

    p = sub.add_parser(
        "import",
        help="ingest wild GLSL into the studied subset (preprocess, parse "
             "the widened grammar, normalize structs/do-while/switch); "
             "failures can auto-minimize into committed reproducers")
    p.add_argument("paths", nargs="+",
                   help="shader files and/or directories to ingest")
    p.add_argument("--minimize", action="store_true",
                   help="on failure, delta-debug the input down to a "
                        "1-minimal reproducer plus a ready-to-commit "
                        "pytest regression test")
    p.add_argument("--repro-dir", default="reproducers",
                   help="directory for --minimize artifacts "
                        "(default: reproducers/)")
    p.add_argument("--emit-dir", default="",
                   help="also write each shader's canonical normalized "
                        "form here as <name>.frag")
    p.add_argument("--verbose", action="store_true",
                   help="print each imported shader's uniform/in/out "
                        "interface")
    p.set_defaults(fn=_cmd_import)

    p = sub.add_parser("study", help="run the exhaustive corpus study")
    _add_corpus_args(p)
    p.add_argument("--seed", type=int, default=2018)
    p.add_argument("--output", default="", help="save study JSON here")
    p.add_argument("--jobs", type=int, default=None,
                   help="measurement worker threads "
                        "(default: $REPRO_JOBS or serial)")
    p.add_argument("--cache", default="",
                   help="persist the result cache to this file (.json = one "
                        "blob, .jsonl = append-only streaming store)")
    p.add_argument("--shard", default="",
                   help="run one shard, e.g. 1/3; merge the saved outputs "
                        "with `repro merge-results`")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="stream results: persist the cache and release "
                        "compiled variants every N cases (0 = off)")
    p.add_argument("--heartbeat", default="",
                   help="touch this file after every case — the liveness "
                        "signal `repro dispatch` supervision watches")
    p.add_argument("--trie-stats", default="",
                   help="write the corpus-trie hit/miss/state counters as "
                        "JSON here (all zeros unless REPRO_COMPILE=corpus; "
                        "shard runs' files merge via `repro merge-results "
                        "--trie-stats`)")
    p.set_defaults(fn=_cmd_study)

    p = sub.add_parser(
        "dispatch",
        help="fault-tolerant sharded study: supervise shard workers, "
             "retry failures, resume from checkpoints, auto-merge")
    _add_corpus_args(p)
    p.add_argument("--shards", type=int, default=4,
                   help="how many shards to stripe the corpus into "
                        "(default: 4)")
    p.add_argument("--seed", type=int, default=2018)
    p.add_argument("--dir", default=".repro-dispatch",
                   help="state directory: shard outputs, checkpoints, "
                        "heartbeats, worker logs, manifest.json "
                        "(default: .repro-dispatch)")
    p.add_argument("--output", default="",
                   help="write the merged StudyResult JSON here "
                        "(default: <dir>/study.json); byte-identical to "
                        "an unsharded `repro study`")
    p.add_argument("--transport", default="subprocess",
                   choices=["subprocess", "thread"],
                   help="where shards run: `repro study` child processes "
                        "(default) or in-process threads sharing one warm "
                        "cache")
    p.add_argument("--workers", type=int, default=2,
                   help="shards in flight at once (default: 2)")
    p.add_argument("--jobs", type=int, default=None,
                   help="measurement worker processes inside each shard")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-shard wall-clock limit in seconds; an "
                        "over-limit shard is killed and retried")
    p.add_argument("--heartbeat-timeout", type=float, default=None,
                   help="kill (and retry) a shard whose last heartbeat is "
                        "older than this many seconds")
    p.add_argument("--retries", type=int, default=3,
                   help="max attempts per shard before it is declared "
                        "missing (default: 3)")
    p.add_argument("--backoff-base", type=float, default=0.5,
                   help="first retry delay in seconds; doubles per attempt "
                        "with deterministic seeded jitter (default: 0.5)")
    p.add_argument("--inject", default="",
                   help="fault-injection plan, e.g. "
                        "'1:crash,2:hang@1,3:corrupt@*' (or $REPRO_FAULTS); "
                        "see docs/dispatch.md")
    p.add_argument("--fresh", action="store_true",
                   help="ignore existing checkpoints and re-run every shard")
    p.set_defaults(fn=_cmd_dispatch)

    p = sub.add_parser(
        "merge-results",
        help="merge --shard study outputs (and caches) into one study")
    p.add_argument("shards", nargs="+",
                   help="the shard study JSON files, in any order")
    p.add_argument("--output", required=True,
                   help="write the merged StudyResult JSON here "
                        "(byte-identical to an unsharded run)")
    p.add_argument("--caches", nargs="*", default=[],
                   help="shard result-cache files to union")
    p.add_argument("--cache-out", default="",
                   help="write the merged result cache here")
    p.add_argument("--trie-stats", nargs="*", default=[],
                   help="per-shard corpus-trie stats JSON files "
                        "(from `repro study --trie-stats`) to sum")
    p.add_argument("--trie-stats-out", default="",
                   help="write the summed corpus-trie stats here")
    p.set_defaults(fn=_cmd_merge_results)

    p = sub.add_parser(
        "tune", help="search the flag space under an evaluation budget")
    p.add_argument("--strategy", default="genetic",
                   choices=sorted(STRATEGIES),
                   help="search strategy (default: genetic)")
    p.add_argument("--budget", type=int, default=64,
                   help="max unique flag combinations to evaluate")
    p.add_argument("--platform", default="all",
                   help="Intel|AMD|NVIDIA|ARM|Qualcomm|all")
    _add_corpus_args(p)
    p.add_argument("--seed", type=int, default=2018)
    p.add_argument("--cache", default="",
                   help="persist the result cache to this JSON file")
    p.add_argument("--no-reference", action="store_true",
                   help="skip the exhaustive-optimum comparison run")
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser(
        "report",
        help="regenerate the paper's figures/tables as report.md + "
             "report.html")
    p.add_argument("--list", action="store_true",
                   help="list registered artifacts and exit")
    p.add_argument("--only", default="",
                   help="comma-separated artifact names (default: all)")
    p.add_argument("--study", default="",
                   help="load a saved study JSON instead of running one")
    p.add_argument("--out-dir", default="reports",
                   help="directory for report.md / report.html "
                        "(default: reports/)")
    _add_corpus_args(p)
    p.add_argument("--seed", type=int, default=2018)
    p.add_argument("--jobs", type=int, default=None,
                   help="measurement worker processes "
                        "(default: $REPRO_JOBS or serial)")
    p.add_argument("--cache", default="",
                   help="persist the result cache to this JSON file; a warm "
                        "cache re-renders with zero compiles/measurements")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "serve",
        help="run the long-running study service (queue + worker pool + "
             "process-wide warm cache)")
    p.add_argument("--dir", default=DEFAULT_SERVICE_DIR,
                   help="service state directory: journal, cache, results, "
                        f"socket (default: {DEFAULT_SERVICE_DIR})")
    p.add_argument("--socket", default="",
                   help="socket path (default: <dir>/service.sock)")
    p.add_argument("--workers", type=int, default=1,
                   help="concurrent jobs (worker threads sharing one warm "
                        "engine; default: 1)")
    p.add_argument("--job-workers", type=int, default=1,
                   help="process-pool size each study job may use "
                        "internally (default: serial)")
    p.add_argument("--cache", default="",
                   help="shared result cache path (default: "
                        "<dir>/cache.jsonl, the streaming store)")
    p.set_defaults(fn=_cmd_serve)

    client = sub.add_parser(
        "client", help="talk to a running `repro serve` daemon")
    csub = client.add_subparsers(dest="client_command", required=True)

    def _socket_arg(cp: argparse.ArgumentParser) -> None:
        cp.add_argument("--socket", default=_default_socket(),
                        help="daemon socket path (default: "
                             f"{_default_socket()})")

    cp = csub.add_parser("submit", help="submit a study/tune job")
    cp.add_argument("file", nargs="?", default="",
                    help="fragment shader path or - for stdin (omit to "
                         "submit a corpus job)")
    _add_corpus_args(cp)
    cp.add_argument("--strategy", default="study",
                    choices=["study", "dispatch"] + sorted(STRATEGIES),
                    help="'study' = the exhaustive per-variant study; "
                         "'dispatch' = the same study sharded over the "
                         "fault-tolerant dispatcher (needs --shards); "
                         "anything else = a budgeted flag-space search")
    cp.add_argument("--budget", type=int, default=64,
                    help="evaluation budget for search strategies")
    cp.add_argument("--shards", type=int, default=0,
                    help="shard fan-out for --strategy dispatch jobs")
    cp.add_argument("--platform", default="all",
                    help="Intel|AMD|NVIDIA|ARM|Qualcomm|all")
    cp.add_argument("--seed", type=int, default=2018)
    cp.add_argument("--timeout", type=float, default=None,
                    help="per-job wall-clock limit in seconds; a job over "
                         "its deadline fails instead of wedging a worker")
    cp.add_argument("--wait", action="store_true",
                    help="follow the job's events until it finishes")
    _socket_arg(cp)
    cp.set_defaults(fn=_cmd_client_submit)

    cp = csub.add_parser("status", help="one job's status, or all jobs")
    cp.add_argument("id", nargs="?", default="")
    _socket_arg(cp)
    cp.set_defaults(fn=_cmd_client_status)

    cp = csub.add_parser(
        "tail", help="follow a job's results as they land")
    cp.add_argument("id")
    cp.add_argument("--since", type=int, default=0,
                    help="resume from this event index")
    _socket_arg(cp)
    cp.set_defaults(fn=_cmd_client_tail)

    cp = csub.add_parser("cancel", help="cancel a pending or running job")
    cp.add_argument("id")
    _socket_arg(cp)
    cp.set_defaults(fn=_cmd_client_cancel)

    cp = csub.add_parser("stats", help="service-wide queue/cache stats")
    _socket_arg(cp)
    cp.set_defaults(fn=_cmd_client_stats)

    cp = csub.add_parser("ping", help="liveness check")
    _socket_arg(cp)
    cp.set_defaults(fn=_cmd_client_ping)

    cp = csub.add_parser("shutdown", help="stop the daemon gracefully")
    _socket_arg(cp)
    cp.set_defaults(fn=_cmd_client_shutdown)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse *argv* (default: ``sys.argv``) and dispatch to the sub-command."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
