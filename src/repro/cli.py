"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

- ``optimize``  — run the offline optimizer over a GLSL file.
- ``variants``  — count/list the unique variants of a shader (Fig. 4c).
- ``time``      — time a shader on one or all simulated platforms.
- ``study``     — run the exhaustive study over the corpus (optionally one
                  shard of it) and print the Fig. 5 / Table I summaries.
- ``tune``      — search the flag space with a budgeted strategy and report
                  the best-found flags against the exhaustive optimum.
- ``report``    — regenerate every registered paper artifact from a study
                  run (or saved study JSON) as report.md / report.html.
- ``merge-results`` — reassemble ``--shard`` study runs (and their caches)
                  into one complete study, byte-identical to an unsharded
                  run.

``study``, ``tune``, and ``report`` all accept ``--synth-seed`` /
``--synth-count`` to extend the corpus with procedurally synthesized
übershader families (see ``repro.corpus.synth`` and ``docs/corpus.md``).
See ``docs/cli.md`` for copy-pasteable examples of each command and
``docs/tutorial.md`` for a ten-minute walkthrough.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.flags import best_static_flags
from repro.analysis.speedups import average_speedups
from repro.core import ShaderCompiler, optimize_source
from repro.corpus import default_corpus
from repro.gpu.platform import all_platforms, platform_by_name
from repro.harness.environment import ShaderExecutionEnvironment
from repro.harness.results import StudyResult, merge_study_results
from repro.harness.study import ShardSpec, StudyConfig, run_study
from repro.passes import ALL_FLAG_NAMES, DEFAULT_LUNARGLASS, OptimizationFlags
from repro.passes.flags import SPACE_SIZE
from repro.reporting import ReportBuilder, all_artifacts, render_table
from repro.search import (
    STRATEGIES, EvaluationEngine, Exhaustive, ResultCache, make_strategy,
)


def parse_flags(text: str) -> OptimizationFlags:
    """Parse "unroll,fp_reassociate" / "default" / "all" / "none"."""
    if text == "default":
        return DEFAULT_LUNARGLASS
    if text == "all":
        return OptimizationFlags.all()
    if text == "none" or not text:
        return OptimizationFlags.none()
    flags = OptimizationFlags.none()
    for name in text.split(","):
        name = name.strip()
        if name not in ALL_FLAG_NAMES:
            raise SystemExit(
                f"unknown flag {name!r}; choose from {', '.join(ALL_FLAG_NAMES)}")
        flags = flags.with_flag(name, True)
    return flags


def _platforms_for(name: str):
    """Resolve --platform into a platform list, with a clean CLI error."""
    if name == "all":
        return all_platforms()
    try:
        return [platform_by_name(name)]
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None


def _cmd_optimize(args: argparse.Namespace) -> int:
    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    print(optimize_source(source, parse_flags(args.flags), es=args.es), end="")
    return 0


def _cmd_variants(args: argparse.Namespace) -> int:
    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    variants = ShaderCompiler(source).all_variants()
    print(f"{variants.unique_count} unique variants from 256 combinations")
    for index, (text, combos) in enumerate(variants.items()):
        smallest = min(combos, key=lambda f: f.index)
        print(f"  variant {index}: {len(combos):3d} combos, "
              f"e.g. [{smallest}] ({len(text.splitlines())} lines)")
    return 0


def _cmd_time(args: argparse.Namespace) -> int:
    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    flags = parse_flags(args.flags)
    optimized = optimize_source(source, flags)
    platforms = _platforms_for(args.platform)
    rows = []
    for platform in platforms:
        env = ShaderExecutionEnvironment(platform)
        base = env.run(source, seed=args.seed).measurement.mean_us
        opt = env.run(optimized, seed=args.seed + 1).measurement.mean_us
        rows.append((platform.name, base, opt, (base / opt - 1.0) * 100.0))
    print(render_table(["platform", "original us", "optimized us", "speed-up %"],
                       rows, title=f"flags: {flags}"))
    return 0


def _synth_corpus(args: argparse.Namespace):
    """The corpus selected by the shared --max-shaders/--synth-* flags."""
    return default_corpus(max_shaders=args.max_shaders or None,
                          synth_seed=args.synth_seed,
                          synth_count=args.synth_count)


def _cmd_study(args: argparse.Namespace) -> int:
    shard = None
    if args.shard:
        try:
            shard = ShardSpec.parse(args.shard)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
        if not args.output:
            print("note: --shard without --output; the shard result is "
                  "needed by `repro merge-results`", file=sys.stderr)
    corpus = _synth_corpus(args)
    study = run_study(corpus, StudyConfig(
        seed=args.seed, verbose=True, max_workers=args.jobs,
        cache_path=args.cache or None, shard=shard,
        checkpoint_every=args.checkpoint_every))
    if shard is not None:
        print(f"\nshard {shard}: {len(study.shaders)} of {len(corpus)} "
              "cases (summaries cover this shard only)")
    print()
    rows = [(r.platform, r.best_possible, r.best_static, r.default_lunarglass)
            for r in average_speedups(study)]
    print(render_table(
        ["platform", "best %", "best static %", "default %"], rows,
        title="Average speed-ups (Fig. 5)"))
    print()
    rows = [(p, str(best_static_flags(study, p))) for p in study.platforms]
    print(render_table(["platform", "best static flags"], rows,
                       title="Best static flags (Table I)"))
    if args.output:
        open(args.output, "w").write(study.to_json())
        print(f"\nstudy saved to {args.output}")
    return 0


def _cmd_merge_results(args: argparse.Namespace) -> int:
    from pathlib import Path

    if bool(args.caches) != bool(args.cache_out):
        raise SystemExit("error: --caches and --cache-out go together")
    parts = []
    for path in args.shards:
        try:
            parts.append(StudyResult.from_json(Path(path).read_text()))
        except OSError as exc:
            raise SystemExit(f"error: cannot read shard {path!r}: "
                             f"{exc.strerror or exc}") from None
        except (KeyError, TypeError, ValueError) as exc:
            raise SystemExit(
                f"error: {path!r} is not a saved study JSON ({exc})") from None
    try:
        merged = merge_study_results(parts)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    Path(args.output).write_text(merged.to_json())
    print(f"merged {len(parts)} shards -> {len(merged.shaders)} shaders "
          f"x {len(merged.platforms)} platforms: {args.output}")

    if args.cache_out:
        merged_cache = ResultCache(args.cache_out)
        for path in args.caches:
            try:
                added = merged_cache.merge_from(path)
            except ValueError as exc:
                raise SystemExit(f"error: {exc}") from None
            print(f"cache {path}: {added} new entries")
        merged_cache.save()
        print(f"merged cache ({len(merged_cache)} entries): {args.cache_out}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    if args.budget < 1:
        raise SystemExit(f"error: --budget must be >= 1, got {args.budget}")
    corpus = _synth_corpus(args)
    platforms = _platforms_for(args.platform)
    engine = EvaluationEngine(platforms=platforms, seed=args.seed,
                              cache=ResultCache(args.cache or None))
    strategy = make_strategy(args.strategy, seed=args.seed)

    rows = []
    worst_gap = 0.0
    for platform in platforms:
        objective = engine.corpus_objective(corpus, platform.name)
        outcome = strategy.search(objective, budget=args.budget)
        found_flags = OptimizationFlags.from_index(outcome.best_index)
        if args.no_reference:
            rows.append((platform.name, str(found_flags),
                         f"{outcome.best_score:.2f}", "-", "-", "-",
                         outcome.points_evaluated,
                         f"{100.0 * outcome.fraction_of_space:.1f}%"))
            continue
        # Exhaustive reference shares the engine, so the strategy's points
        # are cache hits and only the remainder of the space is measured.
        reference = Exhaustive(seed=args.seed).search(objective)
        optimum_flags = OptimizationFlags.from_index(reference.best_index)
        # Gap as a time ratio: how much slower is the found set than the
        # optimum?  Within 1% means gap <= 1.0.
        found_factor = 1.0 + outcome.best_score / 100.0
        optimum_factor = 1.0 + reference.best_score / 100.0
        gap = (optimum_factor / found_factor - 1.0) * 100.0
        worst_gap = max(worst_gap, gap)
        rows.append((platform.name, str(found_flags),
                     f"{outcome.best_score:.2f}", str(optimum_flags),
                     f"{reference.best_score:.2f}", f"{gap:.2f}",
                     outcome.points_evaluated,
                     f"{100.0 * outcome.fraction_of_space:.1f}%"))

    print(render_table(
        ["platform", "best found", "mean %", "exhaustive optimum", "opt %",
         "gap %", "evaluated", "of space"],
        rows,
        title=(f"tune: strategy={strategy.name} budget={args.budget} "
               f"seed={args.seed} shaders={len(corpus)}")))
    if not args.no_reference:
        print(f"\nworst-platform gap to exhaustive optimum: {worst_gap:.2f}%")
        budget_fraction = 100.0 * min(args.budget, SPACE_SIZE) / SPACE_SIZE
        print(f"search budget: {args.budget}/{SPACE_SIZE} points "
              f"({budget_fraction:.1f}% of the space)")
    engine.cache.save()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.list:
        rows = [(a.name, a.paper_ref, a.title) for a in all_artifacts()]
        print(render_table(["artifact", "paper", "title"], rows,
                           title="Registered paper artifacts"))
        return 0

    only = None
    if args.only:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
        known = {a.name for a in all_artifacts()}
        unknown = [name for name in only if name not in known]
        if unknown:
            raise SystemExit(
                f"error: unknown artifact(s) {', '.join(unknown)}; "
                f"see `repro report --list`")

    builder = ReportBuilder(config=StudyConfig(
        seed=args.seed, verbose=args.verbose, max_workers=args.jobs,
        cache_path=args.cache or None))
    if args.study:
        from pathlib import Path
        ignored = [flag for flag, on in
                   [("--max-shaders", args.max_shaders),
                    ("--seed", args.seed != 2018),
                    ("--jobs", args.jobs is not None),
                    ("--synth-count", args.synth_count)] if on]
        if ignored:
            print(f"note: {', '.join(ignored)} ignored with --study "
                  "(the saved study's corpus and seed are used)",
                  file=sys.stderr)
        try:
            study = StudyResult.from_json(Path(args.study).read_text())
        except OSError as exc:
            raise SystemExit(f"error: cannot read study {args.study!r}: "
                             f"{exc.strerror or exc}") from None
        except (KeyError, TypeError, ValueError) as exc:
            raise SystemExit(
                f"error: {args.study!r} is not a saved study JSON ({exc})") \
                from None
    else:
        corpus = _synth_corpus(args)
        study = builder.run_study(corpus)
    report = builder.build(study, only=only)
    paths = report.write(args.out_dir)

    engine = builder.engine
    print(f"rendered {len(report.sections)} artifacts over "
          f"{report.shader_count} shaders x {len(report.platforms)} "
          f"platforms (seed {report.seed})")
    print(f"engine work: {engine.frontend_count} front-ends, "
          f"{engine.compile_count} pass-pipeline compiles, "
          f"{engine.measure_count} measurements "
          f"(cache: {engine.cache.hits} hits / {engine.cache.misses} misses)")
    for kind, path in sorted(paths.items()):
        print(f"report.{kind}: {path}")
    return 0


def _add_corpus_args(p: argparse.ArgumentParser) -> None:
    """The corpus-selection flags shared by study/tune/report."""
    p.add_argument("--max-shaders", type=int, default=0,
                   help="truncate the corpus (0 = everything); truncation "
                        "is lazy, so huge synth corpora stay cheap")
    p.add_argument("--synth-count", type=int, default=0,
                   help="append N procedurally synthesized übershader "
                        "families (repro.corpus.synth)")
    p.add_argument("--synth-seed", type=int, default=None,
                   help="seed for the synthesized families (default: 2018); "
                        "changes their content, never their names/order")


def build_parser() -> argparse.ArgumentParser:
    """The complete ``repro`` argparse tree (one sub-parser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ISPASS 2018 shader compiler optimization reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("optimize", help="offline-optimize a GLSL file")
    p.add_argument("file", help="fragment shader path, or - for stdin")
    p.add_argument("--flags", default="default",
                   help="comma list / 'default' / 'all' / 'none'")
    p.add_argument("--es", action="store_true", help="emit the GLES dialect")
    p.set_defaults(fn=_cmd_optimize)

    p = sub.add_parser("variants", help="enumerate unique variants (Fig. 4c)")
    p.add_argument("file")
    p.set_defaults(fn=_cmd_variants)

    p = sub.add_parser("time", help="time a shader on the simulated GPUs")
    p.add_argument("file")
    p.add_argument("--flags", default="default")
    p.add_argument("--platform", default="all",
                   help="Intel|AMD|NVIDIA|ARM|Qualcomm|all")
    p.add_argument("--seed", type=int, default=2018)
    p.set_defaults(fn=_cmd_time)

    p = sub.add_parser("study", help="run the exhaustive corpus study")
    _add_corpus_args(p)
    p.add_argument("--seed", type=int, default=2018)
    p.add_argument("--output", default="", help="save study JSON here")
    p.add_argument("--jobs", type=int, default=None,
                   help="measurement worker threads "
                        "(default: $REPRO_JOBS or serial)")
    p.add_argument("--cache", default="",
                   help="persist the result cache to this file (.json = one "
                        "blob, .jsonl = append-only streaming store)")
    p.add_argument("--shard", default="",
                   help="run one shard, e.g. 1/3; merge the saved outputs "
                        "with `repro merge-results`")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="stream results: persist the cache and release "
                        "compiled variants every N cases (0 = off)")
    p.set_defaults(fn=_cmd_study)

    p = sub.add_parser(
        "merge-results",
        help="merge --shard study outputs (and caches) into one study")
    p.add_argument("shards", nargs="+",
                   help="the shard study JSON files, in any order")
    p.add_argument("--output", required=True,
                   help="write the merged StudyResult JSON here "
                        "(byte-identical to an unsharded run)")
    p.add_argument("--caches", nargs="*", default=[],
                   help="shard result-cache files to union")
    p.add_argument("--cache-out", default="",
                   help="write the merged result cache here")
    p.set_defaults(fn=_cmd_merge_results)

    p = sub.add_parser(
        "tune", help="search the flag space under an evaluation budget")
    p.add_argument("--strategy", default="genetic",
                   choices=sorted(STRATEGIES),
                   help="search strategy (default: genetic)")
    p.add_argument("--budget", type=int, default=64,
                   help="max unique flag combinations to evaluate")
    p.add_argument("--platform", default="all",
                   help="Intel|AMD|NVIDIA|ARM|Qualcomm|all")
    _add_corpus_args(p)
    p.add_argument("--seed", type=int, default=2018)
    p.add_argument("--cache", default="",
                   help="persist the result cache to this JSON file")
    p.add_argument("--no-reference", action="store_true",
                   help="skip the exhaustive-optimum comparison run")
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser(
        "report",
        help="regenerate the paper's figures/tables as report.md + "
             "report.html")
    p.add_argument("--list", action="store_true",
                   help="list registered artifacts and exit")
    p.add_argument("--only", default="",
                   help="comma-separated artifact names (default: all)")
    p.add_argument("--study", default="",
                   help="load a saved study JSON instead of running one")
    p.add_argument("--out-dir", default="reports",
                   help="directory for report.md / report.html "
                        "(default: reports/)")
    _add_corpus_args(p)
    p.add_argument("--seed", type=int, default=2018)
    p.add_argument("--jobs", type=int, default=None,
                   help="measurement worker processes "
                        "(default: $REPRO_JOBS or serial)")
    p.add_argument("--cache", default="",
                   help="persist the result cache to this JSON file; a warm "
                        "cache re-renders with zero compiles/measurements")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse *argv* (default: ``sys.argv``) and dispatch to the sub-command."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
