"""repro — reproduction of "A Cross-platform Evaluation of Graphics Shader
Compiler Optimization" (Crawford & O'Boyle, ISPASS 2018).

Public API tour:

- :mod:`repro.core` — the offline shader optimizer (GLSL -> IR -> passes ->
  GLSL) and the 256-combination variant machinery.
- :mod:`repro.passes` — the eight optimization flags from the paper.
- :mod:`repro.gpu` — five simulated GPU platforms (driver JIT + cost model).
- :mod:`repro.harness` — the isolated timing harness and exhaustive study.
- :mod:`repro.corpus` — the GFXBench-4.0-style synthetic shader corpus.
- :mod:`repro.analysis` — everything behind the paper's Figs. 3-9 / Table I.
- :mod:`repro.search` — budgeted flag-space search: strategies, evaluation
  engine, persistent result cache, and the parallel scheduler.
"""

from repro.core import (
    CompiledShader, ShaderCompiler, compile_shader, optimize_source,
    unique_variants,
)
from repro.passes import DEFAULT_LUNARGLASS, OptimizationFlags
from repro.gpu import Platform, all_platforms, platform_by_name
from repro.harness import (
    ShaderExecutionEnvironment, StudyConfig, StudyResult, run_study,
)
from repro.corpus import MOTIVATING_SHADER, default_corpus
from repro.search import (
    EvaluationEngine, ResultCache, Scheduler, SearchStrategy, make_strategy,
)

__version__ = "1.1.0"

__all__ = [
    "CompiledShader", "ShaderCompiler", "compile_shader", "optimize_source",
    "unique_variants",
    "OptimizationFlags", "DEFAULT_LUNARGLASS",
    "Platform", "all_platforms", "platform_by_name",
    "ShaderExecutionEnvironment", "StudyConfig", "StudyResult", "run_study",
    "MOTIVATING_SHADER", "default_corpus",
    "EvaluationEngine", "ResultCache", "Scheduler", "SearchStrategy",
    "make_strategy",
    "__version__",
]
