"""Fault-tolerant shard dispatch: one command for a many-shard study.

PR 4 made studies shardable (``repro study --shard I/N`` plus a
byte-identical ``repro merge-results``), but a human still launched every
shard, watched for failures, and re-ran stragglers by hand.  This package
closes that loop:

- :class:`~repro.dispatch.transport.Transport` — a small interface for
  *where* a shard runs: :class:`ThreadTransport` (in-process, shares the
  warm result cache) and :class:`SubprocessTransport` (launches
  ``repro study --shard I/N`` workers); the interface leaves room for an
  SSH transport later.
- :class:`~repro.dispatch.backoff.BackoffPolicy` — deterministic seeded
  exponential backoff with jitter and a bounded attempt budget.
- :class:`~repro.dispatch.dispatcher.ShardDispatcher` — supervises the
  in-flight shards (per-shard timeouts + heartbeat liveness), retries
  failures, checkpoints completed shards through the PR 4 streaming
  ``.jsonl`` store (shard identity = corpus content hash + shard index, so
  a killed dispatcher resumes exactly where it left off), and auto-merges
  via :func:`~repro.harness.results.merge_study_results` — or, when a
  shard exhausts its retries, emits a partial merge plus an explicit
  missing-shard manifest instead of pretending completeness.
- :mod:`~repro.dispatch.faults` — the fault-injection layer
  (``REPRO_FAULTS`` / ``--inject``) that makes workers crash before write,
  crash mid-write (torn tail), hang past their timeout, or corrupt their
  output, so every recovery path above is exercised deterministically in
  tests and CI rather than trusted.
"""

from repro.dispatch.backoff import BackoffPolicy
from repro.dispatch.dispatcher import (
    DispatchReport, ShardDispatcher, corpus_digest,
)
from repro.dispatch.faults import (
    FaultPlan, FaultSpec, InjectedFault, fault_from_env, write_study_output,
)
from repro.dispatch.transport import (
    ShardTask, SubprocessTransport, ThreadTransport, Transport,
)

__all__ = [
    "BackoffPolicy", "DispatchReport", "FaultPlan", "FaultSpec",
    "InjectedFault", "ShardDispatcher", "ShardTask", "SubprocessTransport",
    "ThreadTransport", "Transport", "corpus_digest", "fault_from_env",
    "write_study_output",
]
