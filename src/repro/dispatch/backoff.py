"""Deterministic retry backoff for shard dispatch.

Delays grow exponentially per attempt, capped, with *deterministic* jitter:
the jitter fraction is derived by hashing ``(seed, shard index, attempt)``,
so a given study seed always produces the same retry schedule — tests and
CI chaos runs replay identically, and concurrent retrying shards still
de-synchronize from each other (their indices differ).

The policy is pure: it only *computes* delays.  Sleeping belongs to the
dispatcher, which takes an injectable ``sleep``/``clock`` pair, so the unit
tests drive the whole schedule against a fake clock without ever sleeping.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with seeded jitter and a bounded attempt budget.

    ``max_attempts`` counts *launches*, not retries: 3 means one initial
    attempt plus at most two retries.  ``jitter`` is the fraction of the
    raw delay that the deterministic hash may subtract — 0.5 keeps every
    delay within [50%, 100%] of the exponential curve.
    """

    base: float = 0.5
    factor: float = 2.0
    cap: float = 30.0
    jitter: float = 0.5
    max_attempts: int = 3
    seed: int = 2018

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base < 0 or self.factor < 1 or self.cap < 0:
            raise ValueError(
                f"invalid backoff curve (base={self.base}, "
                f"factor={self.factor}, cap={self.cap})")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, shard_index: int, attempt: int) -> float:
        """Seconds to wait before relaunching *shard_index* after its
        *attempt*-th launch (1-based) failed.

        Pure and deterministic: the same ``(seed, shard, attempt)`` triple
        always yields the same delay.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        raw = min(self.cap, self.base * self.factor ** (attempt - 1))
        return raw * (1.0 - self.jitter * self._fraction(shard_index, attempt))

    def allows(self, attempt: int) -> bool:
        """Whether launching attempt number *attempt* is within budget."""
        return attempt <= self.max_attempts

    def schedule(self, shard_index: int) -> list:
        """Every retry delay for one shard, in order — handy in tests."""
        return [self.delay(shard_index, attempt)
                for attempt in range(1, self.max_attempts)]

    def _fraction(self, shard_index: int, attempt: int) -> float:
        token = f"{self.seed}:{shard_index}:{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64
