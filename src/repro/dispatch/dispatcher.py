"""The shard dispatcher: supervise, retry, checkpoint, resume, merge.

One :class:`ShardDispatcher` turns a sharded study into a single reliable
command.  It stripes the corpus into ``shard_count`` slices, launches them
through a :class:`~repro.dispatch.transport.Transport` (at most ``workers``
in flight), and supervises every launch:

- **liveness** — a per-shard wall-clock ``timeout`` plus a heartbeat check
  (workers touch a per-shard file after every case; a worker whose last
  beat is older than ``heartbeat_timeout`` is presumed hung and killed);
- **validation** — a worker exiting 0 proves nothing: the shard's output
  file must parse, and its :class:`~repro.harness.results.ShardInfo` must
  name this corpus (content hash), this shard index, and exactly the
  expected global case indices.  Torn tails and corrupt output fail here;
- **retry** — failed or hung shards relaunch under the deterministic
  seeded :class:`~repro.dispatch.backoff.BackoffPolicy` until its attempt
  budget is exhausted;
- **checkpointing** — every validated shard is recorded in the PR 4
  streaming ``.jsonl`` store (``checkpoints.jsonl``; key = corpus content
  hash + shard index, value = result path + file sha256).  A killed
  dispatcher re-validates checkpoints on restart and resumes exactly where
  it left off — a checkpoint whose file has since been damaged is
  discarded and re-run, never trusted;
- **completion** — all shards present merges byte-identically via
  :func:`~repro.harness.results.merge_study_results`.  A shard that
  exhausted its retries instead produces a *partial* merge plus an
  explicit missing-shard manifest (``manifest.json``), so a
  partially-failed run can never be mistaken for a complete one.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.dispatch.backoff import BackoffPolicy
from repro.dispatch.faults import FaultPlan
from repro.dispatch.transport import ShardHandle, ShardTask, Transport
from repro.harness.results import (
    ShaderCase, StudyResult, merge_study_results,
)
from repro.harness.study import ShardSpec, corpus_digest
from repro.search.cache import ResultCache, source_digest

#: Bump when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1


@dataclass
class _InFlight:
    """Book-keeping for one launched shard attempt."""

    handle: ShardHandle
    task: ShardTask
    attempt: int
    deadline: Optional[float]        # monotonic, None = no wall-clock limit
    started_wall: float              # wall clock, heartbeat baseline


@dataclass
class DispatchReport:
    """Everything one :meth:`ShardDispatcher.run` produced."""

    corpus_digest: str
    shard_count: int
    completed: Dict[int, Path] = field(default_factory=dict)
    failed: Dict[int, str] = field(default_factory=dict)
    attempts: Dict[int, int] = field(default_factory=dict)
    resumed: List[int] = field(default_factory=list)
    retries: int = 0
    interrupted: bool = False
    merged_path: Optional[Path] = None
    partial_path: Optional[Path] = None
    manifest_path: Optional[Path] = None

    @property
    def complete(self) -> bool:
        """True when every shard completed and the merge was written."""
        return (not self.failed and not self.interrupted
                and self.merged_path is not None)

    @property
    def missing_shards(self) -> List[int]:
        """Shard indices with no validated result, sorted."""
        return sorted(set(range(1, self.shard_count + 1))
                      - set(self.completed))


class ShardDispatcher:
    """Fan a sharded study out, survive failures, and merge the result.

    ``clock``/``sleep`` are injectable so tests drive the supervision loop
    without real waiting; ``events`` (when set) receives one dict per
    lifecycle transition — the hook the study service uses to stream
    dispatch progress to clients.
    """

    def __init__(self, cases: Sequence[ShaderCase], shard_count: int,
                 transport: Transport, state_dir: Union[str, Path],
                 seed: int = 2018,
                 policy: Optional[BackoffPolicy] = None,
                 timeout: Optional[float] = None,
                 heartbeat_timeout: Optional[float] = None,
                 workers: int = 2,
                 jobs: Optional[int] = None,
                 faults: Optional[FaultPlan] = None,
                 output: Optional[Union[str, Path]] = None,
                 fresh: bool = False,
                 poll_interval: float = 0.05,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 cancel_check: Optional[Callable[[], None]] = None,
                 events: Optional[Callable[[dict], None]] = None,
                 verbose: bool = False):
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.cases = list(cases)
        self.shard_count = int(shard_count)
        self.transport = transport
        self.state_dir = Path(state_dir)
        self.seed = seed
        self.policy = policy or BackoffPolicy(seed=seed)
        self.timeout = timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.workers = max(1, int(workers))
        self.jobs = jobs
        self.faults = faults or FaultPlan()
        self.output = Path(output) if output else None
        self.fresh = fresh
        self.poll_interval = poll_interval
        self.clock = clock
        self.sleep = sleep
        self.cancel_check = cancel_check
        self.events = events
        self.verbose = verbose
        self._stop_requested = False
        self.digest = corpus_digest(self.cases)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the supervision loop to wind down (signal-handler safe).

        In-flight shards are killed and left un-checkpointed, so a
        subsequent run resumes them; completed shards stay checkpointed.
        """
        self._stop_requested = True

    def run(self) -> DispatchReport:
        """Dispatch every shard to completion (or exhaustion); see module
        docstring.  Returns the :class:`DispatchReport`; the caller owns
        exit codes."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        report = DispatchReport(corpus_digest=self.digest,
                                shard_count=self.shard_count)
        store = ResultCache(self.state_dir / "checkpoints.jsonl")
        pending = deque()
        for index in range(1, self.shard_count + 1):
            report.attempts[index] = 0
            if not self.fresh and self._resume_checkpoint(store, index,
                                                          report):
                continue
            pending.append(index)

        inflight: Dict[int, _InFlight] = {}
        waiting: List[tuple] = []   # (due at, shard index)
        try:
            while pending or inflight or waiting:
                if self.cancel_check is not None:
                    self.cancel_check()
                if self._stop_requested:
                    break
                now = self.clock()
                for due, index in list(waiting):
                    if due <= now:
                        waiting.remove((due, index))
                        pending.append(index)
                while pending and len(inflight) < self.workers:
                    index = pending.popleft()
                    inflight[index] = self._launch(index, report)
                progressed = self._poll_inflight(inflight, waiting, store,
                                                 report)
                if (inflight or waiting) and not progressed:
                    self.sleep(self.poll_interval)
        finally:
            if inflight:        # stop request, cancel, or a raised error
                for index, flight in inflight.items():
                    flight.handle.kill()
                    self._emit(report, {"type": "shard", "shard": index,
                                        "state": "killed",
                                        "attempt": flight.attempt})
            if pending or inflight or waiting:
                report.interrupted = True
            store.flush()

        self._finalize(report)
        return report

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------

    def _launch(self, index: int, report: DispatchReport) -> _InFlight:
        report.attempts[index] += 1
        attempt = report.attempts[index]
        task = ShardTask(
            index=index, count=self.shard_count, seed=self.seed,
            output=self.state_dir / f"shard-{index:04d}.study.json",
            heartbeat=self.state_dir / "beats" / f"shard-{index:04d}.beat",
            log=self.state_dir / "logs" / f"shard-{index:04d}.{attempt}.log",
            fault=self.faults.fault_for(index, attempt),
            jobs=self.jobs)
        task.heartbeat.parent.mkdir(parents=True, exist_ok=True)
        # A stale beat from a previous attempt must not vouch for this one.
        try:
            task.heartbeat.unlink()
        except OSError:
            pass
        now = self.clock()
        self._emit(report, {"type": "shard", "shard": index,
                            "state": "launched", "attempt": attempt,
                            "transport": self.transport.name,
                            "fault": task.fault})
        self._log(f"shard {index}/{self.shard_count}: launch attempt "
                  f"{attempt}" + (f" (inject {task.fault})"
                                  if task.fault else ""))
        return _InFlight(
            handle=self.transport.launch(task), task=task, attempt=attempt,
            deadline=None if self.timeout is None else now + self.timeout,
            started_wall=time.time())

    def _poll_inflight(self, inflight: Dict[int, _InFlight],
                       waiting: List[tuple], store: ResultCache,
                       report: DispatchReport) -> bool:
        """One poll pass; returns True when any shard changed state."""
        progressed = False
        for index, flight in list(inflight.items()):
            code = flight.handle.poll()
            if code is None:
                error = self._liveness_error(flight)
                if error is None:
                    continue
                flight.handle.kill()
            elif code == 0:
                error = self._validate_and_checkpoint(index, flight, store,
                                                      report)
                if error is None:
                    del inflight[index]
                    progressed = True
                    continue
            else:
                detail = flight.handle.error_detail()
                error = f"worker exit code {code}" + (
                    f" ({detail})" if detail else "")
            del inflight[index]
            progressed = True
            self._handle_failure(index, flight.attempt, error, waiting,
                                 report)
        return progressed

    def _liveness_error(self, flight: _InFlight) -> Optional[str]:
        """Why a still-running shard must be presumed dead, or ``None``."""
        if flight.deadline is not None and self.clock() > flight.deadline:
            return f"timeout after {self.timeout:g}s"
        if self.heartbeat_timeout is not None:
            last_beat = flight.started_wall
            try:
                last_beat = max(last_beat,
                                flight.task.heartbeat.stat().st_mtime)
            except OSError:
                pass        # no beat yet; the launch time is the baseline
            stale = time.time() - last_beat
            if stale > self.heartbeat_timeout:
                return (f"no heartbeat for {stale:.1f}s "
                        f"(limit {self.heartbeat_timeout:g}s)")
        return None

    def _handle_failure(self, index: int, attempt: int, error: str,
                        waiting: List[tuple],
                        report: DispatchReport) -> None:
        if self.policy.allows(attempt + 1):
            delay = self.policy.delay(index, attempt)
            report.retries += 1
            waiting.append((self.clock() + delay, index))
            self._emit(report, {"type": "shard", "shard": index,
                                "state": "retry", "attempt": attempt,
                                "error": error, "delay": round(delay, 3)})
            self._log(f"shard {index}: attempt {attempt} failed ({error}); "
                      f"retrying in {delay:.2f}s")
        else:
            report.failed[index] = error
            self._emit(report, {"type": "shard", "shard": index,
                                "state": "exhausted", "attempt": attempt,
                                "error": error})
            self._log(f"shard {index}: attempt {attempt} failed ({error}); "
                      f"retry budget exhausted")

    # ------------------------------------------------------------------
    # Validation and checkpoints
    # ------------------------------------------------------------------

    def _checkpoint_key(self, index: int) -> str:
        return f"shard:{self.digest}:{index}"

    def _validate_shard_file(self, path: Path, index: int) -> str:
        """Validate one shard output file; returns its content sha256.

        Raises ``ValueError`` naming what is wrong — parse failures (torn
        or corrupt output), mismatched shard identity, or wrong coverage.
        """
        try:
            text = path.read_text()
        except OSError as exc:
            raise ValueError(f"missing output {path.name}: "
                             f"{exc.strerror or exc}") from None
        try:
            result = StudyResult.from_json(text)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"invalid shard output {path.name}: {exc}") from None
        shard = result.shard
        if shard is None:
            raise ValueError(f"{path.name} has no shard metadata")
        if (shard.index, shard.count) != (index, self.shard_count):
            raise ValueError(
                f"{path.name} is shard {shard.index}/{shard.count}, "
                f"expected {index}/{self.shard_count}")
        if shard.corpus_digest != self.digest:
            raise ValueError(
                f"{path.name} covers corpus {shard.corpus_digest[:12]}…, "
                f"expected {self.digest[:12]}…")
        expected = ShardSpec(index, self.shard_count).select(len(self.cases))
        if list(shard.case_indices) != expected:
            raise ValueError(
                f"{path.name} covers case indices {shard.case_indices}, "
                f"expected {expected}")
        if result.seed != self.seed:
            raise ValueError(f"{path.name} ran under seed {result.seed}, "
                             f"expected {self.seed}")
        return source_digest(text)

    def _validate_and_checkpoint(self, index: int, flight: _InFlight,
                                 store: ResultCache,
                                 report: DispatchReport) -> Optional[str]:
        """Validate a finished shard; checkpoint it or return the error."""
        try:
            sha = self._validate_shard_file(flight.task.output, index)
        except ValueError as exc:
            return str(exc)
        # The streaming store appends this line immediately — the durable
        # checkpoint a killed dispatcher resumes from.
        store.put(self._checkpoint_key(index),
                  {"path": str(flight.task.output), "sha256": sha,
                   "attempts": report.attempts[index]})
        report.completed[index] = flight.task.output
        self._emit(report, {"type": "shard", "shard": index, "state": "done",
                            "attempt": flight.attempt,
                            "of": self.shard_count,
                            "completed": len(report.completed)})
        self._log(f"shard {index}: done "
                  f"({len(report.completed)}/{self.shard_count})")
        return None

    def _resume_checkpoint(self, store: ResultCache, index: int,
                           report: DispatchReport) -> bool:
        """Restore shard *index* from its checkpoint, if still valid."""
        entry = store.get(self._checkpoint_key(index))
        if not isinstance(entry, dict) or "path" not in entry:
            return False
        path = Path(str(entry["path"]))
        try:
            sha = self._validate_shard_file(path, index)
        except ValueError as exc:
            self._log(f"shard {index}: discarding stale checkpoint ({exc})")
            return False
        if sha != entry.get("sha256"):
            self._log(f"shard {index}: discarding checkpoint "
                      f"(result file changed since it was recorded)")
            return False
        report.completed[index] = path
        report.attempts[index] = int(entry.get("attempts") or 0)
        report.resumed.append(index)
        self._emit(report, {"type": "shard", "shard": index,
                            "state": "resumed",
                            "completed": len(report.completed)})
        self._log(f"shard {index}: resumed from checkpoint")
        return True

    # ------------------------------------------------------------------
    # Completion: merge, partial merge, manifest
    # ------------------------------------------------------------------

    def _finalize(self, report: DispatchReport) -> None:
        parts = [StudyResult.from_json(report.completed[i].read_text())
                 for i in sorted(report.completed)]
        if (not report.failed
                and len(report.completed) == self.shard_count):
            report.interrupted = False      # everything landed anyway
            merged = merge_study_results(parts)
            report.merged_path = self.output or (
                self.state_dir / "study.json")
            report.merged_path.parent.mkdir(parents=True, exist_ok=True)
            report.merged_path.write_text(merged.to_json())
            self._log(f"merged {self.shard_count} shards -> "
                      f"{len(merged.shaders)} shaders: {report.merged_path}")
        elif parts:
            partial = merge_study_results(parts, require_complete=False)
            report.partial_path = self.state_dir / "partial.study.json"
            report.partial_path.write_text(partial.to_json())
        report.manifest_path = self.state_dir / "manifest.json"
        report.manifest_path.write_text(json.dumps(
            self._manifest(report), indent=2, sort_keys=True) + "\n")
        self._emit(report, {
            "type": "dispatch", "state": (
                "complete" if report.complete
                else "interrupted" if report.interrupted else "incomplete"),
            "completed": len(report.completed),
            "missing": report.missing_shards, "retries": report.retries})

    def _manifest(self, report: DispatchReport) -> dict:
        """The explicit completeness record written beside the results."""
        return {
            "kind": "repro-dispatch-manifest",
            "version": MANIFEST_VERSION,
            "corpus_digest": self.digest,
            "corpus_cases": len(self.cases),
            "shard_count": self.shard_count,
            "seed": self.seed,
            "transport": self.transport.name,
            "complete": report.complete,
            "interrupted": report.interrupted,
            "retries": report.retries,
            "completed": [
                {"shard": index, "path": str(report.completed[index]),
                 "attempts": report.attempts[index]}
                for index in sorted(report.completed)],
            "missing": [
                {"shard": index,
                 "attempts": report.attempts.get(index, 0),
                 "error": report.failed.get(
                     index, "interrupted" if report.interrupted
                     else "not dispatched")}
                for index in report.missing_shards],
            "merged": None if report.merged_path is None
            else str(report.merged_path),
            "partial": None if report.partial_path is None
            else str(report.partial_path),
        }

    # ------------------------------------------------------------------
    # Reporting plumbing
    # ------------------------------------------------------------------

    def _emit(self, report: DispatchReport, event: dict) -> None:
        if self.events is not None:
            self.events(event)

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[dispatch] {message}")
