"""Where a shard runs: the ``Transport`` interface and two implementations.

A transport turns one :class:`ShardTask` into a running worker and hands
back a :class:`ShardHandle` the dispatcher can poll, kill, and interrogate.
The dispatcher never cares *where* the work happens:

- :class:`ThreadTransport` runs ``run_study`` in an in-process daemon
  thread.  Workers share one :class:`~repro.search.cache.ResultCache`
  (when given one), so a retried shard replays its already-measured work
  from the warm cache.  "Kill" is cooperative: the engine's per-thread
  cancel hook aborts the shard at the next compile/measure boundary.
- :class:`SubprocessTransport` launches ``repro study --shard I/N``
  processes — real process isolation, real ``SIGKILL``, and the transport
  the CI chaos job uses.  Worker stderr/stdout land in a per-launch log
  file for post-mortems.

Both write the shard's :class:`~repro.harness.results.StudyResult` JSON to
``task.output`` through :func:`~repro.dispatch.faults.write_study_output`,
which is where injected faults strike.  The interface deliberately leaves
room for an SSH transport later: nothing in the dispatcher assumes the
worker shares a filesystem beyond the output/heartbeat paths it is given.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.corpus import CorpusSpec
from repro.dispatch.faults import (
    InjectedFault, WORKER_ENV_VAR, write_study_output,
)
from repro.gpu.platform import Platform
from repro.harness.results import ShaderCase
from repro.harness.study import ShardSpec, StudyConfig, run_study
from repro.search.cache import ResultCache
from repro.search.engine import EvaluationEngine

#: Exit code of a thread worker reaped after a kill request.
ABORT_EXIT_CODE = 71


class ShardAborted(Exception):
    """Raised inside a thread worker when its handle was killed."""


@dataclass(frozen=True)
class ShardTask:
    """One shard launch: everything a worker needs to run and report."""

    index: int                        # 1-based shard number
    count: int                        # total shard count
    seed: int                         # study measurement seed
    output: Path                      # where the StudyResult JSON lands
    heartbeat: Optional[Path] = None  # touched per case for liveness checks
    log: Optional[Path] = None        # worker stdout/stderr (subprocess)
    fault: Optional[str] = None       # injected fault kind, if any
    jobs: Optional[int] = None        # per-shard worker processes

    @property
    def shard(self) -> ShardSpec:
        """The task's slice of the corpus as a :class:`ShardSpec`."""
        return ShardSpec(index=self.index, count=self.count)


class ShardHandle:
    """A launched worker the dispatcher can poll, kill, and describe."""

    def poll(self) -> Optional[int]:
        """The worker's exit code, or ``None`` while it is still running."""
        raise NotImplementedError

    def kill(self) -> None:
        """Stop the worker (idempotent; best effort)."""
        raise NotImplementedError

    def error_detail(self) -> str:
        """A short human-readable failure context ('' when none)."""
        return ""


class Transport:
    """Launches shard workers somewhere; see the module docstring."""

    #: short name used in logs and the dispatch manifest.
    name = "abstract"

    def launch(self, task: ShardTask) -> ShardHandle:
        """Start one worker for *task* and return its handle."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# In-process threads
# ---------------------------------------------------------------------------


class _ThreadHandle(ShardHandle):
    """Handle over a daemon worker thread (cooperative kill)."""

    def __init__(self) -> None:
        self.kill_event = threading.Event()
        self._done = threading.Event()
        self._exit_code: Optional[int] = None
        self._error = ""

    def finish(self, exit_code: int, error: str = "") -> None:
        self._exit_code = exit_code
        self._error = error
        self._done.set()

    def poll(self) -> Optional[int]:
        return self._exit_code if self._done.is_set() else None

    def kill(self) -> None:
        self.kill_event.set()

    def error_detail(self) -> str:
        return self._error


class ThreadTransport(Transport):
    """Run shards as in-process threads over a shared warm cache."""

    name = "thread"

    def __init__(self, cases: Sequence[ShaderCase],
                 platforms: Optional[Sequence[Platform]] = None,
                 cache: Optional[ResultCache] = None):
        self.cases = list(cases)
        self.platforms = list(platforms) if platforms else None
        self.cache = cache

    def launch(self, task: ShardTask) -> ShardHandle:
        handle = _ThreadHandle()
        thread = threading.Thread(
            target=self._run, args=(task, handle), daemon=True,
            name=f"repro-dispatch-shard-{task.index}")
        thread.start()
        return handle

    def _run(self, task: ShardTask, handle: _ThreadHandle) -> None:
        try:
            engine = EvaluationEngine(
                platforms=self.platforms, seed=task.seed,
                cache=self.cache if self.cache is not None else ResultCache())

            def check() -> None:
                if handle.kill_event.is_set():
                    raise ShardAborted(f"shard {task.shard} killed")

            # Thread-local install: concurrent shard threads sharing one
            # engine each abort only themselves.
            engine.set_cancel_check(check)
            config = StudyConfig(
                platforms=self.platforms, seed=task.seed, shard=task.shard,
                heartbeat_path=(str(task.heartbeat)
                                if task.heartbeat else None))
            study = run_study(self.cases, config, engine=engine)
            check()
            write_study_output(task.output, study.to_json(),
                               fault=task.fault,
                               cancel_event=handle.kill_event)
        except InjectedFault as exc:
            handle.finish(70, str(exc))
        except ShardAborted as exc:
            handle.finish(ABORT_EXIT_CODE, str(exc))
        except Exception as exc:  # noqa: BLE001 — worker errors are data
            handle.finish(1, f"{type(exc).__name__}: {exc}")
        else:
            handle.finish(0)


# ---------------------------------------------------------------------------
# Subprocess workers
# ---------------------------------------------------------------------------


class _ProcessHandle(ShardHandle):
    """Handle over a ``repro study`` child process."""

    def __init__(self, proc: "subprocess.Popen[bytes]",
                 log: Optional[Path]) -> None:
        self.proc = proc
        self.log = log

    def poll(self) -> Optional[int]:
        return self.proc.poll()

    def kill(self) -> None:
        try:
            self.proc.kill()
            self.proc.wait(timeout=5.0)
        except (OSError, subprocess.TimeoutExpired):
            pass

    def error_detail(self) -> str:
        if self.log is None:
            return ""
        try:
            lines = self.log.read_text().strip().splitlines()
        except OSError:
            return ""
        return lines[-1] if lines else ""


class SubprocessTransport(Transport):
    """Launch each shard as a ``repro study --shard I/N`` child process.

    The corpus travels as its :class:`~repro.corpus.CorpusSpec` parameters
    (the corpus content is a pure function of those), so the child rebuilds
    the identical corpus and the dispatcher's content-hash validation of
    the returned :class:`~repro.harness.results.ShardInfo` proves it did.
    """

    name = "subprocess"

    def __init__(self, corpus_spec: CorpusSpec,
                 python: Optional[str] = None):
        self.corpus_spec = corpus_spec
        self.python = python or sys.executable

    def argv_for(self, task: ShardTask) -> List[str]:
        """The child command line for *task* (exposed for tests/logs)."""
        argv = [self.python, "-m", "repro", "study",
                "--shard", str(task.shard),
                "--seed", str(task.seed),
                "--output", str(task.output)]
        argv += self.corpus_spec.to_cli_args()
        if task.heartbeat is not None:
            argv += ["--heartbeat", str(task.heartbeat)]
        if task.jobs and task.jobs > 1:
            argv += ["--jobs", str(task.jobs)]
        return argv

    def launch(self, task: ShardTask) -> ShardHandle:
        env = dict(os.environ)
        env.pop(WORKER_ENV_VAR, None)
        if task.fault:
            env[WORKER_ENV_VAR] = task.fault
        # Children must import repro even when it is not installed (tests
        # run from a source tree via PYTHONPATH) — prepend our own package
        # root rather than assuming the parent's environment carries it.
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (package_root + os.pathsep + existing
                                 if existing else package_root)
        if task.log is not None:
            task.log.parent.mkdir(parents=True, exist_ok=True)
            log_handle = open(task.log, "ab")
        else:
            log_handle = open(os.devnull, "ab")
        try:
            proc = subprocess.Popen(self.argv_for(task), stdout=log_handle,
                                    stderr=subprocess.STDOUT, env=env)
        finally:
            log_handle.close()      # Popen dup'd the descriptor
        return _ProcessHandle(proc, task.log)
