"""Deterministic fault injection for dispatch workers.

Every recovery path in the dispatcher — retry after a crash, torn-tail
tolerance, heartbeat-based hang detection, corrupt-output rejection — is
exercised by *injecting* the failure rather than trusting that the code
would survive one.  A :class:`FaultPlan` (parsed from ``--inject`` or the
``REPRO_FAULTS`` environment variable) maps ``(shard, attempt)`` pairs to
one of four fault kinds:

``crash``
    die before writing any output (a worker killed mid-shard);
``torn``
    write roughly half the output bytes, fsync, then die (a torn tail);
``corrupt``
    write the full output with a garbage tail and exit *successfully*
    (silent corruption — only output validation can catch it);
``hang``
    stop making progress before the write (heartbeats cease; only the
    dispatcher's timeout/heartbeat supervision can recover).

The dispatcher resolves the plan per launch and hands each worker a single
directive: subprocess workers receive it via the ``REPRO_FAULT`` (singular)
environment variable and honor it inside ``repro study``'s output write;
in-process thread workers receive it as an argument, where "die" becomes
raising :class:`InjectedFault` and "hang" waits cooperatively on the
handle's kill event (an in-process worker must never ``os._exit`` the
dispatcher along with itself).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Tuple, Union

#: Environment variable the *dispatcher* reads: a full fault plan.
PLAN_ENV_VAR = "REPRO_FAULTS"

#: Environment variable a *worker* reads: one directive for one launch.
WORKER_ENV_VAR = "REPRO_FAULT"

#: The injectable fault kinds, in escalating order of subtlety.
FAULT_KINDS = ("crash", "torn", "corrupt", "hang")

#: Exit code of a worker that died on an injected (process-fatal) fault.
FAULT_EXIT_CODE = 70


class InjectedFault(RuntimeError):
    """Raised by an injected fault in an in-process (thread) worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *kind* strikes *shard* on *attempt*.

    ``attempt`` is 1-based; ``None`` means every attempt (which exhausts
    the retry budget — the way to exercise the missing-shard path).
    """

    shard: int
    kind: str
    attempt: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {', '.join(FAULT_KINDS)}")
        if self.shard < 1:
            raise ValueError(f"fault shard index is 1-based, got {self.shard}")
        if self.attempt is not None and self.attempt < 1:
            raise ValueError(
                f"fault attempt is 1-based, got {self.attempt}")

    def matches(self, shard: int, attempt: int) -> bool:
        """Whether this fault strikes the given launch."""
        return self.shard == shard and self.attempt in (None, attempt)

    def __str__(self) -> str:
        tail = "@*" if self.attempt is None else (
            "" if self.attempt == 1 else f"@{self.attempt}")
        return f"{self.shard}:{self.kind}{tail}"


class FaultPlan:
    """An ordered set of :class:`FaultSpec` resolved per launch.

    The text form is a comma list of ``SHARD:KIND[@ATTEMPT]`` items, e.g.
    ``"1:crash,2:hang@1,3:torn@2,4:corrupt@*"`` — ``@1`` is the default
    (fault the first attempt only, so the retry succeeds), ``@*`` faults
    every attempt.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``--inject`` / ``REPRO_FAULTS`` text form."""
        specs = []
        for item in (text or "").split(","):
            item = item.strip()
            if not item:
                continue
            head, _, attempt_text = item.partition("@")
            shard_text, sep, kind = head.partition(":")
            try:
                if not sep:
                    raise ValueError
                shard = int(shard_text)
                attempt: Optional[int]
                if not attempt_text:
                    attempt = 1
                elif attempt_text == "*":
                    attempt = None
                else:
                    attempt = int(attempt_text)
            except ValueError:
                raise ValueError(
                    f"fault spec must look like 'SHARD:KIND[@ATTEMPT]' "
                    f"(e.g. '2:crash@1'), got {item!r}") from None
            specs.append(FaultSpec(shard=shard, kind=kind.strip(),
                                   attempt=attempt))
        return cls(specs)

    @classmethod
    def from_env(cls, environ=os.environ) -> "FaultPlan":
        """The plan named by ``REPRO_FAULTS`` (empty plan when unset)."""
        return cls.parse(environ.get(PLAN_ENV_VAR, ""))

    def fault_for(self, shard: int, attempt: int) -> Optional[str]:
        """The fault kind striking this launch, or ``None`` for a clean run."""
        for spec in self.specs:
            if spec.matches(shard, attempt):
                return spec.kind
        return None

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __str__(self) -> str:
        return ",".join(str(spec) for spec in self.specs)


def fault_from_env(environ=os.environ) -> Optional[str]:
    """The single worker directive in ``REPRO_FAULT``, validated.

    Injection is a test instrument — an unknown kind is a loud error, not
    something to shrug off and silently run clean.
    """
    kind = (environ.get(WORKER_ENV_VAR) or "").strip()
    if not kind:
        return None
    if kind not in FAULT_KINDS:
        raise ValueError(f"{WORKER_ENV_VAR}={kind!r} is not one of "
                         f"{', '.join(FAULT_KINDS)}")
    return kind


def write_study_output(path: Union[str, Path], text: str,
                       fault: Optional[str] = None,
                       cancel_event: Optional[threading.Event] = None,
                       hang_seconds: float = 3600.0) -> None:
    """Write a worker's study JSON to *path*, honoring an injected fault.

    With ``fault=None`` this is a plain write — the production path is
    byte-identical to what ``repro study --output`` always did.  With a
    fault, the worker misbehaves exactly as documented in the module
    docstring.  ``cancel_event`` selects thread mode: "die" raises
    :class:`InjectedFault` instead of ``os._exit``, and "hang" waits on the
    event so an abandoned in-process worker can be woken and reaped.
    """
    path = Path(path)
    if fault is None:
        path.write_text(text)
        return
    if fault == "crash":
        _die(cancel_event, "injected crash before write")
    elif fault == "hang":
        _hang(cancel_event, hang_seconds)
        raise InjectedFault("injected hang was cancelled")
    elif fault == "torn":
        torn = text[:max(1, len(text) // 2)]
        with open(path, "w") as handle:
            handle.write(torn)
            handle.flush()
            os.fsync(handle.fileno())
        _die(cancel_event, "injected crash mid-write (torn tail)")
    elif fault == "corrupt":
        tail = "##corrupted-by-injected-fault##"
        path.write_text(text[:-len(tail)] + tail)
        # Exit "successfully": silent corruption is exactly the failure
        # mode that only the dispatcher's output validation can catch.
    else:
        raise ValueError(f"unknown fault kind {fault!r}")


def _die(cancel_event: Optional[threading.Event], reason: str) -> None:
    """Process mode: hard-exit (no atexit, no flush — a real crash).
    Thread mode: raise, so only the worker dies, not the dispatcher."""
    if cancel_event is None:
        os._exit(FAULT_EXIT_CODE)
    raise InjectedFault(reason)


def _hang(cancel_event: Optional[threading.Event], seconds: float) -> None:
    """Stop making progress.  Process mode sleeps until the dispatcher's
    timeout/heartbeat supervision kills the worker; thread mode waits on
    the kill event so the dispatcher can reap the thread."""
    if cancel_event is None:
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:     # pragma: no cover — killed
            time.sleep(0.2)
        os._exit(FAULT_EXIT_CODE)              # pragma: no cover
    cancel_event.wait(seconds)
