"""End-to-end source-to-source pipeline (the LunarGlass role).

``optimize_source(source, flags)`` is the paper's offline optimizer: GLSL in,
transformed GLSL out, with compilation artifacts included.
``unique_variants(source)`` runs all 256 flag combinations and deduplicates
the emitted text — Fig. 4c's "unique shader variants" statistic.  A
:class:`ShaderCompiler` caches the parse+lower work so the 256 combinations
run off cheap IR clones; ``all_variants`` walks the shared-prefix
compilation trie (:mod:`repro.core.trie`) by default, so each pass runs
once per distinct reachable IR state rather than once per combination
(``REPRO_COMPILE=naive`` restores the brute-force loop for A/B testing).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.glsl import parse_shader, preprocess
from repro.ir import emit_glsl, lower_shader, promote_to_ssa
from repro.ir.clone import clone_module
from repro.ir.module import Module
from repro.passes import OptimizationFlags, run_passes

#: Environment switch for the variant-explosion strategy: ``trie`` (default,
#: per-shader shared-prefix decision tree), ``corpus`` (the same walk routed
#: through the corpus-global state trie, :mod:`repro.core.corpus_trie`, which
#: also reroutes the vendor JIT pipelines), or ``naive`` (256 independent
#: pipeline runs, kept for A/B equivalence testing and benchmarking).
COMPILE_MODE_ENV = "REPRO_COMPILE"
_COMPILE_MODES = ("trie", "naive", "corpus")


def compile_mode(explicit: Optional[str] = None) -> str:
    """Resolve the variant-compilation mode: explicit arg > env > trie."""
    mode = explicit or os.environ.get(COMPILE_MODE_ENV) or "trie"
    if mode not in _COMPILE_MODES:
        raise ValueError(
            f"unknown compile mode {mode!r}; expected one of {_COMPILE_MODES}")
    return mode


@dataclass
class CompiledShader:
    """A shader taken through the pipeline under one flag combination."""

    source: str
    flags: OptimizationFlags
    module: Module
    output: str
    pass_stats: Dict[str, int] = field(default_factory=dict)


class ShaderCompiler:
    """Front-end work shared across flag combinations of one shader."""

    def __init__(self, source: str, defines: Optional[Dict[str, str]] = None):
        self.source = source
        pp = preprocess(source, defines)
        self.version = pp.version
        shader = parse_shader(pp.text)
        self._module = lower_shader(shader, version=pp.version)
        promote_to_ssa(self._module.function)

    def compile(self, flags: OptimizationFlags, es: bool = False) -> CompiledShader:
        module = clone_module(self._module)
        stats = run_passes(module, flags)
        output = emit_glsl(module, es=es)
        return CompiledShader(source=self.source, flags=flags, module=module,
                              output=output, pass_stats=stats)

    def all_variants(self, es: bool = False, mode: Optional[str] = None,
                     trie: Optional["CorpusTrie"] = None) -> "VariantSet":
        """Compile all 256 combinations and deduplicate the emitted text.

        The default ``trie`` mode walks the shared-prefix compilation trie
        (:class:`repro.core.trie.VariantTrie`): one pass application per
        distinct reachable IR state instead of a full pipeline run per
        combination, with byte-identical output.  ``mode="corpus"`` (or
        ``REPRO_COMPILE=corpus``) runs the same walk through the
        corpus-global state trie (*trie*, defaulting to the process-wide
        :func:`repro.core.corpus_trie.shared_corpus_trie`), sharing states
        and emissions with every other shader and vendor pipeline in the
        study.  ``mode="naive"`` forces the brute-force path.
        """
        resolved = compile_mode(mode)
        if resolved == "naive":
            by_text: Dict[str, List[OptimizationFlags]] = {}
            index_to_text: Dict[int, str] = {}
            for flags in OptimizationFlags.all_combinations():
                compiled = self.compile(flags, es=es)
                by_text.setdefault(compiled.output, []).append(flags)
                index_to_text[flags.index] = compiled.output
            return VariantSet(by_text, index_to_text)
        if resolved == "corpus":
            from repro.core.corpus_trie import shared_corpus_trie

            if trie is None:  # not `or`: an empty trie is len()-falsy
                trie = shared_corpus_trie()
            index_to_text = trie.compile_variants(self._module, es=es)
        else:
            from repro.core.trie import VariantTrie

            index_to_text = VariantTrie(self._module, es=es).compile()
        by_text = {}
        for index in range(256):
            text = index_to_text[index]
            by_text.setdefault(text, []).append(
                OptimizationFlags.from_index(index))
        return VariantSet(by_text, index_to_text)


@dataclass
class VariantSet:
    """Distinct emitted texts -> the flag combinations that produce them."""

    by_text: Dict[str, List[OptimizationFlags]]
    #: flag index -> emitted text, for O(1) lookups (``text_for`` is on the
    #: hot path of every per-combination analysis, 256x per shader).
    index_to_text: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.index_to_text:
            for text, combos in self.by_text.items():
                for flags in combos:
                    self.index_to_text[flags.index] = text

    @property
    def unique_count(self) -> int:
        return len(self.by_text)

    def text_for(self, flags: OptimizationFlags) -> str:
        try:
            return self.index_to_text[flags.index]
        except KeyError:
            raise KeyError(f"flags {flags} not found in variant set") from None

    def items(self):
        return self.by_text.items()


def compile_shader(source: str, flags: Optional[OptimizationFlags] = None,
                   defines: Optional[Dict[str, str]] = None,
                   es: bool = False) -> CompiledShader:
    """Preprocess, parse, lower, optimize, and re-emit *source*."""
    flags = flags or OptimizationFlags.none()
    return ShaderCompiler(source, defines).compile(flags, es=es)


def optimize_source(source: str, flags: OptimizationFlags,
                    defines: Optional[Dict[str, str]] = None,
                    es: bool = False) -> str:
    """Source-to-source optimization; the paper's core tool invocation."""
    return compile_shader(source, flags, defines, es).output


def unique_variants(source: str, defines: Optional[Dict[str, str]] = None,
                    es: bool = False) -> Dict[str, List[OptimizationFlags]]:
    """Map each distinct emitted text to the flag combinations producing it."""
    return ShaderCompiler(source, defines).all_variants(es=es).by_text
