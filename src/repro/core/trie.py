"""Shared-prefix compilation trie over the 256-combination flag space.

The naive variant explosion pays for every combination independently: 256
``clone_module`` -> full ``run_passes`` -> ``emit_glsl`` runs per shader,
even though ``PASS_ORDER`` is fixed and a disabled flag is a literal no-op
in the pipeline loop — most combinations share long identical pass
prefixes.  This module walks the flag space as an 8-level binary decision
tree instead:

* the **"flag disabled" edge** reuses the parent IR state verbatim (no
  clone, no work — siblings that diverge clone first, so sharing is safe);
* the **"flag enabled" edge** clones once (name-preserving, see
  :mod:`repro.ir.clone`) and applies exactly one pass + cleanup via
  :func:`repro.passes.manager.apply_flag_pass`.

States are keyed by the canonical IR fingerprint
(:mod:`repro.ir.fingerprint`): whenever two differently-reached states
converge to identical IR — a pass was a no-op, or different prefixes
produced the same code — they merge mid-walk and the whole subtree below
them is shared.  ``emit_glsl`` then runs once per distinct *final* state
instead of 256 times.

The arithmetic: a full binary tree applies at most 2^0+...+2^7 = 255 passes
(vs. the naive sum of popcounts, 256 * 4 = 1024) even with zero
convergence; in practice most passes don't fire on most shaders, so the
state count per level stays far below 2^level and the walk does a few dozen
pass runs and a handful of emissions.  The result is byte-identical to the
naive path (asserted by tests/test_compile_trie.py) because every leaf's
lineage applies exactly the same operation sequence the naive path would,
with only structure-and-name-preserving clones and fingerprint-sound merges
in between.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.ir import emit_glsl
from repro.ir.clone import clone_module
from repro.ir.fingerprint import fingerprint_module
from repro.ir.module import Module
from repro.passes import OptimizationFlags
from repro.passes.manager import PASS_ORDER, apply_flag_pass, run_cleanup

#: Bit position of each flag pass within a trie path bitmask (the *execution*
#: order, distinct from the flag-index bit order in ``ALL_FLAG_NAMES``).
_PASS_BIT: Dict[str, int] = {name: bit for bit, name in enumerate(PASS_ORDER)}


def _pass_subset(index: int) -> int:
    """Map a flag-combination index to its enabled-pass bitmask in
    ``PASS_ORDER`` bit positions."""
    flags = OptimizationFlags.from_index(index)
    subset = 0
    for name, bit in _PASS_BIT.items():
        if getattr(flags, name):
            subset |= 1 << bit
    return subset


@dataclass
class TrieStats:
    """Work counters, exposed so tests and benchmarks can assert sharing."""

    clones: int = 0
    pass_runs: int = 0
    emits: int = 0
    merges: int = 0
    #: distinct states alive at each of the 9 levels (root + one per pass).
    level_states: list = field(default_factory=list)


class VariantTrie:
    """Compile all 256 flag combinations of one front-end module by walking
    the shared-prefix decision tree."""

    def __init__(self, base_module: Module, es: bool = False):
        self._base = base_module
        self.es = es
        self.stats = TrieStats()

    def compile(self) -> Dict[int, str]:
        """Emitted text for every flag index 0..255 (deduplicated work,
        byte-identical results to the naive per-combination path)."""
        root = clone_module(self._base)
        run_cleanup(root.function)
        root_fp = fingerprint_module(root)
        self.stats.clones += 1

        # fingerprint -> module for states alive at the current level, and
        # enabled-pass bitmask (over levels walked so far) -> fingerprint.
        states: Dict[str, Module] = {root_fp: root}
        subset_to_fp: Dict[int, str] = {0: root_fp}
        self.stats.level_states.append(len(states))

        for bit, name in enumerate(PASS_ORDER):
            child_fp: Dict[str, str] = {}
            next_states: Dict[str, Module] = dict(states)
            for parent_fp, module in states.items():
                child = clone_module(module, preserve_names=True)
                apply_flag_pass(child, name)
                self.stats.clones += 1
                self.stats.pass_runs += 1
                fp = fingerprint_module(child)
                child_fp[parent_fp] = fp
                if fp in next_states:
                    self.stats.merges += 1
                else:
                    next_states[fp] = child
            next_subsets: Dict[int, str] = {}
            for subset, fp in subset_to_fp.items():
                next_subsets[subset] = fp
                next_subsets[subset | (1 << bit)] = child_fp[fp]
            subset_to_fp = next_subsets
            live = set(subset_to_fp.values())
            states = {fp: module for fp, module in next_states.items()
                      if fp in live}
            self.stats.level_states.append(len(states))

        texts: Dict[str, str] = {}
        for fp, module in states.items():
            texts[fp] = emit_glsl(module, es=self.es)
            self.stats.emits += 1

        return {index: texts[subset_to_fp[_pass_subset(index)]]
                for index in range(256)}
