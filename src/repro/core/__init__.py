"""The paper's primary contribution: the offline shader optimization pipeline
(GLSL -> IR -> flag-controlled passes -> GLSL) and the exhaustive flag-space
exploration built on top of it."""

from repro.core.pipeline import (
    CompiledShader, ShaderCompiler, VariantSet, compile_shader,
    optimize_source, unique_variants,
)

__all__ = [
    "CompiledShader", "ShaderCompiler", "VariantSet", "compile_shader",
    "optimize_source", "unique_variants",
]
