"""The paper's primary contribution: the offline shader optimization pipeline
(GLSL -> IR -> flag-controlled passes -> GLSL) and the exhaustive flag-space
exploration built on top of it."""

from repro.core.pipeline import (
    COMPILE_MODE_ENV, CompiledShader, ShaderCompiler, VariantSet,
    compile_mode, compile_shader, optimize_source, unique_variants,
)
from repro.core.trie import TrieStats, VariantTrie

__all__ = [
    "CompiledShader", "ShaderCompiler", "VariantSet", "compile_shader",
    "optimize_source", "unique_variants",
    "COMPILE_MODE_ENV", "compile_mode", "TrieStats", "VariantTrie",
]
