"""The paper's primary contribution: the offline shader optimization pipeline
(GLSL -> IR -> flag-controlled passes -> GLSL) and the exhaustive flag-space
exploration built on top of it."""

from repro.core.corpus_trie import (
    CorpusTrie, CorpusTrieStats, TrieState, reset_shared_corpus_trie,
    shared_corpus_trie,
)
from repro.core.pipeline import (
    COMPILE_MODE_ENV, CompiledShader, ShaderCompiler, VariantSet,
    compile_mode, compile_shader, optimize_source, unique_variants,
)
from repro.core.trie import TrieStats, VariantTrie

__all__ = [
    "CompiledShader", "ShaderCompiler", "VariantSet", "compile_shader",
    "optimize_source", "unique_variants",
    "COMPILE_MODE_ENV", "compile_mode", "TrieStats", "VariantTrie",
    "CorpusTrie", "CorpusTrieStats", "TrieState",
    "shared_corpus_trie", "reset_shared_corpus_trie",
]
