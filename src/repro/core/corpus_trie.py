"""Corpus-global compilation-state trie: intern once, compile everywhere.

The per-shader :class:`~repro.core.trie.VariantTrie` (PR 3) collapses the
256-combination flag space of *one* shader by merging fingerprint-equal
states mid-walk.  This module widens the same idea to the whole study: a
:class:`CorpusTrie` interns post-pass IR states across **every** pipeline the
study runs —

* the offline 256-variant walk of every corpus shader
  (:meth:`CorpusTrie.compile_variants`, byte-identical to ``VariantTrie``);
* every simulated vendor JIT pipeline (:mod:`repro.gpu.jit` under
  ``REPRO_COMPILE=corpus``): each measured text x each of the five vendor
  drivers is a sequence of exactly the same step granularity.

States are keyed by the canonical IR fingerprint
(:mod:`repro.ir.fingerprint`) **plus** a digest of the module's GLSL
interface and ``#version`` — the per-shader trie can omit those (constant
within one shader) but a corpus-wide key cannot, since emission reprints the
interface declarations.  Edges are memoized as ``(state key, step) -> child
key`` where a step is one of::

    ("cleanup",)                  run_cleanup
    ("pass", name)                apply_flag_pass  (flag pass + cleanup)
    ("unroll", trips, growth)     driver unroller + cleanup

The payoff is *cross-pipeline* sharing the per-shader trie structurally
cannot see: the five vendor JITs repeat each other's cleanup/gvn/div_to_mul
steps on the same post-frontend states, the JIT pipelines of a shader's 256
variant texts converge onto states the offline walk already produced, and a
step key ``("pass", "gvn")`` is *identical* between the offline walk and a
vendor pipeline, so either side can hit edges the other created.  (Distinct
synth families do not converge to identical whole-function states — feature
blocks compose into one function body — so the measured win is this
cross-pipeline/cross-text sharing, not cross-family aliasing; see
``docs/architecture.md``.)

Safety rests entirely on the fingerprint contract — equal fingerprints imply
identical later-pass behaviour and byte-identical emission — which is what
``tests/test_fingerprint_properties.py`` fuzzes and
``tests/test_corpus_trie.py`` enforces differentially (``StudyResult`` bytes
identical across ``REPRO_COMPILE=naive|trie|corpus``).

Interned modules are **shared and immutable**: :meth:`CorpusTrie.apply`
clones before running any pass, and every consumer of a returned module
(measurement profiling, cost estimation, emission) only reads.  All state is
guarded by one re-entrant lock, so `--jobs` worker threads and the service
worker pool can share one trie; process-pool workers each build their own
process-global trie via :func:`shared_corpus_trie` (fork/spawn boundaries
cannot share Python object graphs cheaply), which preserves every
correctness property — sharing is an optimization, never a dependency.

An optional ``max_states`` bound evicts least-recently-used *modules* only.
Edge and emit memos are content-addressed (key = state content), so they
stay valid across evictions; an edge whose child module was evicted simply
recomputes it (counted in ``stats.pass_runs`` again) and re-interns under
the same key.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.ir import emit_glsl
from repro.ir.clone import clone_module
from repro.ir.fingerprint import fingerprint_module
from repro.ir.module import Module
from repro.passes.manager import PASS_ORDER, apply_flag_pass, run_cleanup
from repro.passes.unroll import unroll

#: A trie edge label; see the module docstring for the three step kinds.
Step = Tuple


@dataclass(frozen=True)
class TrieState:
    """A handle on one interned compilation state.

    Carrying the module in the handle (not just the key) is what makes
    eviction safe: :meth:`CorpusTrie.apply` can always clone the parent it
    was handed, even if the trie has since evicted it.
    """

    key: str
    module: Module  # interned and shared — MUST be treated as immutable


@dataclass
class CorpusTrieStats:
    """Cumulative work/sharing counters (exposed on the engine and CLI)."""

    #: memoized edge servings: a pipeline step answered without running it.
    hits: int = 0
    #: steps actually executed (clone + pass/cleanup/unroll) — the misses.
    pass_runs: int = 0
    #: distinct states interned (re-interning an evicted state counts again).
    interned_states: int = 0
    #: emissions actually run / answered from the emit memo.
    emits: int = 0
    emit_hits: int = 0
    #: modules dropped by the ``max_states`` LRU bound.
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "pass_runs": self.pass_runs,
                "interned_states": self.interned_states, "emits": self.emits,
                "emit_hits": self.emit_hits, "evictions": self.evictions}

    @staticmethod
    def merge_dicts(parts: Iterable[Dict[str, int]]) -> Dict[str, int]:
        """Sum per-shard stat dicts (the ``repro merge-results`` path)."""
        merged = CorpusTrieStats().as_dict()
        for part in parts:
            for name in merged:
                merged[name] += int(part.get(name, 0))
        return merged


class CorpusTrie:
    """Corpus-wide interning of compilation states and pipeline steps."""

    def __init__(self, max_states: Optional[int] = None):
        if max_states is not None and max_states < 1:
            raise ValueError(f"max_states must be >= 1, got {max_states}")
        self.max_states = max_states
        self.stats = CorpusTrieStats()
        self._lock = threading.RLock()
        #: state key -> interned module, LRU-ordered for eviction.
        self._states: "OrderedDict[str, Module]" = OrderedDict()
        #: (parent state key, step) -> child state key.  Content-addressed:
        #: never invalidated, even across evictions.
        self._edges: Dict[Tuple[str, Step], str] = {}
        #: (state key, es) -> emitted GLSL.  Content-addressed likewise.
        self._emits: Dict[Tuple[str, bool], str] = {}

    # ------------------------------------------------------------------
    # Keys and interning
    # ------------------------------------------------------------------

    @staticmethod
    def state_key(module: Module) -> str:
        """Canonical content key: function fingerprint + interface/version.

        The function fingerprint deliberately omits interface and version
        (constant across the states of one shader); a corpus-wide key must
        fold them in, because emission reprints the declarations and two
        shaders could in principle share a function body but not an
        interface.
        """
        interface = module.interface
        context = repr((module.version,
                        tuple((v.name, repr(v.ty)) for v in interface.uniforms),
                        tuple((v.name, repr(v.ty)) for v in interface.inputs),
                        tuple((v.name, repr(v.ty)) for v in interface.outputs)))
        suffix = hashlib.sha256(context.encode()).hexdigest()[:16]
        return f"{fingerprint_module(module)}:{suffix}"

    def intern(self, module: Module) -> TrieState:
        """Intern *module* (or return the already-interned equal state).

        The caller must not mutate *module* afterwards — on a miss it
        becomes the shared canonical copy.
        """
        key = self.state_key(module)
        with self._lock:
            return self._install(key, module)

    def _install(self, key: str, module: Module) -> TrieState:
        existing = self._states.get(key)
        if existing is not None:
            self._states.move_to_end(key)
            return TrieState(key, existing)
        self._states[key] = module
        self.stats.interned_states += 1
        if self.max_states is not None:
            while len(self._states) > self.max_states:
                self._states.popitem(last=False)
                self.stats.evictions += 1
        return TrieState(key, module)

    # ------------------------------------------------------------------
    # Steps and emission
    # ------------------------------------------------------------------

    def apply(self, state: TrieState, step: Step) -> TrieState:
        """The child state of running *step* on *state* (memoized).

        A memo hit serves the interned child without cloning or running
        anything; a miss clones the parent (name-preserving, exactly as the
        per-shader trie and the vendor JITs do), runs the step, and interns
        the result so every later pipeline reaching this edge shares it.
        """
        with self._lock:
            child_key = self._edges.get((state.key, step))
            if child_key is not None:
                module = self._states.get(child_key)
                if module is not None:
                    self._states.move_to_end(child_key)
                    self.stats.hits += 1
                    return TrieState(child_key, module)
                # Child evicted: fall through and recompute under the same
                # (content-addressed) key.
        module = clone_module(state.module, preserve_names=True)
        _run_step(module, step)
        with self._lock:
            self.stats.pass_runs += 1
            child = self._install(self.state_key(module), module)
            self._edges[(state.key, step)] = child.key
            return child

    def emit(self, state: TrieState, es: bool = False) -> str:
        """Emitted GLSL of *state* (memoized corpus-wide per ``es``)."""
        memo_key = (state.key, bool(es))
        with self._lock:
            text = self._emits.get(memo_key)
            if text is not None:
                self.stats.emit_hits += 1
                return text
        text = emit_glsl(state.module, es=es)
        with self._lock:
            if memo_key in self._emits:
                self.stats.emit_hits += 1
            else:
                self._emits[memo_key] = text
                self.stats.emits += 1
            return self._emits[memo_key]

    # ------------------------------------------------------------------
    # The offline 256-variant walk
    # ------------------------------------------------------------------

    def compile_variants(self, base_module: Module,
                         es: bool = False) -> Dict[int, str]:
        """Emitted text for every flag index 0..255 of *base_module*.

        The walk is step-for-step the per-shader ``VariantTrie.compile``
        (same root cleanup, same level order, same merge points — the
        corpus key is the fingerprint plus a constant-within-one-shader
        suffix, so merges happen exactly where the per-shader walk merges),
        with every edge routed through the corpus-wide memo: a state
        another shader's walk or a vendor JIT pipeline already produced is
        served instead of recomputed, and repeated studies of the same
        shader share everything including the emissions.
        """
        root_module = clone_module(base_module)
        run_cleanup(root_module.function)
        root = self.intern(root_module)

        states: Dict[str, TrieState] = {root.key: root}
        subset_to_key: Dict[int, str] = {0: root.key}
        for bit, name in enumerate(PASS_ORDER):
            step: Step = ("pass", name)
            child_of = {key: self.apply(state, step)
                        for key, state in states.items()}
            next_states = dict(states)
            for child in child_of.values():
                next_states.setdefault(child.key, child)
            next_subsets: Dict[int, str] = {}
            for subset, key in subset_to_key.items():
                next_subsets[subset] = key
                next_subsets[subset | (1 << bit)] = child_of[key].key
            subset_to_key = next_subsets
            live = set(subset_to_key.values())
            states = {key: state for key, state in next_states.items()
                      if key in live}

        texts = {key: self.emit(state, es=es)
                 for key, state in states.items()}
        from repro.core.trie import _pass_subset

        return {index: texts[subset_to_key[_pass_subset(index)]]
                for index in range(256)}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._states)

    def clear(self) -> None:
        """Drop every interned state, memo, and counter."""
        with self._lock:
            self._states.clear()
            self._edges.clear()
            self._emits.clear()
            self.stats = CorpusTrieStats()


def _run_step(module: Module, step: Step) -> None:
    """Execute one pipeline step in place (the edge-miss path)."""
    kind = step[0]
    if kind == "cleanup":
        run_cleanup(module.function)
    elif kind == "pass":
        apply_flag_pass(module, step[1])
    elif kind == "unroll":
        unroll(module.function, max_trips=step[1], max_growth=step[2])
        run_cleanup(module.function)
    else:
        raise KeyError(f"unknown trie step {step!r}")


# ---------------------------------------------------------------------------
# Process-global shared instance
# ---------------------------------------------------------------------------
# One trie per process is the sharing unit: `--jobs` threads and service
# workers all land in it; each process-pool/shard worker builds its own and
# their hit statistics are summed by `repro merge-results --trie-stats`.

_SHARED: Optional[CorpusTrie] = None
_SHARED_LOCK = threading.Lock()


def shared_corpus_trie() -> CorpusTrie:
    """The process-wide trie ``REPRO_COMPILE=corpus`` pipelines share."""
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is None:
            _SHARED = CorpusTrie()
        return _SHARED


def reset_shared_corpus_trie() -> None:
    """Drop the process-wide trie (tests, benchmarks, memory pressure)."""
    global _SHARED
    with _SHARED_LOCK:
        _SHARED = None
