"""LunarGlass-style optimization passes over the SSA IR.

The eight command-line flags from the paper (Section III) map to
:class:`repro.passes.flags.OptimizationFlags`;
:func:`repro.passes.manager.run_passes` applies them plus the always-on
canonical passes (constant folding, local CSE, trivial DCE) in a fixed,
deterministic order.
"""

from repro.passes.flags import OptimizationFlags, ALL_FLAG_NAMES, DEFAULT_LUNARGLASS
from repro.passes.manager import run_passes

__all__ = ["OptimizationFlags", "ALL_FLAG_NAMES", "DEFAULT_LUNARGLASS", "run_passes"]
