"""LunarGlass-style optimization passes over the SSA IR.

The eight command-line flags from the paper (Section III) map to
:class:`repro.passes.flags.OptimizationFlags`;
:func:`repro.passes.manager.run_passes` applies them plus the always-on
canonical passes (constant folding, local CSE, trivial DCE) in a fixed,
deterministic order.
"""

from repro.passes.flags import (
    ALL_FLAG_NAMES, DEFAULT_LUNARGLASS, FLAG_COUNT, SPACE_SIZE,
    OptimizationFlags, flip_bit, hamming_distance, mutate_index,
    neighbor_indices, popcount, random_index, uniform_crossover,
)
from repro.passes.manager import (
    PASS_ORDER, apply_flag_pass, run_cleanup, run_passes,
)

__all__ = [
    "OptimizationFlags", "ALL_FLAG_NAMES", "DEFAULT_LUNARGLASS",
    "FLAG_COUNT", "SPACE_SIZE", "run_passes",
    "PASS_ORDER", "apply_flag_pass", "run_cleanup",
    "flip_bit", "neighbor_indices", "popcount", "hamming_distance",
    "random_index", "uniform_crossover", "mutate_index",
]
