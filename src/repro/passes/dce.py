"""Dead code elimination: the always-on trivial pass and the ADCE flag pass.

The paper observes (Section VI-D-1) that LunarGlass's ADCE flag "in practise
never changes the source output" because LLVM's trivially-dead removal plus
the GLSL extensions already catch everything.  We reproduce that situation:
``trivial_dce`` runs to fixpoint in the always-on pipeline (including dead
stores to never-read array slots), so the liveness-based ``adce`` finds
nothing extra on real shaders — while remaining a genuinely different,
stronger algorithm.
"""

from __future__ import annotations

from typing import Set

from repro.ir.instructions import (
    Instr, LoadElem, Phi, StoreElem, Terminator, is_pure,
)
from repro.ir.module import Function
from repro.ir.values import Value


def trivial_dce(function: Function) -> int:
    """Iteratively remove pure instructions with no uses; returns removals.

    Includes dead stores to never-read array slots and dead phi *cycles*
    (an accumulator only feeding itself around a loop).  This matches the
    paper's observation that LLVM's always-on trivially-dead removal (plus
    the GLSL extensions) leaves nothing for the ADCE flag to do.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        used: Set[int] = set()
        for instr in function.instructions():
            for operand in instr.operands:
                used.add(id(operand))
        for block in function.blocks:
            for instr in list(block.instrs):
                if isinstance(instr, Terminator):
                    continue
                if is_pure(instr) and id(instr) not in used:
                    block.remove(instr)
                    removed += 1
                    changed = True
        removed += _dead_store_elimination(function)
        cycles = _dead_cycle_elimination(function)
        removed += cycles
        changed = changed or bool(cycles)
    return removed


def _dead_cycle_elimination(function: Function) -> int:
    """Remove pure instructions not transitively used by any side effect or
    terminator (catches phi/add cycles trivial use-counting cannot)."""
    live: Set[int] = set()
    index = {}
    worklist = []
    for instr in function.instructions():
        index[id(instr)] = instr
        if instr.has_side_effects or isinstance(instr, Terminator):
            live.add(id(instr))
            worklist.append(instr)
    while worklist:
        instr = worklist.pop()
        for operand in instr.operands:
            key = id(operand)
            if key in index and key not in live:
                live.add(key)
                worklist.append(index[key])
    removed = 0
    for block in function.blocks:
        for instr in list(block.instrs):
            if id(instr) not in live:
                block.remove(instr)
                removed += 1
    return removed


def _dead_store_elimination(function: Function) -> int:
    """Remove StoreElem into array slots that are never loaded."""
    loaded = {id(i.slot) for i in function.instructions() if isinstance(i, LoadElem)}
    removed = 0
    for block in function.blocks:
        for instr in list(block.instrs):
            if isinstance(instr, StoreElem) and id(instr.slot) not in loaded:
                block.remove(instr)
                removed += 1
    return removed


def adce(function: Function) -> int:
    """Aggressive DCE: mark live from roots (side effects + control flow),
    sweep everything else."""
    live: Set[int] = set()
    worklist = []
    index = {}
    for instr in function.instructions():
        index[id(instr)] = instr
        if instr.has_side_effects or isinstance(instr, Terminator):
            live.add(id(instr))
            worklist.append(instr)

    while worklist:
        instr = worklist.pop()
        for operand in instr.operands:
            key = id(operand)
            if key in index and key not in live:
                live.add(key)
                worklist.append(index[key])

    removed = 0
    for block in function.blocks:
        for instr in list(block.instrs):
            if id(instr) not in live:
                block.remove(instr)
                removed += 1
    return removed
