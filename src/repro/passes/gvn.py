"""Global value numbering (the GVN flag).

Dominator-tree-scoped hash tables: walking the dominator tree depth-first,
an expression available in an ancestor scope replaces any structurally equal
instruction below it.  Memory reads (LoadVar/LoadElem) are skipped — the
always-on local CSE handles those within a block, and cross-block movement
would need a memory dependence analysis LunarGlass did not have either.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.cfg import compute_dominators
from repro.ir.module import BasicBlock, Function
from repro.passes.keys import instr_key


def gvn(function: Function) -> int:
    """Dominator-tree global value numbering: replace dominated
    recomputations with the dominating definition; returns the number of
    replacements."""
    idom = compute_dominators(function)
    children: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        parent = idom[block]
        if parent is not None:
            children[parent].append(block)

    merged = 0
    scopes: List[Dict[Tuple, object]] = []

    def lookup(key: Tuple):
        for scope in reversed(scopes):
            if key in scope:
                return scope[key]
        return None

    def visit(block: BasicBlock) -> None:
        nonlocal merged
        scopes.append({})
        for instr in list(block.instrs):
            key = instr_key(instr)
            if key is None:
                continue
            existing = lookup(key)
            if existing is None:
                scopes[-1][key] = instr
            else:
                function.replace_all_uses(instr, existing)  # type: ignore[arg-type]
                block.remove(instr)
                merged += 1
        for child in children[block]:
            visit(child)
        scopes.pop()

    visit(function.entry)
    return merged
