"""The Const-Div-to-Mul flag: ``x / c -> x * (1/c)`` for constant divisors.

The reciprocal is computed at compile time (paper Section III-B); this is an
unsafe transform because ``1/c`` rounds.  Division by a constant containing a
zero component is left untouched.
"""

from __future__ import annotations

from repro.ir.instructions import BinOp
from repro.ir.module import Function
from repro.ir.values import Constant
from repro.passes.trees import insert_before


def div_to_mul(function: Function) -> int:
    """Rewrite float division by a constant into multiplication by its
    reciprocal; returns the number of rewrites."""
    changed = 0
    for block in function.blocks:
        for instr in list(block.instrs):
            if (not isinstance(instr, BinOp) or instr.op != "div"
                    or instr.ty.kind != "float"):
                continue
            divisor = instr.rhs
            if not isinstance(divisor, Constant):
                continue
            comps = divisor.components()
            if any(c == 0 for c in comps):
                continue
            inverse = tuple(1.0 / float(c) for c in comps)
            recip = Constant(divisor.ty,
                             inverse if divisor.ty.is_vector else inverse[0])
            product = insert_before(instr, BinOp("mul", instr.lhs, recip))
            function.replace_all_uses(instr, product)
            block.remove(instr)
            changed += 1
    return changed
