"""The eight optimization flags explored by the paper.

Six are LunarGlass defaults (ADCE, Hoist, Unroll, Coalesce, GVN, integer
Reassociate); two are the paper's additional unsafe floating-point passes
(FP-Reassociate and Const-Div-to-Mul).  All 256 on/off combinations form the
exhaustive search space of Section III-A.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Iterator, Tuple

#: Number of flags == bits in a combination index.
FLAG_COUNT = 8
#: Size of the exhaustive search space (2 ** FLAG_COUNT).
SPACE_SIZE = 1 << FLAG_COUNT

#: Canonical flag order used for combination indexing (bit 0 = adce).
ALL_FLAG_NAMES: Tuple[str, ...] = (
    "adce", "coalesce", "gvn", "reassociate", "unroll", "hoist",
    "fp_reassociate", "div_to_mul",
)

#: Human-readable labels matching the paper's Table I columns.
FLAG_LABELS = {
    "adce": "ADCE",
    "coalesce": "Coalesce",
    "gvn": "GVN",
    "reassociate": "Reassociate",
    "unroll": "Unroll",
    "hoist": "Hoist",
    "fp_reassociate": "FP Reassociate",
    "div_to_mul": "Div to Mul",
}


@dataclass(frozen=True)
class OptimizationFlags:
    """An immutable set of the paper's eight flag bits — one point in the
    256-combination space."""
    adce: bool = False
    coalesce: bool = False
    gvn: bool = False
    reassociate: bool = False
    unroll: bool = False
    hoist: bool = False
    fp_reassociate: bool = False
    div_to_mul: bool = False

    @staticmethod
    def none() -> "OptimizationFlags":
        return OptimizationFlags()

    @staticmethod
    def all() -> "OptimizationFlags":
        return OptimizationFlags(**{name: True for name in ALL_FLAG_NAMES})

    @staticmethod
    def from_index(index: int) -> "OptimizationFlags":
        """Decode combination 0..255 (bit i = ALL_FLAG_NAMES[i])."""
        if not 0 <= index < 256:
            raise ValueError(f"combination index {index} out of range")
        return OptimizationFlags(
            **{name: bool(index >> bit & 1) for bit, name in enumerate(ALL_FLAG_NAMES)}
        )

    @property
    def index(self) -> int:
        return sum(
            (1 << bit) if getattr(self, name) else 0
            for bit, name in enumerate(ALL_FLAG_NAMES)
        )

    def enabled(self) -> Tuple[str, ...]:
        return tuple(name for name in ALL_FLAG_NAMES if getattr(self, name))

    def with_flag(self, name: str, value: bool = True) -> "OptimizationFlags":
        if name not in ALL_FLAG_NAMES:
            raise ValueError(f"unknown flag {name!r}")
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current[name] = value
        return OptimizationFlags(**current)

    @staticmethod
    def single(name: str) -> "OptimizationFlags":
        return OptimizationFlags.none().with_flag(name, True)

    @staticmethod
    def all_combinations() -> Iterator["OptimizationFlags"]:
        for index in range(256):
            yield OptimizationFlags.from_index(index)

    def __str__(self) -> str:
        names = self.enabled()
        return "+".join(names) if names else "none"


# ---------------------------------------------------------------------------
# Flag-mask utilities: combination indices as 8-bit masks.  The search
# strategies (repro.search.strategies) operate on these integers and decode
# to OptimizationFlags only at evaluation time.
# ---------------------------------------------------------------------------


def flip_bit(index: int, bit: int) -> int:
    """Toggle one flag in a combination index."""
    if not 0 <= bit < FLAG_COUNT:
        raise ValueError(f"bit {bit} out of range 0..{FLAG_COUNT - 1}")
    return index ^ (1 << bit)


def neighbor_indices(index: int) -> Tuple[int, ...]:
    """All combination indices at Hamming distance 1 (each flag flipped)."""
    return tuple(index ^ (1 << bit) for bit in range(FLAG_COUNT))


def popcount(index: int) -> int:
    """Number of enabled flags in a combination index."""
    return bin(index & (SPACE_SIZE - 1)).count("1")


def hamming_distance(a: int, b: int) -> int:
    """Number of flags on which two combinations differ."""
    return popcount(a ^ b)


def random_index(rng: random.Random) -> int:
    """A uniformly random combination index."""
    return rng.randrange(SPACE_SIZE)


def uniform_crossover(a: int, b: int, rng: random.Random) -> int:
    """Each flag taken from parent *a* or *b* with equal probability."""
    mask = rng.randrange(SPACE_SIZE)
    return (a & mask) | (b & ~mask & (SPACE_SIZE - 1))


def mutate_index(index: int, rng: random.Random,
                 rate: float = 1.0 / FLAG_COUNT) -> int:
    """Flip each flag independently with probability *rate*."""
    for bit in range(FLAG_COUNT):
        if rng.random() < rate:
            index ^= 1 << bit
    return index


#: The flags LunarGlass enables by default (paper Section VI-B: GVN, integer
#: reassociation, hoisting, unrolling, coalescing and ADCE are the defaults;
#: the unsafe FP passes are the paper's additions and default to off).
DEFAULT_LUNARGLASS = OptimizationFlags(
    adce=True, coalesce=True, gvn=True, reassociate=True, unroll=True, hoist=True,
    fp_reassociate=False, div_to_mul=False,
)
