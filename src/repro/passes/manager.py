"""Pass pipeline driver, mirroring the LunarGlass stack's fixed order.

``run_passes(module, flags)`` applies:

1. the always-on canonical passes (constant folding / simplification, local
   CSE, trivial DCE) — these run regardless of flags, as in LunarGlass;
2. each enabled flag pass in a fixed order (unroll first so constant-index
   array loads fold; hoist next so flattened code feeds the scalar passes;
   then the arithmetic passes; GVN and coalesce late; ADCE last), with the
   canonical cleanup re-run after each one.

The same entry point drives both the offline optimizer and the simulated
vendor JIT pipelines (with vendor-specific flag sets).
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.module import Module
from repro.passes.canonicalize import canonicalize
from repro.passes.coalesce import coalesce
from repro.passes.cse import local_cse
from repro.passes.dce import adce, trivial_dce
from repro.passes.div_to_mul import div_to_mul
from repro.passes.flags import OptimizationFlags
from repro.passes.fp_reassociate import fp_reassociate
from repro.passes.gvn import gvn
from repro.passes.hoist import hoist
from repro.passes.reassociate import reassociate
from repro.passes.simplify_cfg import merge_straightline_blocks
from repro.passes.unroll import unroll

#: Flag pass execution order (not the flag-bit order).
PASS_ORDER = (
    "unroll", "hoist", "reassociate", "fp_reassociate", "div_to_mul",
    "gvn", "coalesce", "adce",
)

_PASS_FN = {
    "unroll": unroll,
    "hoist": hoist,
    "reassociate": reassociate,
    "fp_reassociate": fp_reassociate,
    "div_to_mul": div_to_mul,
    "gvn": gvn,
    "coalesce": coalesce,
    "adce": adce,
}


def run_passes(module: Module, flags: OptimizationFlags) -> Dict[str, int]:
    """Run the configured pipeline in place; returns per-pass change counts."""
    function = module.function
    stats: Dict[str, int] = {}

    def cleanup() -> None:
        canonicalize(function)
        merge_straightline_blocks(function)
        local_cse(function)
        trivial_dce(function)
        canonicalize(function)

    cleanup()
    for name in PASS_ORDER:
        if not getattr(flags, name):
            continue
        stats[name] = _PASS_FN[name](function)
        cleanup()
    return stats
