"""Pass pipeline driver, mirroring the LunarGlass stack's fixed order.

``run_passes(module, flags)`` applies:

1. the always-on canonical passes (constant folding / simplification, local
   CSE, trivial DCE) — these run regardless of flags, as in LunarGlass;
2. each enabled flag pass in a fixed order (unroll first so constant-index
   array loads fold; hoist next so flattened code feeds the scalar passes;
   then the arithmetic passes; GVN and coalesce late; ADCE last), with the
   canonical cleanup re-run after each one.

The same entry point drives both the offline optimizer and the simulated
vendor JIT pipelines (with vendor-specific flag sets).
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.module import Module
from repro.passes.canonicalize import canonicalize
from repro.passes.coalesce import coalesce
from repro.passes.cse import local_cse
from repro.passes.dce import adce, trivial_dce
from repro.passes.div_to_mul import div_to_mul
from repro.passes.flags import OptimizationFlags
from repro.passes.fp_reassociate import fp_reassociate
from repro.passes.gvn import gvn
from repro.passes.hoist import hoist
from repro.passes.reassociate import reassociate
from repro.passes.simplify_cfg import merge_straightline_blocks
from repro.passes.unroll import unroll

#: Flag pass execution order (not the flag-bit order).
PASS_ORDER = (
    "unroll", "hoist", "reassociate", "fp_reassociate", "div_to_mul",
    "gvn", "coalesce", "adce",
)

_PASS_FN = {
    "unroll": unroll,
    "hoist": hoist,
    "reassociate": reassociate,
    "fp_reassociate": fp_reassociate,
    "div_to_mul": div_to_mul,
    "gvn": gvn,
    "coalesce": coalesce,
    "adce": adce,
}


def run_cleanup(function) -> None:
    """The always-on canonical cleanup (runs before the first flag pass and
    again after every flag pass, as in LunarGlass)."""
    canonicalize(function)
    merge_straightline_blocks(function)
    local_cse(function)
    trivial_dce(function)
    canonicalize(function)
    # Invalidate any cached fingerprint: the constituent passes mutate
    # blocks/instructions directly, below the Function-level mutators that
    # bump the epoch themselves.  Unconditional (even when every pass was a
    # no-op) — a spurious recompute is cheap, a stale digest is corruption.
    function.touch()


def apply_flag_pass(module: Module, name: str) -> int:
    """One incremental pipeline step: a single flag pass plus the canonical
    cleanup.  ``run_passes`` is exactly ``run_cleanup`` followed by one such
    step per enabled flag in ``PASS_ORDER`` — the compilation trie
    (:mod:`repro.core.trie`) walks edges of precisely this granularity."""
    if name not in _PASS_FN:
        raise KeyError(f"unknown flag pass {name!r}; have {PASS_ORDER}")
    changed = _PASS_FN[name](module.function)
    run_cleanup(module.function)  # also bumps the fingerprint-cache epoch
    return changed


def run_passes(module: Module, flags: OptimizationFlags) -> Dict[str, int]:
    """Run the configured pipeline in place; returns per-pass change counts."""
    stats: Dict[str, int] = {}
    run_cleanup(module.function)
    for name in PASS_ORDER:
        if not getattr(flags, name):
            continue
        stats[name] = apply_flag_pass(module, name)
    return stats
