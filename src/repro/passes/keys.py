"""Hashable structural keys for instructions, shared by CSE and GVN."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ir.instructions import (
    BinOp, Call, Cmp, Construct, Convert, ExtractElem, InsertElem, LoadElem,
    LoadGlobal, LoadVar, Sample, Select, Shuffle, UnOp,
)
from repro.ir.values import Constant, Undef, Value


def value_key(value: Value):
    """Identity for SSA values; structural equality for constants."""
    if isinstance(value, Constant):
        return ("c", value.ty, value.value)
    if isinstance(value, Undef):
        return ("undef", value.ty)
    return ("v", id(value))


def instr_key(instr) -> Optional[Tuple]:
    """A structural key, or None when the instruction must not be merged.

    ``LoadVar``/``LoadElem`` are memory reads: they get keys *only* when the
    caller supplies a memory version (CSE does; GVN skips mutable slots).
    """
    if isinstance(instr, BinOp):
        lhs, rhs = value_key(instr.lhs), value_key(instr.rhs)
        if instr.commutative and rhs < lhs:
            lhs, rhs = rhs, lhs
        return ("bin", instr.op, instr.ty, lhs, rhs)
    if isinstance(instr, Cmp):
        return ("cmp", instr.op, value_key(instr.lhs), value_key(instr.rhs))
    if isinstance(instr, UnOp):
        return ("un", instr.op, value_key(instr.operand))
    if isinstance(instr, Convert):
        return ("conv", instr.ty.kind, value_key(instr.value))
    if isinstance(instr, Select):
        return ("select", tuple(value_key(op) for op in instr.operands))
    if isinstance(instr, ExtractElem):
        return ("extract", instr.index, value_key(instr.vector))
    if isinstance(instr, InsertElem):
        return ("insert", instr.index, value_key(instr.vector),
                value_key(instr.scalar))
    if isinstance(instr, Shuffle):
        return ("shuffle", tuple(instr.mask), value_key(instr.source))
    if isinstance(instr, Construct):
        return ("construct", instr.ty, tuple(value_key(op) for op in instr.operands))
    if isinstance(instr, Call):
        return ("call", instr.callee, instr.ty,
                tuple(value_key(op) for op in instr.operands))
    if isinstance(instr, Sample):
        return ("sample", instr.sampler, instr.sampler_kind,
                tuple(value_key(op) for op in instr.operands))
    if isinstance(instr, LoadGlobal):
        element = value_key(instr.element) if instr.element is not None else None
        return ("loadglobal", instr.var, instr.column, element)
    return None


def load_key(instr, version: int) -> Optional[Tuple]:
    """Key for slot loads, valid for a specific store version."""
    if isinstance(instr, LoadVar):
        return ("loadvar", id(instr.slot), version)
    if isinstance(instr, LoadElem):
        return ("loadelem", id(instr.slot), value_key(instr.index), version)
    return None
