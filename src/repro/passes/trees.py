"""Shared expression-tree machinery for the reassociation passes.

Both the integer Reassociate flag and the unsafe FP-Reassociate flag flatten
add/sub (or mul) trees into leaf lists, simplify, and rebuild.  Flattening
only walks through single-use intermediate nodes of the same kind, mirroring
LLVM's reassociation rank rules closely enough for shader-sized code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import BinOp, Instr, UnOp
from repro.ir.module import Function
from repro.ir.values import Constant, Value

SignedLeaf = Tuple[int, Value]  # (+1 | -1, value)


def use_counts(function: Function) -> Dict[int, int]:
    """Operand use counts by value id, for single-use tree flattening."""
    counts: Dict[int, int] = {}
    for instr in function.instructions():
        for operand in instr.operands:
            counts[id(operand)] = counts.get(id(operand), 0) + 1
    return counts


def flatten_add_tree(root: BinOp, kind: str, uses: Dict[int, int]) -> List[SignedLeaf]:
    """Flatten an add/sub tree rooted at *root* into signed leaves."""
    leaves: List[SignedLeaf] = []

    def walk(value: Value, sign: int, is_root: bool) -> None:
        if (isinstance(value, BinOp) and value.op in ("add", "sub")
                and value.ty.kind == kind
                and (is_root or uses.get(id(value), 1) == 1)):
            walk(value.lhs, sign, False)
            walk(value.rhs, sign if value.op == "add" else -sign, False)
        elif (isinstance(value, UnOp) and value.op == "neg"
              and value.ty.kind == kind
              and uses.get(id(value), 1) == 1 and not is_root):
            walk(value.operand, -sign, False)
        else:
            leaves.append((sign, value))

    walk(root, 1, True)
    return leaves


def flatten_mul_tree(root: BinOp, kind: str, uses: Dict[int, int]) -> List[Value]:
    """The leaves of the single-use ``mul`` tree rooted at *root*."""
    leaves: List[Value] = []

    def walk(value: Value, is_root: bool) -> None:
        if (isinstance(value, BinOp) and value.op == "mul"
                and value.ty.kind == kind
                and (is_root or uses.get(id(value), 1) == 1)):
            walk(value.lhs, False)
            walk(value.rhs, False)
        else:
            leaves.append(value)

    walk(root, True)
    return leaves


def leaf_order_key(entry) -> Tuple:
    """Deterministic canonical ordering: non-constants by SSA creation order,
    constants last (LLVM's convention).

    Names are ``v<counter>``; comparing ``(len(name), name)`` orders them
    numerically, which is stable across compiles (plain string comparison
    would put "v99" after "v100" and make the output depend on the global
    counter's absolute value).
    """
    value = entry[1] if isinstance(entry, tuple) else entry
    if isinstance(value, Constant):
        return (1, 0, str(value.ty), str(value.value))
    name = getattr(value, "name", "")
    return (0, len(name), name, "")


def insert_before(instr: Instr, new_instr: Instr) -> Instr:
    """Insert *new_instr* just before *instr* in its block."""
    block = instr.block
    assert block is not None
    index = block.instrs.index(instr)
    new_instr.block = block
    block.instrs.insert(index, new_instr)
    return new_instr


def build_add_chain(root: BinOp, leaves: List[SignedLeaf],
                    constant: Optional[Constant]) -> Value:
    """Rebuild ``sum(leaves) + constant`` before *root*; returns the result."""
    positives = [v for s, v in leaves if s > 0]
    negatives = [v for s, v in leaves if s < 0]

    acc: Optional[Value] = None
    for value in positives:
        if acc is None:
            acc = value
        else:
            acc = insert_before(root, BinOp("add", acc, value))
    if acc is None:
        if constant is not None and negatives:
            acc = constant
            constant = None
        elif negatives:
            acc = insert_before(root, UnOp("neg", negatives.pop(0)))
    for value in negatives:
        if acc is None:
            acc = insert_before(root, UnOp("neg", value))
        else:
            acc = insert_before(root, BinOp("sub", acc, value))
    if constant is not None and not constant.is_zero:
        if acc is None:
            return constant
        acc = insert_before(root, BinOp("add", acc, constant))
    if acc is None:
        return constant if constant is not None else Constant.splat(root.ty, 0)
    return acc


def build_mul_chain(root: BinOp, leaves: List[Value],
                    constant: Optional[Constant]) -> Value:
    """Rebuild a left-to-right ``mul`` chain over *leaves*, folding
    *constant* in last."""
    acc: Optional[Value] = None
    for value in leaves:
        if acc is None:
            acc = value
        else:
            acc = insert_before(root, BinOp("mul", acc, value))
    if constant is not None and not constant.is_one:
        if acc is None:
            return constant
        acc = insert_before(root, BinOp("mul", acc, constant))
    if acc is None:
        return constant if constant is not None else Constant.splat(root.ty, 1)
    return acc
