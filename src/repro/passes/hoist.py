"""The Hoist flag: flatten conditionals into select instructions.

LunarGlass's description: "Flatten conditionals by changing assignments
inside 'if' blocks into select instructions."  We if-convert diamonds and
triangles whose arms are speculation-safe (pure — texture samples included,
GPUs speculate those when flattening), merging everything into the
predecessor block.  This is exactly what produces the paper's "very large
basic blocks ... pressure on the register allocators" artifact, and the
pathological slow-down cases of Fig. 9.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.instructions import (
    Br, CondBr, Instr, Phi, Select, Terminator, is_pure,
)
from repro.ir.module import BasicBlock, Function


def hoist(function: Function) -> int:
    """If-convert until fixpoint; returns number of conditionals flattened."""
    flattened = 0
    changed = True
    while changed:
        changed = False
        preds = function.predecessors()
        for block in list(function.blocks):
            if _try_flatten(function, block, preds):
                flattened += 1
                changed = True
                break  # CFG changed; recompute predecessors
    return flattened


def _try_flatten(function: Function, block: BasicBlock, preds) -> bool:
    term = block.terminator
    if not isinstance(term, CondBr):
        return False
    then_blk, else_blk = term.if_true, term.if_false
    if then_blk is else_blk:
        return False

    # Diamond: B -> T -> M, B -> F -> M.   Triangle: B -> T -> M, B -> M.
    merge: Optional[BasicBlock] = None
    arms: List[BasicBlock] = []
    if _is_arm(then_blk, block, preds) and _is_arm(else_blk, block, preds):
        t_target = then_blk.terminator.target  # type: ignore[union-attr]
        e_target = else_blk.terminator.target  # type: ignore[union-attr]
        if t_target is not e_target:
            return False
        merge = t_target
        arms = [then_blk, else_blk]
    elif _is_arm(then_blk, block, preds):
        if then_blk.terminator.target is not else_blk:  # type: ignore[union-attr]
            return False
        merge = else_blk
        arms = [then_blk]
    elif _is_arm(else_blk, block, preds):
        if else_blk.terminator.target is not then_blk:  # type: ignore[union-attr]
            return False
        merge = then_blk
        arms = [else_blk]
    else:
        return False

    if merge is block:
        return False
    # The merge must not have other predecessors sneaking values in via phis
    # we cannot rewrite (it may — phis handle it — but merge phis must only
    # reference the diamond's edges for a clean select rewrite).
    merge_preds = set(preds[merge])
    expected = set(arms) | ({block} if len(arms) < 2 else set())
    if merge_preds != expected:
        return False

    for arm in arms:
        for instr in arm.instrs:
            if isinstance(instr, Terminator):
                continue
            if isinstance(instr, Phi) or not is_pure(instr):
                return False

    # Move arm instructions into the predecessor.
    for arm in arms:
        for instr in list(arm.instrs):
            if isinstance(instr, Terminator):
                continue
            arm.remove(instr)
            block.insert_before_terminator(instr)

    # Rewrite merge phis as selects.
    then_pred = then_blk if then_blk in arms else block
    else_pred = else_blk if else_blk in arms else block
    for phi in list(merge.phis()):
        true_val = None
        false_val = None
        for pred, value in phi.incoming:
            if pred is then_pred:
                true_val = value
            elif pred is else_pred:
                false_val = value
        if true_val is None or false_val is None:
            return False  # should not happen given the pred check
        if true_val is false_val:
            replacement = true_val
        else:
            select = Select(term.cond, true_val, false_val)
            block.insert_before_terminator(select)
            replacement = select
        function.replace_all_uses(phi, replacement)
        merge.remove(phi)

    # Fold the branch: B now jumps straight to merge.
    block.remove(term)
    block.append(Br(merge))
    for arm in arms:
        function.blocks.remove(arm)

    # Merge M into B when B is now its only predecessor (grows basic blocks,
    # the artifact the paper calls out).
    new_preds = function.predecessors()
    if new_preds[merge] == [block] and merge is not block:
        block.remove(block.terminator)  # the Br(merge)
        for instr in list(merge.instrs):
            merge.remove(instr)
            instr.block = block
            block.instrs.append(instr)
        # Phis in merge's successors referencing merge now come from block.
        for succ in block.successors():
            for phi in succ.phis():
                for i, (pred, value) in enumerate(list(phi.incoming)):
                    if pred is merge:
                        phi.incoming[i] = (block, value)
        function.blocks.remove(merge)
    return True


def _is_arm(candidate: BasicBlock, pred: BasicBlock, preds) -> bool:
    """A single-entry block ending in an unconditional branch."""
    return (preds.get(candidate) == [pred]
            and isinstance(candidate.terminator, Br))
