"""Straight-line block merging (a minimal simplifycfg).

Part of the always-on canonical pipeline: after unrolling or constant branch
folding, chains of ``A -> Br -> B`` (B single-pred) merge into one block.
This is what turns a fully unrolled loop into the paper's "very large basic
blocks" and lets local CSE see across former iteration boundaries.
"""

from __future__ import annotations

from repro.ir.instructions import Br, CondBr, Terminator
from repro.ir.mem2reg import _prune_trivial_phis
from repro.ir.module import Function


def merge_straightline_blocks(function: Function) -> int:
    """Merge single-pred/single-succ Br chains and thread empty forwarding
    blocks; returns the number of blocks eliminated."""
    merged = 0
    changed = True
    while changed:
        changed = False
        _prune_trivial_phis(function)
        preds = function.predecessors()
        for block in list(function.blocks):
            term = block.terminator
            if not isinstance(term, Br):
                continue
            target = term.target
            if target is block or target is function.entry:
                continue
            if preds[target] != [block]:
                continue
            if target.phis():
                continue  # trivial phis were pruned; anything left is real
            block.remove(term)
            for instr in list(target.instrs):
                target.remove(instr)
                instr.block = block
                block.instrs.append(instr)
            for succ in block.successors():
                for phi in succ.phis():
                    for i, (pred, value) in enumerate(list(phi.incoming)):
                        if pred is target:
                            phi.incoming[i] = (block, value)
            function.blocks.remove(target)
            merged += 1
            changed = True
            break
        if not changed:
            changed = bool(_thread_empty_blocks(function))
            merged += int(changed)
    return merged


def _thread_empty_blocks(function: Function) -> int:
    """Redirect branches through blocks that contain only `Br target`."""
    preds = function.predecessors()
    for block in list(function.blocks):
        if block is function.entry or len(block.instrs) != 1:
            continue
        term = block.terminator
        if not isinstance(term, Br) or term.target is block:
            continue
        target = term.target
        block_preds = preds[block]
        if not block_preds:
            continue
        # A predecessor that already branches to `target` cannot be threaded
        # when `target` has phis (two incoming entries for one pred).
        if target.phis() and any(target in p.successors() for p in block_preds):
            continue
        for phi in target.phis():
            forwarded = None
            for pred, value in phi.incoming:
                if pred is block:
                    forwarded = value
            if forwarded is None:
                continue
            phi.remove_incoming(block)
            for pred in block_preds:
                phi.add_incoming(pred, forwarded)
        for pred in block_preds:
            pred_term = pred.terminator
            if isinstance(pred_term, Br) and pred_term.target is block:
                pred_term.target = target
            elif isinstance(pred_term, CondBr):
                if pred_term.if_true is block:
                    pred_term.if_true = target
                if pred_term.if_false is block:
                    pred_term.if_false = target
        function.blocks.remove(block)
        return 1
    return 0
