"""The unsafe floating-point reassociation flag (paper Section III-B).

Implements every rewrite the paper lists:

- ``ab + ac -> a(b + c)``      (common-factor extraction; the blur-kernel win)
- ``a + a + a -> 3a``          (repeated-addend collapse)
- ``a + b - a -> b``           (cancellation)
- constant grouping            (``c1(c2 v) -> (c1 c2) v`` via constant folding)
- scalar grouping              (``f1(f2 v) -> (f1 f2) v`` — scalar ops happen
                                in scalar registers before one final splat)
- ``x * 1 -> x``, ``x + 0 -> x``, and canonical operand ordering for better
  downstream CSE.

None of these are IEEE-safe (rounding changes), which is why a conformant
driver JIT cannot apply them — the paper's whole motivation for doing them
offline under developer control.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import BinOp, Construct, UnOp
from repro.ir.module import Function
from repro.ir.values import Constant, Value
from repro.passes.trees import (
    build_add_chain, build_mul_chain, flatten_add_tree, flatten_mul_tree,
    insert_before, leaf_order_key, use_counts,
)


def fp_reassociate(function: Function) -> int:
    """Unsafe-math reassociation of float add/mul trees: canonical leaf
    order, constant folding, common-factor extraction.  Returns the number
    of rewrites."""
    changed = _identities(function)
    # Tree rewrites create new sub-trees (e.g. factoring a common multiplier
    # exposes an inner sum whose addends share weight constants), so iterate
    # to a bounded fixpoint.
    for _ in range(8):
        round_changes = _mul_trees(function) + _add_trees(function)
        changed += round_changes
        if not round_changes:
            break
    changed += _canonical_order(function)
    return changed


# ---------------------------------------------------------------------------
# x*1, x+0, x-0
# ---------------------------------------------------------------------------


def _identities(function: Function) -> int:
    changed = 0
    for block in function.blocks:
        for instr in list(block.instrs):
            if not isinstance(instr, BinOp) or instr.ty.kind != "float":
                continue
            replacement: Optional[Value] = None
            if instr.op == "mul":
                if isinstance(instr.rhs, Constant) and instr.rhs.is_one:
                    replacement = instr.lhs
                elif isinstance(instr.lhs, Constant) and instr.lhs.is_one:
                    replacement = instr.rhs
            elif instr.op == "add":
                if isinstance(instr.rhs, Constant) and instr.rhs.is_zero:
                    replacement = instr.lhs
                elif isinstance(instr.lhs, Constant) and instr.lhs.is_zero:
                    replacement = instr.rhs
            elif instr.op == "sub":
                if isinstance(instr.rhs, Constant) and instr.rhs.is_zero:
                    replacement = instr.lhs
            if replacement is not None:
                function.replace_all_uses(instr, replacement)
                block.remove(instr)
                changed += 1
    return changed


# ---------------------------------------------------------------------------
# Multiplication trees: constant + scalar grouping
# ---------------------------------------------------------------------------


def _splat_scalar(value: Value) -> Optional[Value]:
    """If *value* is a splatted scalar (vectorization artifact), return the
    underlying scalar Value/Constant; None otherwise."""
    if isinstance(value, Constant) and value.ty.is_vector:
        comps = value.components()
        if all(c == comps[0] for c in comps):
            return Constant(value.ty.scalar, comps[0])
        return None
    if isinstance(value, Construct):
        first = value.operands[0]
        if all(op is first for op in value.operands):
            return first
    return None


def _tree_roots(function: Function, ops, kind: str = "float") -> Dict[int, bool]:
    """ids of add/sub/mul nodes absorbed into a parent tree (single use by a
    same-family node).  Processing only the *unabsorbed* roots keeps whole
    trees visible to one rewrite (a+a+a must not become 2a+a)."""
    uses = use_counts(function)
    absorbed: Dict[int, bool] = {}
    for instr in function.instructions():
        if not isinstance(instr, BinOp) or instr.ty.kind != kind:
            continue
        for operand in (instr.lhs, instr.rhs):
            if (isinstance(operand, BinOp) and operand.op in ops
                    and instr.op in ops
                    and operand.ty.kind == kind
                    and uses.get(id(operand), 1) == 1):
                absorbed[id(operand)] = True
    return absorbed


def _mul_trees(function: Function) -> int:
    changed = 0
    uses = use_counts(function)
    absorbed = _tree_roots(function, ("mul",))
    for block in function.blocks:
        for instr in list(block.instrs):
            if (not isinstance(instr, BinOp) or instr.op != "mul"
                    or instr.ty.kind != "float" or instr.block is None):
                continue
            if absorbed.get(id(instr)):
                continue
            changed += _group_mul(function, instr, uses)
    return changed


def _group_mul(function: Function, root: BinOp, uses) -> int:
    leaves = flatten_mul_tree(root, "float", uses)
    if len(leaves) < 2:
        return 0

    if root.ty.is_scalar:
        constants = [v for v in leaves if isinstance(v, Constant)]
        others = [v for v in leaves if not isinstance(v, Constant)]
        if len(constants) < 2:
            return 0
        product = 1.0
        for const in constants:
            product *= float(const.value)  # type: ignore[arg-type]
        others.sort(key=leaf_order_key)
        folded = Constant.float_(product)
        result = build_mul_chain(root, others,
                                 folded if product != 1.0 else None)
        function.replace_all_uses(root, result)
        if root.block is not None:
            root.block.remove(root)
        return 1

    # Vector tree: pull splatted scalars/constants out into a scalar chain.
    scalar_parts: List[Value] = []
    vector_parts: List[Value] = []
    for leaf in leaves:
        scalar = _splat_scalar(leaf)
        if scalar is not None:
            scalar_parts.append(scalar)
        else:
            vector_parts.append(leaf)
    if len(scalar_parts) < 2 or not vector_parts:
        return 0

    constant_product = 1.0
    scalar_values = []
    for part in scalar_parts:
        if isinstance(part, Constant):
            constant_product *= float(part.value)  # type: ignore[arg-type]
        else:
            scalar_values.append(part)
    scalar_values.sort(key=leaf_order_key)

    acc: Optional[Value] = None
    for value in scalar_values:
        acc = value if acc is None else insert_before(root, BinOp("mul", acc, value))
    if constant_product != 1.0:
        const = Constant.float_(constant_product)
        acc = const if acc is None else insert_before(root, BinOp("mul", acc, const))

    vector_parts.sort(key=leaf_order_key)
    if acc is not None:
        if isinstance(acc, Constant):
            splat: Value = Constant.splat(root.ty, acc.value)
        else:
            splat = insert_before(
                root, Construct(root.ty, [acc] * root.ty.width))
        vector_parts.append(splat)
    result = build_mul_chain(root, vector_parts, None)
    function.replace_all_uses(root, result)
    if root.block is not None:
        root.block.remove(root)
    return 1


# ---------------------------------------------------------------------------
# Addition trees: factorization, repeats, cancellation, constant grouping
# ---------------------------------------------------------------------------


def _add_trees(function: Function) -> int:
    changed = 0
    uses = use_counts(function)
    absorbed = _tree_roots(function, ("add", "sub"))
    for block in function.blocks:
        for instr in list(block.instrs):
            if (not isinstance(instr, BinOp) or instr.op not in ("add", "sub")
                    or instr.ty.kind != "float" or instr.block is None):
                continue
            if absorbed.get(id(instr)):
                continue
            changed += _rewrite_add_tree(function, instr, uses)
    return changed


def _rewrite_add_tree(function: Function, root: BinOp, uses) -> int:
    leaves = flatten_add_tree(root, "float", uses)
    if len(leaves) < 2:
        return 0

    did_anything = False

    # 1. Cancellation a + b - a -> b.
    leaves, cancelled = _cancel(leaves)
    did_anything = did_anything or cancelled

    # 2. Constant grouping.
    constants = [(s, v) for s, v in leaves if isinstance(v, Constant)]
    leaves = [(s, v) for s, v in leaves if not isinstance(v, Constant)]
    folded: Optional[Constant] = None
    if constants:
        ty = root.ty
        total = [0.0] * ty.width
        for sign, const in constants:
            for lane, comp in enumerate(const.components()):
                total[lane] += sign * float(comp)
        if any(total):
            folded = Constant(ty, tuple(total) if ty.is_vector else total[0])
        if len(constants) > 1 or (len(constants) == 1 and folded is None):
            did_anything = True

    # 3. Repeated addends a + a + a -> 3a.
    leaves, collapsed = _collapse_repeats(root, leaves)
    did_anything = did_anything or collapsed

    # 4. Common-factor extraction ab + ac -> a(b + c).
    leaves, factored = _factor(function, root, leaves, uses)
    did_anything = did_anything or factored

    if not did_anything:
        return 0

    leaves.sort(key=leaf_order_key)
    result = build_add_chain(root, leaves, folded)
    function.replace_all_uses(root, result)
    if root.block is not None:
        root.block.remove(root)
    return 1


def _cancel(leaves) -> Tuple[list, bool]:
    out = []
    cancelled = False
    by_value: Dict[int, List[int]] = {}
    skip = set()
    for index, (sign, value) in enumerate(leaves):
        opposite = by_value.get(id(value))
        matched = False
        if opposite:
            for j in opposite:
                if j not in skip and leaves[j][0] == -sign:
                    skip.add(j)
                    skip.add(index)
                    cancelled = True
                    matched = True
                    break
        if not matched:
            by_value.setdefault(id(value), []).append(index)
    out = [leaf for i, leaf in enumerate(leaves) if i not in skip]
    return out, cancelled


def _collapse_repeats(root: BinOp, leaves) -> Tuple[list, bool]:
    counts: Dict[int, int] = {}
    first: Dict[int, Tuple[int, Value]] = {}
    order: List[int] = []
    for sign, value in leaves:
        key = id(value) * (1 if sign > 0 else -1)
        if key not in counts:
            order.append(key)
            first[key] = (sign, value)
        counts[key] = counts.get(key, 0) + 1
    if all(c == 1 for c in counts.values()):
        return leaves, False
    out = []
    for key in order:
        sign, value = first[key]
        count = counts[key]
        if count == 1:
            out.append((sign, value))
        else:
            factor = Constant.splat(root.ty, float(count))
            product = insert_before(root, BinOp("mul", value, factor))
            out.append((sign, product))
    return out, True


def _factor(function: Function, root: BinOp, leaves, uses) -> Tuple[list, bool]:
    """Greedy pairwise factoring of shared multiplicands."""
    changed = False
    progress = True
    while progress:
        progress = False
        for i in range(len(leaves)):
            for j in range(i + 1, len(leaves)):
                si, vi = leaves[i]
                sj, vj = leaves[j]
                if si != sj:
                    continue
                if not (isinstance(vi, BinOp) and vi.op == "mul"
                        and isinstance(vj, BinOp) and vj.op == "mul"):
                    continue
                if uses.get(id(vi), 1) > 1 or uses.get(id(vj), 1) > 1:
                    continue
                shared = _shared_operand(vi, vj)
                if shared is None:
                    continue
                other_i = vi.rhs if vi.lhs is shared else vi.lhs
                other_j = vj.rhs if vj.lhs is shared else vj.lhs
                inner = insert_before(root, BinOp("add", other_i, other_j))
                outer = insert_before(root, BinOp("mul", shared, inner))
                leaves = (leaves[:i] + [(si, outer)] + leaves[i + 1 : j]
                          + leaves[j + 1 :])
                changed = True
                progress = True
                break
            if progress:
                break
    return leaves, changed


def _shared_operand(a: BinOp, b: BinOp) -> Optional[Value]:
    for x in (a.lhs, a.rhs):
        for y in (b.lhs, b.rhs):
            if x is y and not isinstance(x, Constant):
                return x
            if isinstance(x, Constant) and isinstance(y, Constant) and x == y:
                return x
    return None


# ---------------------------------------------------------------------------
# Canonical operand order (helps later CSE)
# ---------------------------------------------------------------------------


def _canonical_order(function: Function) -> int:
    changed = 0
    for instr in function.instructions():
        if (isinstance(instr, BinOp) and instr.commutative
                and instr.ty.kind == "float"):
            lhs_key = leaf_order_key(instr.lhs)
            rhs_key = leaf_order_key(instr.rhs)
            if rhs_key < lhs_key:
                instr.operands = [instr.rhs, instr.lhs]
                changed += 1
    return changed
