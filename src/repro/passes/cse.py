"""Local (per-block) common sub-expression elimination.

Part of the always-on canonical pipeline ("common sub-expression elimination
... necessary passes"), deliberately block-local so the GVN *flag* still has
global work to do, matching LunarGlass's split.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ir.instructions import LoadElem, LoadVar, StoreElem, StoreVar
from repro.ir.module import Function
from repro.passes.keys import instr_key, load_key


def local_cse(function: Function) -> int:
    """Merge structurally identical pure instructions within each block."""
    merged = 0
    for block in function.blocks:
        table: Dict[Tuple, object] = {}
        versions: Dict[int, int] = {}
        for instr in list(block.instrs):
            if isinstance(instr, StoreVar):
                versions[id(instr.slot)] = versions.get(id(instr.slot), 0) + 1
                continue
            if isinstance(instr, StoreElem):
                versions[id(instr.slot)] = versions.get(id(instr.slot), 0) + 1
                continue
            if isinstance(instr, (LoadVar, LoadElem)):
                key = load_key(instr, versions.get(id(instr.slot), 0))
            else:
                key = instr_key(instr)
            if key is None:
                continue
            existing = table.get(key)
            if existing is None:
                table[key] = instr
            else:
                function.replace_all_uses(instr, existing)  # type: ignore[arg-type]
                block.remove(instr)
                merged += 1
    return merged
