"""Always-on canonicalization: constant folding, peephole simplification,
constant branch resolution.

These correspond to the passes the paper could not toggle ("constant folding,
common sub-expression elimination, and redundant load-store elimination ...
were necessary passes to canonicalize instructions").  Floating-point
identities (``x+0.0``, ``x*1.0``) are deliberately *not* folded here — the
paper attributes them to the Reassociate / FP-Reassociate flag passes, and
strict IEEE semantics forbids ``x+0.0 -> x`` anyway (signed zeros).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import (
    BinOp, Br, Call, Cmp, CondBr, Construct, Convert, ExtractElem, InsertElem,
    LoadElem, Sample, Select, Shuffle, UnOp,
)
from repro.ir.interp import _apply_builtin, _binop, _cmp, _convert_scalar
from repro.ir.mem2reg import _prune_trivial_phis
from repro.ir.module import Function
from repro.ir.values import Constant, Undef, Value
from repro.passes.dce import trivial_dce

_MAX_ROUNDS = 50


def canonicalize(function: Function) -> int:
    """Run folding + DCE to fixpoint; returns number of changes."""
    total = 0
    for _ in range(_MAX_ROUNDS):
        changed = _fold_round(function)
        changed += _fold_branches(function)
        changed += trivial_dce(function)
        total += changed
        if not changed:
            break
    return total


def _fold_round(function: Function) -> int:
    changed = 0
    for block in function.blocks:
        for instr in list(block.instrs):
            replacement = _simplify(instr)
            if replacement is None:
                continue
            changed += 1
            if replacement is instr:
                continue  # simplified in place
            function.replace_all_uses(instr, replacement)
            block.remove(instr)
    return changed


def _fold_branches(function: Function) -> int:
    """CondBr simplification: constant conditions fold to Br (vital after
    full unrolling); negated conditions swap the successors (vital for the
    driver JITs to recognise re-emitted `if (!(cond)) break;` loops)."""
    changed = 0
    for block in list(function.blocks):
        term = block.terminator
        if (isinstance(term, CondBr) and isinstance(term.cond, UnOp)
                and term.cond.op == "not"):
            term.operands[0] = term.cond.operand
            term.if_true, term.if_false = term.if_false, term.if_true
            changed += 1
        if isinstance(term, CondBr) and isinstance(term.cond, Constant):
            taken = term.if_true if term.cond.value else term.if_false
            untaken = term.if_false if term.cond.value else term.if_true
            block.remove(term)
            block.append(Br(taken))
            if untaken is not taken:
                for phi in untaken.phis():
                    phi.remove_incoming(block)
            changed += 1
    if changed:
        function.remove_unreachable_blocks()
        _prune_trivial_phis(function)
    return changed


def _simplify(instr) -> Optional[Value]:
    """Return a replacement value, or None when nothing applies."""
    if isinstance(instr, BinOp):
        return _simplify_binop(instr)
    if isinstance(instr, UnOp):
        operand = instr.operand
        if isinstance(operand, Constant):
            if instr.op == "neg":
                comps = tuple(-c for c in operand.components())
                return Constant(operand.ty, comps if operand.ty.is_vector else comps[0])
            return Constant(operand.ty, not operand.value)
        if isinstance(operand, UnOp) and operand.op == instr.op:
            return operand.operand  # --x -> x, !!x -> x
        return None
    if isinstance(instr, Cmp):
        if isinstance(instr.lhs, Constant) and isinstance(instr.rhs, Constant):
            return Constant.bool_(bool(_cmp(instr.op, instr.lhs.value, instr.rhs.value)))
        return None
    if isinstance(instr, Convert):
        if isinstance(instr.value, Constant):
            source = instr.value
            if source.ty.is_vector:
                comps = tuple(_convert_scalar(c, instr.ty.kind)
                              for c in source.components())
                return Constant(instr.ty, comps)
            return Constant(instr.ty, _convert_scalar(source.value, instr.ty.kind))
        if instr.value.ty.kind == instr.ty.kind:
            return instr.value
        return None
    if isinstance(instr, Select):
        if isinstance(instr.cond, Constant):
            return instr.if_true if instr.cond.value else instr.if_false
        if instr.if_true is instr.if_false:
            return instr.if_true
        return None
    if isinstance(instr, ExtractElem):
        vector = instr.vector
        if isinstance(vector, Constant):
            return Constant(vector.ty.scalar, vector.components()[instr.index])
        if isinstance(vector, Construct):
            return vector.operands[instr.index]
        if isinstance(vector, Shuffle):
            instr.operands[0] = vector.source
            instr.index = vector.mask[instr.index]
            return instr  # mutated in place; signal no replacement
        if isinstance(vector, InsertElem):
            if vector.index == instr.index:
                return vector.scalar
            # extracting a lane the insert did not touch: look through it
            instr.operands[0] = vector.vector
            return instr
        if isinstance(vector, Undef):
            return Constant(vector.ty.scalar,
                            0.0 if vector.ty.kind == "float" else 0)
        return None
    if isinstance(instr, Shuffle):
        source = instr.source
        if isinstance(source, Constant):
            comps = source.components()
            picked = tuple(comps[i] for i in instr.mask)
            if len(picked) == 1:
                return Constant(source.ty.scalar, picked[0])
            return Constant(instr.ty, picked)
        if (len(instr.mask) == source.ty.width
                and instr.mask == list(range(source.ty.width))):
            return source
        if isinstance(source, Shuffle):
            instr.mask = [source.mask[i] for i in instr.mask]
            instr.operands[0] = source.source
            return instr
        return None
    if isinstance(instr, Construct):
        if all(isinstance(op, Constant) for op in instr.operands):
            return Constant(instr.ty, tuple(op.value for op in instr.operands))
        # vecN(v.x, v.y, ..., v.w) -> v
        sources = set()
        indices = []
        for op in instr.operands:
            if isinstance(op, ExtractElem):
                sources.add(id(op.vector))
                indices.append(op.index)
            else:
                return None
        if len(sources) == 1:
            vector = instr.operands[0].vector  # type: ignore[attr-defined]
            if vector.ty == instr.ty and indices == list(range(instr.ty.width)):
                return vector
        return None
    if isinstance(instr, Call):
        if all(isinstance(op, Constant) for op in instr.operands):
            args = [op.value for op in instr.operands]
            try:
                result = _apply_builtin(instr.callee, args, instr.ty.width)
            except Exception:
                return None
            return Constant(instr.ty, result)
        return None
    if isinstance(instr, LoadElem):
        slot = instr.slot
        if slot.const_init is not None and isinstance(instr.index, Constant):
            index = int(instr.index.value)
            if 0 <= index < len(slot.const_init):
                return slot.const_init[index]
        return None
    return None


def _simplify_binop(instr: BinOp) -> Optional[Value]:
    lhs, rhs = instr.lhs, instr.rhs
    if isinstance(lhs, Constant) and isinstance(rhs, Constant):
        result = _binop(instr.op, lhs.value, rhs.value)
        return Constant(instr.ty, result)

    kind = instr.ty.kind
    # Integer/bool identities are safe; float identities belong to the
    # (unsafe) reassociation flag passes per the paper.
    if kind == "int":
        if instr.op == "add":
            if isinstance(rhs, Constant) and rhs.is_zero:
                return lhs
            if isinstance(lhs, Constant) and lhs.is_zero:
                return rhs
        if instr.op == "sub" and isinstance(rhs, Constant) and rhs.is_zero:
            return lhs
        if instr.op == "mul":
            if isinstance(rhs, Constant) and rhs.is_one:
                return lhs
            if isinstance(lhs, Constant) and lhs.is_one:
                return rhs
            if isinstance(rhs, Constant) and rhs.is_zero:
                return rhs
            if isinstance(lhs, Constant) and lhs.is_zero:
                return lhs
        if instr.op == "div" and isinstance(rhs, Constant) and rhs.is_one:
            return lhs
    if kind == "bool":
        for a, b in ((lhs, rhs), (rhs, lhs)):
            if isinstance(a, Constant):
                if instr.op == "and":
                    return b if a.value else a
                if instr.op == "or":
                    return a if a.value else b
        if instr.op in ("and", "or") and lhs is rhs:
            return lhs
    return None
