"""The Coalesce flag: turn chains of single-element vector insertions into
one swizzled/constructed vector assignment.

LunarGlass description: "Change multiple individual vector element insertions
into a single swizzled vector assignment."  In IR terms: an InsertElem chain
that fully defines a vector becomes a single Construct; partially-defining
chains over an existing vector are left alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.instructions import Construct, ExtractElem, InsertElem, Shuffle
from repro.ir.module import Function
from repro.ir.values import Constant, Undef, Value
from repro.passes.trees import insert_before, use_counts


def coalesce(function: Function) -> int:
    """Fuse insert-element chains into single vector constructs; returns the
    number of chains rewritten."""
    changed = 0
    uses = use_counts(function)
    for block in function.blocks:
        for instr in list(block.instrs):
            if not isinstance(instr, InsertElem) or instr.block is None:
                continue
            if _is_chain_tail(instr, uses, function):
                if _coalesce_chain(function, instr, uses):
                    changed += 1
    changed += _construct_to_shuffle(function)
    return changed


def _is_chain_tail(instr: InsertElem, uses, function: Function) -> bool:
    """True when no other InsertElem continues this chain."""
    for other in function.instructions():
        if isinstance(other, InsertElem) and other.vector is instr:
            return False
    return True


def _coalesce_chain(function: Function, tail: InsertElem, uses) -> bool:
    width = tail.ty.width
    lanes: List[Optional[Value]] = [None] * width
    node: Value = tail
    # Walk the chain toward its base, honouring later-insert-wins.
    while isinstance(node, InsertElem):
        if lanes[node.index] is None:
            lanes[node.index] = node.scalar
        if node is not tail and uses.get(id(node), 0) > 1:
            return False  # intermediate value observed elsewhere
        node = node.vector
    base = node

    if any(lane is None for lane in lanes):
        if isinstance(base, (Undef,)):
            return False  # partially-defined vector; leave alone
        if isinstance(base, Constant):
            comps = base.components()
            for i in range(width):
                if lanes[i] is None:
                    lanes[i] = Constant(base.ty.scalar, comps[i])
        else:
            for i in range(width):
                if lanes[i] is None:
                    extract = insert_before(tail, ExtractElem(base, i))
                    lanes[i] = extract

    construct = insert_before(tail, Construct(tail.ty, [v for v in lanes]))  # type: ignore[misc]
    function.replace_all_uses(tail, construct)
    if tail.block is not None:
        tail.block.remove(tail)
    return True


def _construct_to_shuffle(function: Function) -> int:
    """vecN(v.a, v.b, ...) from one source vector -> a single Shuffle."""
    changed = 0
    for block in function.blocks:
        for instr in list(block.instrs):
            if not isinstance(instr, Construct):
                continue
            sources = []
            mask = []
            ok = True
            for op in instr.operands:
                if isinstance(op, ExtractElem):
                    sources.append(op.vector)
                    mask.append(op.index)
                else:
                    ok = False
                    break
            if not ok or not sources:
                continue
            first = sources[0]
            if any(s is not first for s in sources):
                continue
            if mask == list(range(first.ty.width)) and first.ty == instr.ty:
                replacement: Value = first
            else:
                replacement = insert_before(instr, Shuffle(first, mask))
            function.replace_all_uses(instr, replacement)
            block.remove(instr)
            changed += 1
    return changed
