"""The integer Reassociate flag pass.

Per the paper (Section VI-D-3): reorders *integer* arithmetic to simplify it,
plus a couple of floating-point identities — "some floating-point expressions
like f × 0" and removing "unnecessary additions of zero in floating point
calculations", which the paper notes is where most of this pass's visible
impact actually comes from (integers are rare in shaders).
"""

from __future__ import annotations

from repro.ir.instructions import BinOp
from repro.ir.module import Function
from repro.ir.values import Constant
from repro.passes.trees import (
    build_add_chain, build_mul_chain, flatten_add_tree, flatten_mul_tree,
    leaf_order_key, use_counts,
)


def reassociate(function: Function) -> int:
    """Safe reassociation: float identities plus integer add/mul tree
    rewrites; returns the number of rewrites."""
    changed = 0
    changed += _float_identities(function)
    changed += _integer_trees(function)
    return changed


def _float_identities(function: Function) -> int:
    """f + 0.0 -> f and f * 0.0 -> 0.0 (the paper's observed behaviour)."""
    changed = 0
    for block in function.blocks:
        for instr in list(block.instrs):
            if not isinstance(instr, BinOp) or instr.ty.kind != "float":
                continue
            replacement = None
            if instr.op == "add":
                if isinstance(instr.rhs, Constant) and instr.rhs.is_zero:
                    replacement = instr.lhs
                elif isinstance(instr.lhs, Constant) and instr.lhs.is_zero:
                    replacement = instr.rhs
            elif instr.op == "sub":
                if isinstance(instr.rhs, Constant) and instr.rhs.is_zero:
                    replacement = instr.lhs
            elif instr.op == "mul":
                if isinstance(instr.rhs, Constant) and instr.rhs.is_zero:
                    replacement = instr.rhs
                elif isinstance(instr.lhs, Constant) and instr.lhs.is_zero:
                    replacement = instr.lhs
            if replacement is not None:
                function.replace_all_uses(instr, replacement)
                block.remove(instr)
                changed += 1
    return changed


def _integer_trees(function: Function) -> int:
    from repro.passes.fp_reassociate import _tree_roots

    changed = 0
    uses = use_counts(function)
    absorbed_add = _tree_roots(function, ("add", "sub"), kind="int")
    absorbed_mul = _tree_roots(function, ("mul",), kind="int")
    for block in function.blocks:
        for instr in list(block.instrs):
            if (not isinstance(instr, BinOp) or instr.ty.kind != "int"
                    or not instr.ty.is_scalar or instr.block is None):
                continue
            if instr.op in ("add", "sub") and not absorbed_add.get(id(instr)):
                changed += _reassociate_add(function, instr, uses)
            elif instr.op == "mul" and not absorbed_mul.get(id(instr)):
                changed += _reassociate_mul(function, instr, uses)
    return changed


def _reassociate_add(function: Function, root: BinOp, uses) -> int:
    leaves = flatten_add_tree(root, "int", uses)
    if len(leaves) < 2:
        return 0
    constants = [(s, v) for s, v in leaves if isinstance(v, Constant)]
    others = [(s, v) for s, v in leaves if not isinstance(v, Constant)]
    if len(constants) < 2 and not (constants and constants[0][1].is_zero):
        return 0
    total = 0
    for sign, const in constants:
        total += sign * const.value  # type: ignore[operator]
    others.sort(key=leaf_order_key)
    folded = Constant(root.ty, int(total)) if total else None
    result = build_add_chain(root, others, folded)
    function.replace_all_uses(root, result)
    if root.block is not None:
        root.block.remove(root)
    return 1


def _reassociate_mul(function: Function, root: BinOp, uses) -> int:
    leaves = flatten_mul_tree(root, "int", uses)
    if len(leaves) < 2:
        return 0
    constants = [v for v in leaves if isinstance(v, Constant)]
    others = [v for v in leaves if not isinstance(v, Constant)]
    if len(constants) < 2 and not (constants and constants[0].is_one):
        return 0
    product = 1
    for const in constants:
        product *= const.value  # type: ignore[operator]
    others.sort(key=leaf_order_key)
    folded = Constant(root.ty, int(product)) if product != 1 else None
    result = build_mul_chain(root, others, folded)
    function.replace_all_uses(root, result)
    if root.block is not None:
        root.block.remove(root)
    return 1
