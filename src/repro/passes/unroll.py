"""The Unroll flag: full unrolling of constant-trip-count loops.

LunarGlass description: "Simple loop unrolling for constant loop indices."
A loop qualifies when:

- it has a single latch and its only exit edge leaves from the header;
- the header condition compares an induction phi against a constant;
- the induction phi starts at a constant and steps by a constant each trip;
- the trip count (found by simulating the induction variable) is at most
  :data:`MAX_TRIPS` and body-size * trips is at most :data:`MAX_GROWTH`.

The body blocks are cloned once per iteration (the "large basic blocks"
artifact follows after the always-on cleanup folds the cloned control flow).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.cfg import NaturalLoop, find_natural_loops, reverse_postorder
from repro.ir.instructions import (
    BinOp, Br, Call, Cmp, CondBr, Construct, Convert, Discard, ExtractElem,
    InsertElem, Instr, LoadElem, LoadGlobal, LoadVar, Phi, Ret, Sample, Select,
    Shuffle, StoreElem, StoreOutput, StoreVar, Terminator, UnOp,
)
from repro.ir.interp import _binop, _cmp
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Constant, Value

MAX_TRIPS = 64
MAX_GROWTH = 4096  # instructions


def unroll(function: Function, max_trips: int = MAX_TRIPS,
           max_growth: int = MAX_GROWTH) -> int:
    """Fully unroll every qualifying loop; returns loops unrolled.

    ``max_trips``/``max_growth`` let the simulated vendor JITs model drivers
    with weaker unrolling heuristics than the offline tool.
    """
    unrolled = 0
    # Re-discover loops after each unroll (nested loops change shape).
    for _ in range(16):
        loops = find_natural_loops(function)
        target = None
        plan = None
        for loop in loops:
            plan = _plan(function, loop, max_trips, max_growth)
            if plan is not None:
                target = loop
                break
        if target is None or plan is None:
            break
        _apply(function, target, *plan)
        unrolled += 1
    return unrolled


def _plan(function: Function, loop: NaturalLoop,
          max_trips: int = MAX_TRIPS, max_growth: int = MAX_GROWTH):
    """Check legality and compute (phi, trips, preheader, exit)."""
    header = loop.header
    if len(loop.latches) != 1:
        return None
    latch = loop.latches[0]

    preds = function.predecessors()
    outside_preds = [p for p in preds[header] if p not in loop.blocks]
    if len(outside_preds) != 1:
        return None
    preheader = outside_preds[0]

    term = header.terminator
    if not isinstance(term, CondBr):
        return None
    if term.if_true in loop.blocks and term.if_false not in loop.blocks:
        exit_block = term.if_false
        body_entry = term.if_true
        exit_when_false = True
    elif term.if_false in loop.blocks and term.if_true not in loop.blocks:
        exit_block = term.if_true
        body_entry = term.if_false
        exit_when_false = False
    else:
        return None

    # The ONLY exit must be the header's (no breaks / returns inside).
    for block in loop.blocks:
        if block is header:
            continue
        for succ in block.successors():
            if succ not in loop.blocks:
                return None
        if isinstance(block.terminator, (Ret, Discard)):
            return None

    # Find the induction phi driving the condition.
    cond = term.cond
    if not isinstance(cond, Cmp):
        return None
    phi, bound = None, None
    if isinstance(cond.lhs, Phi) and cond.lhs.block is header and isinstance(
            cond.rhs, Constant):
        phi, bound, flipped = cond.lhs, cond.rhs, False
    elif isinstance(cond.rhs, Phi) and cond.rhs.block is header and isinstance(
            cond.lhs, Constant):
        phi, bound, flipped = cond.rhs, cond.lhs, True
    else:
        return None

    init = None
    step_value = None
    for pred, value in phi.incoming:
        if pred is preheader:
            init = value
        elif pred is latch:
            step_value = value
    if not isinstance(init, Constant) or step_value is None:
        return None
    if not (isinstance(step_value, BinOp) and step_value.op in ("add", "sub")):
        return None
    if step_value.lhs is phi and isinstance(step_value.rhs, Constant):
        step = step_value.rhs.value
        if step_value.op == "sub":
            step = -step  # type: ignore[operator]
    elif step_value.rhs is phi and isinstance(step_value.lhs, Constant) and \
            step_value.op == "add":
        step = step_value.lhs.value
    else:
        return None
    if step == 0:
        return None

    # Simulate the induction variable to find the trip count.
    trips = 0
    i = init.value
    while trips <= max_trips:
        taken = _cmp(cond.op, bound.value, i) if flipped else _cmp(
            cond.op, i, bound.value)
        stays = taken if exit_when_false else not taken
        if not stays:
            break
        trips += 1
        i = i + step  # type: ignore[operator]
    else:
        return None
    if trips == 0:
        return None

    body_size = sum(len(b.instrs) for b in loop.blocks)
    if body_size * trips > max_growth:
        return None

    # Values escaping the loop must be header phis (anything else would need
    # a final partial header clone; LunarGlass's simple unroller bails too).
    header_phi_set = set(header.phis())
    loop_values = set()
    for block in loop.blocks:
        for instr in block.instrs:
            loop_values.add(id(instr))
    for block in function.blocks:
        if block in loop.blocks:
            continue
        for instr in block.instrs:
            if isinstance(instr, Phi):
                candidates = [v for _, v in instr.incoming]
            else:
                candidates = list(instr.operands)
            for value in candidates:
                if id(value) in loop_values and value not in header_phi_set:
                    return None

    return (phi, trips, preheader, exit_block, body_entry, latch, init, step)


def _apply(function: Function, loop: NaturalLoop, phi: Phi, trips: int,
           preheader: BasicBlock, exit_block: BasicBlock,
           body_entry: BasicBlock, latch: BasicBlock,
           init: Constant, step) -> None:
    header = loop.header
    loop_blocks = [b for b in reverse_postorder(function) if b in loop.blocks]
    header_phis = header.phis()

    # phi -> current value at the start of the iteration being cloned.
    current: Dict[Phi, Value] = {}
    for hphi in header_phis:
        for pred, value in hphi.incoming:
            if pred is preheader:
                current[hphi] = value

    def latch_incoming(hphi: Phi) -> Value:
        for pred, value in hphi.incoming:
            if pred is latch:
                return value
        raise AssertionError("phi lacks latch incoming")

    insert_at = function.blocks.index(exit_block)
    prev_tail: BasicBlock = preheader
    prev_tail_target = header  # the branch in prev_tail currently aims here

    for _trip in range(trips):
        block_map: Dict[BasicBlock, BasicBlock] = {}
        value_map: Dict[Value, Value] = dict(current)
        new_blocks: List[BasicBlock] = []
        for old in loop_blocks:
            clone = BasicBlock(f"{old.name}.u{_trip}")
            block_map[old] = clone
            new_blocks.append(clone)
        # Branches cloned inside this trip must NOT remap the header: the
        # latch's backedge stays aimed at the original header as a
        # placeholder, redirected to the next trip (or the exit) later.
        branch_map = {b: c for b, c in block_map.items() if b is not header}

        # Inner phis (if-merges, nested loop headers) may reference values
        # cloned later in the trip (back edges), so create shells first and
        # patch their incoming lists after the whole trip is cloned.
        inner_phis = []
        for old in loop_blocks:
            if old is header:
                continue  # header phis replaced via value_map
            clone = block_map[old]
            for instr in old.instrs:
                if isinstance(instr, Phi):
                    new_phi = Phi(instr.ty)
                    clone.instrs.append(new_phi)
                    new_phi.block = clone
                    value_map[instr] = new_phi
                    inner_phis.append((instr, new_phi))

        for old in loop_blocks:
            clone = block_map[old]
            for instr in old.instrs:
                if isinstance(instr, Phi):
                    continue
                if old is header and isinstance(instr, Terminator):
                    clone.append(Br(block_map[body_entry]))
                    continue
                new_instr = _clone_instr(instr, value_map, branch_map)
                clone.instrs.append(new_instr)
                new_instr.block = clone
                if not isinstance(new_instr, Terminator):
                    value_map[instr] = new_instr

        for old_phi, new_phi in inner_phis:
            for pred, value in old_phi.incoming:
                # Full block_map here (unlike branch targets): an inner-loop
                # header may have the outer header as its predecessor, and
                # that edge now comes from this trip's header clone.
                new_phi.add_incoming(block_map.get(pred, pred),
                                     value_map.get(value, value))

        # Chain the previous tail into this iteration's header clone.
        _redirect(prev_tail, prev_tail_target, block_map[header])
        prev_tail = block_map[latch]
        prev_tail_target = header  # the cloned latch branch still aims at header

        # Advance induction/accumulator values for the next iteration.
        next_values: Dict[Phi, Value] = {}
        for hphi in header_phis:
            incoming = latch_incoming(hphi)
            next_values[hphi] = value_map.get(incoming, incoming)
        current = next_values

        for clone in new_blocks:
            function.blocks.insert(insert_at, clone)
            insert_at += 1

    # After the last iteration, branch to the exit.
    _redirect(prev_tail, prev_tail_target, exit_block)

    # The exit edge used to come from the header: fix exit phis.
    for ephi in exit_block.phis():
        for index, (pred, value) in enumerate(list(ephi.incoming)):
            if pred is header:
                ephi.incoming[index] = (prev_tail, current.get(value, value))
        ephi._sync_operands()

    # Uses of header phis (and other loop values) outside the loop now refer
    # to the final iteration's values.
    final_map: Dict[Value, Value] = dict(current)
    for block in function.blocks:
        if block in loop.blocks:
            continue
        for instr in block.instrs:
            for old_val, new_val in final_map.items():
                if old_val in instr.operands:
                    instr.replace_operand(old_val, new_val)

    # Remove the original loop blocks.
    for block in loop_blocks:
        if block in function.blocks:
            function.blocks.remove(block)
    function.remove_unreachable_blocks()


def _redirect(block: BasicBlock, old_target: BasicBlock,
              new_target: BasicBlock) -> None:
    term = block.terminator
    if isinstance(term, Br) and term.target is old_target:
        term.target = new_target
    elif isinstance(term, CondBr):
        if term.if_true is old_target:
            term.if_true = new_target
        if term.if_false is old_target:
            term.if_false = new_target


def _clone_instr(instr: Instr, value_map: Dict[Value, Value],
                 block_map: Dict[BasicBlock, BasicBlock]) -> Instr:
    def m(value: Value) -> Value:
        return value_map.get(value, value)

    if isinstance(instr, BinOp):
        return BinOp(instr.op, m(instr.lhs), m(instr.rhs))
    if isinstance(instr, Cmp):
        return Cmp(instr.op, m(instr.lhs), m(instr.rhs))
    if isinstance(instr, UnOp):
        return UnOp(instr.op, m(instr.operand))
    if isinstance(instr, Convert):
        return Convert(m(instr.value), instr.ty.kind)
    if isinstance(instr, Select):
        return Select(m(instr.cond), m(instr.if_true), m(instr.if_false))
    if isinstance(instr, ExtractElem):
        return ExtractElem(m(instr.vector), instr.index)
    if isinstance(instr, InsertElem):
        return InsertElem(m(instr.vector), m(instr.scalar), instr.index)
    if isinstance(instr, Shuffle):
        return Shuffle(m(instr.source), list(instr.mask))
    if isinstance(instr, Construct):
        return Construct(instr.ty, [m(op) for op in instr.operands])
    if isinstance(instr, Call):
        return Call(instr.callee, instr.ty, [m(op) for op in instr.operands])
    if isinstance(instr, Sample):
        lod = m(instr.lod) if instr.lod is not None else None
        return Sample(instr.sampler, instr.sampler_kind, instr.ty,
                      m(instr.coord), lod)
    if isinstance(instr, LoadGlobal):
        element = m(instr.element) if instr.element is not None else None
        return LoadGlobal(instr.var, instr.ty, instr.kind,
                          column=instr.column, element=element)
    if isinstance(instr, StoreOutput):
        return StoreOutput(instr.var, m(instr.value))
    if isinstance(instr, LoadVar):
        return LoadVar(instr.slot)
    if isinstance(instr, StoreVar):
        return StoreVar(instr.slot, m(instr.value))
    if isinstance(instr, LoadElem):
        return LoadElem(instr.slot, m(instr.index))
    if isinstance(instr, StoreElem):
        return StoreElem(instr.slot, m(instr.index), m(instr.value))
    if isinstance(instr, Br):
        return Br(block_map.get(instr.target, instr.target))
    if isinstance(instr, CondBr):
        return CondBr(m(instr.cond),
                      block_map.get(instr.if_true, instr.if_true),
                      block_map.get(instr.if_false, instr.if_false))
    raise AssertionError(f"cannot clone {instr.opcode}")
