"""Evaluation engine: one flag combination of one shader on one platform.

The engine wraps :class:`ShaderCompiler` (front-end work shared across
combinations) and :class:`ShaderExecutionEnvironment` (per-platform timing)
behind a single ``evaluate(case, flags, platform)`` call, backed by the
content-addressed :class:`ResultCache`.  Three memo layers keep repeated
work off the hot path:

1. front-end lowering — one :class:`ShaderCompiler` per distinct source;
2. pass pipeline — emitted text per (source, flag index);
3. measurement — cached per (text, platform, seed), so flag combinations
   that collapse to the same emitted text (most of them — Fig. 4c) are
   timed once.

Every layer is keyed on content hashes, so a disk-backed cache survives
process restarts: repeated ``tune`` runs, repeated studies, and the
benchmark suite all skip work they have already paid for.  (Study and
``tune`` entries don't cross-hit each other: the study keeps the paper's
per-variant measurement seeds for protocol fidelity, while ``tune`` keys
every measurement on the engine's single seed.)
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.corpus_trie import (
    CorpusTrie, CorpusTrieStats, shared_corpus_trie,
)
from repro.core.pipeline import ShaderCompiler, VariantSet
from repro.gpu.platform import Platform, all_platforms
from repro.harness.environment import ShaderExecutionEnvironment
from repro.harness.results import ShaderCase
from repro.passes import OptimizationFlags
from repro.search.cache import ResultCache, make_key, source_digest

FlagsLike = Union[OptimizationFlags, int]
PlatformLike = Union[Platform, str]


@dataclass(frozen=True)
class Sample:
    """One measurement of one shader text on one platform."""

    mean_ns: float
    static_ops: int
    registers: int


@dataclass(frozen=True)
class Evaluation:
    """The outcome of evaluating one flag combination of one shader."""

    shader: str
    flag_index: int
    platform: str
    mean_ns: float
    original_ns: float
    static_ops: int
    registers: int
    text_hash: str
    from_cache: bool = False

    @property
    def speedup_pct(self) -> float:
        """Percentage speed-up over the unaltered shader (the paper metric)."""
        return (self.original_ns / self.mean_ns - 1.0) * 100.0


class EvaluationEngine:
    """Compile-and-measure service shared by the study, ``tune``, and tests."""

    def __init__(self, platforms: Optional[Sequence[Platform]] = None,
                 seed: int = 2018, cache: Optional[ResultCache] = None,
                 corpus_trie: Optional[CorpusTrie] = None):
        self.platforms: List[Platform] = list(platforms or all_platforms())
        self.seed = seed
        self.cache = cache if cache is not None else ResultCache()
        #: the corpus-global state trie ``REPRO_COMPILE=corpus`` compiles
        #: through; None means the process-wide shared instance (resolved
        #: lazily so non-corpus runs never build one).  Tests pass a
        #: private trie for isolation.
        self._corpus_trie = corpus_trie
        self._environments: Dict[str, ShaderExecutionEnvironment] = {
            p.name: ShaderExecutionEnvironment(p) for p in self.platforms}
        self._compilers: Dict[str, ShaderCompiler] = {}
        self._variant_sets: Dict[str, VariantSet] = {}
        self._texts: Dict[Tuple[str, int], str] = {}
        # Work counters, exposed so tests can assert cache semantics.
        self.frontend_count = 0     # ShaderCompiler constructions
        self.compile_count = 0      # pass-pipeline runs (per flag combo)
        self.measure_count = 0      # actual environment executions
        # Per-thread cooperative-cancellation hook (see set_cancel_check):
        # thread-local so service workers sharing one engine each cancel
        # only their own job.
        self._cancel_local = threading.local()

    # ------------------------------------------------------------------
    # Cooperative cancellation
    # ------------------------------------------------------------------

    def set_cancel_check(self, check: Optional[Callable[[], None]]) -> None:
        """Install (or clear, with ``None``) this thread's cancel hook.

        The hook is a zero-argument callable invoked at every compile and
        measurement boundary; it cancels the in-flight work by raising.
        The ``repro serve`` worker pool uses it to enforce per-job
        ``--timeout`` deadlines and client-requested cancellation without
        wedging a worker mid-study.
        """
        self._cancel_local.check = check

    def check_cancelled(self) -> None:
        """Run this thread's cancel hook, if any (no-op otherwise)."""
        check = getattr(self._cancel_local, "check", None)
        if check is not None:
            check()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def environment(self, platform: PlatformLike) -> ShaderExecutionEnvironment:
        name = platform.name if isinstance(platform, Platform) else platform
        try:
            return self._environments[name]
        except KeyError:
            raise KeyError(f"platform {name!r} not configured on this engine; "
                           f"have {sorted(self._environments)}") from None

    @property
    def corpus_trie(self) -> CorpusTrie:
        """The corpus-global state trie this engine compiles through
        (``REPRO_COMPILE=corpus``); the process-wide shared one by default."""
        if self._corpus_trie is None:
            self._corpus_trie = shared_corpus_trie()
        return self._corpus_trie

    @property
    def corpus_stats(self) -> CorpusTrieStats:
        """Hit/miss/interned-state counters of the corpus trie — the
        observability hook mirroring the zero-work counters: all zeros
        unless the study actually ran under ``REPRO_COMPILE=corpus``."""
        return self.corpus_trie.stats

    @property
    def corpus_hit_count(self) -> int:
        """Pipeline steps served from the corpus trie's edge memo."""
        return self.corpus_stats.hits

    @property
    def corpus_miss_count(self) -> int:
        """Pipeline steps the corpus trie actually had to run."""
        return self.corpus_stats.pass_runs

    @property
    def corpus_state_count(self) -> int:
        """Distinct IR states the corpus trie has interned."""
        return self.corpus_stats.interned_states

    def compiler_for(self, source: str) -> ShaderCompiler:
        digest = source_digest(source)
        compiler = self._compilers.get(digest)
        if compiler is None:
            self.frontend_count += 1
            compiler = ShaderCompiler(source)
            self._compilers[digest] = compiler
        return compiler

    def variants_for(self, case: ShaderCase) -> VariantSet:
        """The full deduplicated 256-combination variant set.

        Memoized in-process and persisted in the result cache, so a warm
        disk cache replays the whole study without a single pass-pipeline
        run (the report pipeline's zero-compile re-render guarantee).
        """
        self.check_cancelled()
        digest = source_digest(case.source)
        variant_set = self._variant_sets.get(digest)
        if variant_set is None:
            cached = self.cache.get_variants(digest)
            if cached is not None:
                variant_set = self.prime_variants(case.source, cached)
            else:
                self.compile_count += 256
                variant_set = self.compiler_for(case.source).all_variants(
                    trie=self._corpus_trie)
                self._variant_sets[digest] = variant_set
                self._texts.update({(digest, index): text for index, text
                                    in variant_set.index_to_text.items()})
                self.cache.put_variants(digest, variant_set.index_to_text)
        return variant_set

    def has_variants(self, source: str) -> bool:
        digest = source_digest(source)
        return digest in self._variant_sets or self.cache.has_variants(digest)

    def prime_variants(self, source: str,
                       index_to_text: Dict[int, str]) -> VariantSet:
        """Install a variant set compiled elsewhere (e.g. a pool worker).

        Grouping iterates indices in ascending order, matching the flag
        ordering ``all_variants`` produces in-process.
        """
        by_text: Dict[str, List[OptimizationFlags]] = {}
        for index in sorted(index_to_text):
            flags = OptimizationFlags.from_index(index)
            by_text.setdefault(index_to_text[index], []).append(flags)
        variant_set = VariantSet(by_text, dict(index_to_text))
        digest = source_digest(source)
        self._variant_sets[digest] = variant_set
        self._texts.update({(digest, index): text
                            for index, text in index_to_text.items()})
        if not self.cache.has_variants(digest):
            self.cache.put_variants(digest, variant_set.index_to_text)
        return variant_set

    def release_case(self, source: str) -> None:
        """Drop the in-process compiled memos for *source* (streaming mode).

        The result cache keeps the compiled variant set (streaming stores
        have already appended it to disk), so a later request for the same
        source falls back to the cache and, failing that, recompiles —
        correctness is unaffected, only memory residency.  The study's
        streaming path calls this per finished case so a huge synth corpus
        holds one case's 256 variant texts in memory, not all of them.
        """
        digest = source_digest(source)
        self._compilers.pop(digest, None)
        variant_set = self._variant_sets.pop(digest, None)
        if variant_set is not None:
            for index in variant_set.index_to_text:
                self._texts.pop((digest, index), None)
        self.cache.release_variants(digest)

    def text_for(self, source: str, flags: FlagsLike) -> str:
        """Emitted text of *source* under *flags* (memoized per flag index)."""
        flags = self._coerce_flags(flags)
        digest = source_digest(source)
        key = (digest, flags.index)
        text = self._texts.get(key)
        if text is None:
            self.compile_count += 1
            text = self.compiler_for(source).compile(flags).output
            self._texts[key] = text
        return text

    @staticmethod
    def _coerce_flags(flags: FlagsLike) -> OptimizationFlags:
        if isinstance(flags, OptimizationFlags):
            return flags
        return OptimizationFlags.from_index(flags)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def measure(self, text: str, platform: PlatformLike,
                seed: Optional[int] = None) -> Sample:
        """Time one shader text on one platform, through the result cache."""
        seed = self.seed if seed is None else seed
        return self.measure_many(text, platform, [seed])[0]

    def measure_many(self, text: str, platform: PlatformLike,
                     seeds: Sequence[int]) -> List[Sample]:
        """Time one shader text under every measurement seed, through the
        result cache.

        The uncached seeds run as one
        :meth:`~repro.harness.environment.ShaderExecutionEnvironment.run_many`
        batch: in the default ``REPRO_MEASURE=batched`` mode the driver
        JIT, the (lane-batched) interpreter profile, and the cost model
        run once for the whole unit and only the seed-dependent timer
        protocol repeats, so the module is traversed once rather than once
        per seed.  Samples come back in *seeds* order, bit-identical to
        per-seed :meth:`measure` calls.
        """
        self.check_cancelled()
        name = platform.name if isinstance(platform, Platform) else platform
        samples: List[Optional[Sample]] = []
        pending: List[Tuple[int, int]] = []
        for position, seed in enumerate(seeds):
            cached = self.cache.get(make_key(text, -1, name, seed))
            if cached is not None:
                samples.append(Sample(mean_ns=cached["mean_ns"],
                                      static_ops=int(cached["static_ops"]),
                                      registers=int(cached["registers"])))
            else:
                samples.append(None)
                pending.append((position, seed))
        if pending:
            reports = self.environment(name).run_many(
                text, [seed for _, seed in pending])
            for (position, seed), report in zip(pending, reports):
                self.measure_count += 1
                sample = Sample(mean_ns=report.measurement.mean_ns,
                                static_ops=report.cost.static_ops,
                                registers=report.cost.registers)
                self.cache.put(make_key(text, -1, name, seed),
                               {"mean_ns": sample.mean_ns,
                                "static_ops": sample.static_ops,
                                "registers": sample.registers})
                samples[position] = sample
        return samples  # type: ignore[return-value]

    def original(self, case: ShaderCase, platform: PlatformLike) -> Sample:
        """Measurement of the unaltered shader (the speed-up baseline)."""
        return self.measure(case.source, platform)

    def evaluate(self, case: ShaderCase, flags: FlagsLike,
                 platform: PlatformLike) -> Evaluation:
        """Full pipeline for one (shader, flags, platform) point.

        A result-cache hit on the ``sha256(source) x flag index x platform
        x seed`` key short-circuits before any compilation.
        """
        self.check_cancelled()
        flags = self._coerce_flags(flags)
        name = platform.name if isinstance(platform, Platform) else platform
        key = make_key(case.source, flags.index, name, self.seed)
        cached = self.cache.get(key)
        original = self.original(case, name)
        if cached is not None:
            return Evaluation(shader=case.name, flag_index=flags.index,
                              platform=name, mean_ns=cached["mean_ns"],
                              original_ns=original.mean_ns,
                              static_ops=int(cached["static_ops"]),
                              registers=int(cached["registers"]),
                              text_hash=cached["text_hash"], from_cache=True)
        text = self.text_for(case.source, flags)
        sample = self.measure(text, name)
        text_hash = hashlib.sha256(text.encode()).hexdigest()[:16]
        self.cache.put(key, {"mean_ns": sample.mean_ns,
                             "static_ops": sample.static_ops,
                             "registers": sample.registers,
                             "text_hash": text_hash})
        return Evaluation(shader=case.name, flag_index=flags.index,
                          platform=name, mean_ns=sample.mean_ns,
                          original_ns=original.mean_ns,
                          static_ops=sample.static_ops,
                          registers=sample.registers,
                          text_hash=text_hash)

    # ------------------------------------------------------------------
    # Search objectives
    # ------------------------------------------------------------------

    def corpus_objective(self, corpus: Sequence[ShaderCase],
                         platform: PlatformLike) -> Callable[[int], float]:
        """Mean speed-up (%) across *corpus* as a function of flag index —
        the Table I metric the search strategies maximize."""
        name = platform.name if isinstance(platform, Platform) else platform

        def objective(flag_index: int) -> float:
            if not corpus:
                return 0.0
            total = 0.0
            for case in corpus:
                total += self.evaluate(case, flag_index, name).speedup_pct
            return total / len(corpus)

        return objective
