"""Content-addressed result cache for flag-space evaluations.

Keys are built from ``sha256(source) x flag index x platform x seed`` so a
cached entry is valid exactly as long as the shader text, the flag
combination, the simulated platform, and the measurement seed are all
unchanged — evaluation order, corpus position, and strategy never matter.

The cache is a plain ``str -> dict`` map with an optional file behind it,
so repeated studies, ``tune`` runs, and benchmark invocations skip both
recompilation and re-measurement.  Two on-disk formats:

- ``*.json`` (default): one versioned JSON blob, rewritten atomically by
  :meth:`ResultCache.save`.
- ``*.jsonl``: an append-only streaming store — every new entry is written
  as one JSON line the moment it is ``put``, so a long sharded study
  checkpoints incrementally instead of rewriting an ever-growing blob, and
  a killed run keeps everything it had already measured (a torn final line
  is tolerated on load).

Either format is versioned; an incompatible or corrupt store is ignored
rather than trusted.  :meth:`ResultCache.merge_from` unions another store
into this one (the ``repro merge-results`` cache path), rejecting
conflicting values for the same key — with content-addressed keys and
deterministic measurement, a conflict can only mean corruption.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import threading
from functools import lru_cache
from pathlib import Path
from typing import Dict, IO, Optional, Union

logger = logging.getLogger("repro.search.cache")

#: Bump when the cached payload layout or the key recipe changes.
#: (Compiled variant sets are additive "variants:<digest>" entries, so
#: they did not need a version bump.)
CACHE_VERSION = 1


@lru_cache(maxsize=4096)
def source_digest(source: str) -> str:
    """The content address of one shader text.

    Memoized: ``make_key`` sits on the hot loop of every ``measure`` /
    ``evaluate`` call, and re-hashing a multi-kilobyte shader text per call
    dwarfs the dictionary lookup it guards.
    """
    return hashlib.sha256(source.encode()).hexdigest()


def make_key(source: str, flag_index: int, platform: str, seed: int) -> str:
    """``sha256(source) x flag index x platform x seed`` as one cache key.

    ``flag_index`` is -1 for entries addressing an already-emitted variant
    text (where the producing combination is irrelevant to the measurement).
    """
    return f"{source_digest(source)}:{flag_index}:{platform}:{seed}"


def _value_digest(value: object) -> str:
    """A short content digest of one cache value, for conflict reports."""
    blob = json.dumps(value, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


class ResultCache:
    """In-memory evaluation cache with an optional on-disk store.

    A ``*.jsonl`` path selects the append-only streaming store (entries hit
    disk as they are ``put``); any other path is the one-blob JSON store
    rewritten by :meth:`save`.

    The cache is safe for concurrent readers and writers within one
    process: every mutation (``put``/``put_variants``/``merge_from``) and
    every disk operation (stream append, ``save``, ``flush``) holds one
    re-entrant lock, so the ``repro serve`` worker pool can share a single
    process-wide instance across jobs and tenants.  Metered reads
    (``get``) take the lock too, keeping the hit/miss counters exact.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        #: guards _entries, the hit/miss counters, and the stream handle.
        self._lock = threading.RLock()
        self.path = Path(path) if path else None
        self._entries: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        #: True when the in-memory store has entries the disk hasn't seen;
        #: ``save()`` is a no-op otherwise, so a fully warm study/report
        #: replay never rewrites the (potentially large) JSON store.
        self._dirty = False
        self._streaming = (self.path is not None
                           and self.path.suffix == ".jsonl")
        self._stream_handle: Optional[IO[str]] = None
        #: set when the existing stream file is unusable (version skew,
        #: corrupt header): the first append truncates instead of appending.
        self._stream_rewrite = False
        if self.path is not None:
            self._load()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[dict]:
        """The entry for *key*, metering the hit/miss counters."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry

    def put(self, key: str, value: dict) -> None:
        """Store *value* under *key* (streaming stores append immediately)."""
        with self._lock:
            if self._entries.get(key) != value:
                self._entries[key] = value
                if self._streaming:
                    self._append_line({"k": key, "v": value})
                else:
                    self._dirty = True

    # ------------------------------------------------------------------
    # Compiled variant sets
    # ------------------------------------------------------------------
    # The pass pipeline is as cacheable as the measurements: persisting the
    # 256-combination emitted texts (deduplicated) lets a warm cache replay
    # a whole study — and the report pipeline on top of it — with zero
    # compiles.  These entries bypass the hit/miss counters, which meter
    # measurement lookups only.

    @staticmethod
    def variants_key(digest: str) -> str:
        return f"variants:{digest}"

    def has_variants(self, digest: str) -> bool:
        return self.variants_key(digest) in self._entries

    def get_variants(self, digest: str) -> Optional[Dict[int, str]]:
        """The stored ``flag index -> emitted text`` map, or None."""
        entry = self._entries.get(self.variants_key(digest))
        if not isinstance(entry, dict):
            return None
        try:
            texts = entry["texts"]
            return {int(index): texts[pos]
                    for index, pos in entry["combos"].items()}
        except (KeyError, IndexError, TypeError, ValueError, AttributeError):
            return None

    def put_variants(self, digest: str, index_to_text: Dict[int, str]) -> None:
        """Store a variant set, deduplicating the (heavily shared) texts.

        The real flag indices are stored (JSON-stringified), so sparse or
        partial maps round-trip faithfully.
        """
        texts: list = []
        positions: Dict[str, int] = {}
        combos: Dict[str, int] = {}
        for index in sorted(index_to_text):
            text = index_to_text[index]
            if text not in positions:
                positions[text] = len(texts)
                texts.append(text)
            combos[str(index)] = positions[text]
        entry = {"texts": texts, "combos": combos}
        with self._lock:
            if self._entries.get(self.variants_key(digest)) != entry:
                self._entries[self.variants_key(digest)] = entry
                if self._streaming:
                    self._append_line(
                        {"k": self.variants_key(digest), "v": entry})
                else:
                    self._dirty = True

    def release_variants(self, digest: str) -> None:
        """Evict a variants entry from memory once it is safely on disk.

        Only streaming stores evict (their entries were appended at ``put``
        time); for blob stores and memory-only caches this is a no-op, since
        evicting could drop data ``save()`` has not persisted yet.
        """
        if self._streaming:
            with self._lock:
                self._entries.pop(self.variants_key(digest), None)

    # ------------------------------------------------------------------
    # Disk store
    # ------------------------------------------------------------------

    def _load(self) -> None:
        if self.path is None or not self.path.exists():
            return
        if self._streaming:
            self._load_stream()
            return
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("version") != CACHE_VERSION:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries.update(entries)

    def _load_stream(self) -> None:
        """Replay a ``.jsonl`` store: a version header line, then one
        ``{"k":…,"v":…}`` record per line.  A torn final line (killed run)
        is ignored silently — that is the expected trace of a killed
        writer; a corrupt line anywhere *else* is real damage, so it is
        skipped with a logged warning while every intact record around it
        still loads.  A wrong-version or unparsable header discards the
        file (it is rewritten on the next append)."""
        try:
            text = self.path.read_text()
        except OSError:
            return
        lines = text.splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
        if not isinstance(header, dict) or header.get("version") != CACHE_VERSION:
            self._stream_rewrite = True
            return
        last = len(lines) - 1
        torn_tail = not text.endswith("\n")
        for index, line in enumerate(lines[1:], start=1):
            try:
                record = json.loads(line)
                self._entries[record["k"]] = record["v"]
            except (json.JSONDecodeError, KeyError, TypeError):
                if index == last and torn_tail:
                    continue
                logger.warning("%s: skipping corrupt record on line %d: %r",
                               self.path, index + 1, line[:80])

    def _append_line(self, record: dict) -> None:
        if self.path is None:
            return
        if self._stream_handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = (self._stream_rewrite or not self.path.exists()
                     or self.path.stat().st_size == 0)
            torn_tail = False
            if not fresh:
                # A killed writer can leave a torn final line with no
                # newline; appending straight after it would corrupt the
                # next record too.  Terminate the fragment first (the torn
                # line itself is already ignored by _load_stream).
                with open(self.path, "rb") as existing:
                    existing.seek(-1, os.SEEK_END)
                    torn_tail = existing.read(1) != b"\n"
            # Line-buffered: every record hits the OS the moment it is
            # written, so a killed run loses at most the line being torn.
            self._stream_handle = open(
                self.path, "w" if self._stream_rewrite else "a", buffering=1)
            self._stream_rewrite = False
            if torn_tail:
                self._stream_handle.write("\n")
            if fresh:
                self._stream_handle.write(
                    json.dumps({"version": CACHE_VERSION}) + "\n")
        self._stream_handle.write(json.dumps(record) + "\n")

    def merge_from(self, other: Union["ResultCache", str, Path]) -> int:
        """Union *other*'s entries into this store; returns how many were new.

        Conflicting values for the same key raise ``ValueError``: keys are
        content-addressed and measurement is deterministic, so two shard
        caches can only disagree through corruption or a version skew.
        The error names the offending key and both value digests, so an
        operator can grep each store for the damaged entry.
        """
        if not isinstance(other, ResultCache):
            other = ResultCache(other)
        with self._lock:
            added = 0
            for key, value in other._entries.items():
                mine = self._entries.get(key)
                if mine is None:
                    added += 1
                elif mine != value:
                    raise ValueError(
                        f"cache merge conflict on key {key!r}: this store "
                        f"has value digest {_value_digest(mine)}, the "
                        f"other {_value_digest(value)} — content-addressed "
                        f"stores can only disagree through corruption")
                self.put(key, value)
            return added

    def flush(self) -> None:
        """Push every buffered entry to the OS *now*.

        Streaming stores flush their line-buffered handle; blob stores do a
        full :meth:`save`.  This is the explicit checkpoint the long-running
        service calls between jobs — a daemon cannot rely on interpreter
        exit to persist its cache the way one-shot CLI runs do.
        """
        with self._lock:
            if self._streaming:
                if self._stream_handle is not None:
                    self._stream_handle.flush()
            else:
                self.save()

    def save(self) -> None:
        """Persist the store: flush for streaming stores; an atomic rewrite
        for blob stores (no-op for memory-only caches and when nothing
        changed since the last load/save)."""
        with self._lock:
            if self._streaming:
                if self._stream_handle is not None:
                    self._stream_handle.flush()
                return
            if self.path is None or not self._dirty:
                return
            payload = {"version": CACHE_VERSION, "entries": self._entries}
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(self.path.parent),
                                       prefix=self.path.name, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle)
                os.replace(tmp, self.path)
                self._dirty = False
            except BaseException:
                # Never leak the temp file, whatever the dump/replace raised
                # (TypeError on an unserializable entry, OSError, Ctrl-C).
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
