"""Content-addressed result cache for flag-space evaluations.

Keys are built from ``sha256(source) x flag index x platform x seed`` so a
cached entry is valid exactly as long as the shader text, the flag
combination, the simulated platform, and the measurement seed are all
unchanged — evaluation order, corpus position, and strategy never matter.

The cache is a plain ``str -> dict`` map with an optional JSON file behind
it, so repeated studies, ``tune`` runs, and benchmark invocations skip both
recompilation and re-measurement.  The on-disk format is versioned; an
incompatible or corrupt store is ignored rather than trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional, Union

#: Bump when the cached payload layout or the key recipe changes.
#: (Compiled variant sets are additive "variants:<digest>" entries, so
#: they did not need a version bump.)
CACHE_VERSION = 1


@lru_cache(maxsize=4096)
def source_digest(source: str) -> str:
    """The content address of one shader text.

    Memoized: ``make_key`` sits on the hot loop of every ``measure`` /
    ``evaluate`` call, and re-hashing a multi-kilobyte shader text per call
    dwarfs the dictionary lookup it guards.
    """
    return hashlib.sha256(source.encode()).hexdigest()


def make_key(source: str, flag_index: int, platform: str, seed: int) -> str:
    """``sha256(source) x flag index x platform x seed`` as one cache key.

    ``flag_index`` is -1 for entries addressing an already-emitted variant
    text (where the producing combination is irrelevant to the measurement).
    """
    return f"{source_digest(source)}:{flag_index}:{platform}:{seed}"


class ResultCache:
    """In-memory evaluation cache with an optional on-disk JSON store."""

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.path = Path(path) if path else None
        self._entries: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        #: True when the in-memory store has entries the disk hasn't seen;
        #: ``save()`` is a no-op otherwise, so a fully warm study/report
        #: replay never rewrites the (potentially large) JSON store.
        self._dirty = False
        if self.path is not None:
            self._load()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: str, value: dict) -> None:
        if self._entries.get(key) != value:
            self._entries[key] = value
            self._dirty = True

    # ------------------------------------------------------------------
    # Compiled variant sets
    # ------------------------------------------------------------------
    # The pass pipeline is as cacheable as the measurements: persisting the
    # 256-combination emitted texts (deduplicated) lets a warm cache replay
    # a whole study — and the report pipeline on top of it — with zero
    # compiles.  These entries bypass the hit/miss counters, which meter
    # measurement lookups only.

    @staticmethod
    def variants_key(digest: str) -> str:
        return f"variants:{digest}"

    def has_variants(self, digest: str) -> bool:
        return self.variants_key(digest) in self._entries

    def get_variants(self, digest: str) -> Optional[Dict[int, str]]:
        """The stored ``flag index -> emitted text`` map, or None."""
        entry = self._entries.get(self.variants_key(digest))
        if not isinstance(entry, dict):
            return None
        try:
            texts = entry["texts"]
            return {int(index): texts[pos]
                    for index, pos in entry["combos"].items()}
        except (KeyError, IndexError, TypeError, ValueError, AttributeError):
            return None

    def put_variants(self, digest: str, index_to_text: Dict[int, str]) -> None:
        """Store a variant set, deduplicating the (heavily shared) texts.

        The real flag indices are stored (JSON-stringified), so sparse or
        partial maps round-trip faithfully.
        """
        texts: list = []
        positions: Dict[str, int] = {}
        combos: Dict[str, int] = {}
        for index in sorted(index_to_text):
            text = index_to_text[index]
            if text not in positions:
                positions[text] = len(texts)
                texts.append(text)
            combos[str(index)] = positions[text]
        entry = {"texts": texts, "combos": combos}
        if self._entries.get(self.variants_key(digest)) != entry:
            self._entries[self.variants_key(digest)] = entry
            self._dirty = True

    # ------------------------------------------------------------------
    # Disk store
    # ------------------------------------------------------------------

    def _load(self) -> None:
        if self.path is None or not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("version") != CACHE_VERSION:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries.update(entries)

    def save(self) -> None:
        """Atomically persist the store (no-op for memory-only caches and
        when nothing changed since the last load/save)."""
        if self.path is None or not self._dirty:
            return
        payload = {"version": CACHE_VERSION, "entries": self._entries}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent),
                                   prefix=self.path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path)
            self._dirty = False
        except BaseException:
            # Never leak the temp file, whatever the dump/replace raised
            # (TypeError on an unserializable entry, OSError, Ctrl-C).
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
