"""Search strategies over the 256-point flag space.

Every strategy maximizes an ``objective(flag_index) -> score`` callable
(higher is better; the engine's :meth:`corpus_objective` yields mean
speed-up %) under a budget of *unique* objective evaluations.  Re-visiting
an already-scored point is free — the tracker memoizes — so the budget
measures exactly the "fraction of the 256-point space evaluated" that the
paper's brute-force study spends in full.

All strategies are deterministic under a fixed seed: randomness comes only
from a ``random.Random(seed)`` instance created per ``search()`` call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.passes import DEFAULT_LUNARGLASS, SPACE_SIZE
from repro.passes.flags import (
    mutate_index, neighbor_indices, popcount, uniform_crossover,
)

Objective = Callable[[int], float]

#: Scores closer than this are treated as ties (measurement jitter scale).
SCORE_EPS = 1e-9


class BudgetExhausted(Exception):
    """Raised internally when a strategy asks for one point too many."""


@dataclass
class SearchOutcome:
    """What one search run found, and what it cost."""

    strategy: str
    seed: int
    budget: int
    best_index: int
    best_score: float
    #: unique evaluations in the order they were paid for
    history: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def points_evaluated(self) -> int:
        return len(self.history)

    @property
    def fraction_of_space(self) -> float:
        return self.points_evaluated / SPACE_SIZE

    def evaluations_to_reach(self, threshold: float) -> Optional[int]:
        """Evaluations spent before the best-so-far score first reached
        *threshold*; None if it never did."""
        best = float("-inf")
        for count, (_, score) in enumerate(self.history, start=1):
            best = max(best, score)
            if best >= threshold - SCORE_EPS:
                return count
        return None


class _Tracker:
    """Memoizing budget meter around the raw objective."""

    def __init__(self, objective: Objective, budget: int):
        self.objective = objective
        self.budget = budget
        self.scores: Dict[int, float] = {}
        self.history: List[Tuple[int, float]] = []

    @property
    def exhausted(self) -> bool:
        return len(self.scores) >= min(self.budget, SPACE_SIZE)

    def evaluate(self, index: int) -> float:
        index &= SPACE_SIZE - 1
        if index in self.scores:
            return self.scores[index]
        if len(self.scores) >= self.budget:
            raise BudgetExhausted
        score = self.objective(index)
        self.scores[index] = score
        self.history.append((index, score))
        return score


class SearchStrategy:
    """Common interface: ``search(objective, budget) -> SearchOutcome``."""

    name = "base"

    def __init__(self, seed: int = 2018):
        self.seed = seed

    def search(self, objective: Objective,
               budget: int = SPACE_SIZE) -> SearchOutcome:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        tracker = _Tracker(objective, budget)
        # str seeding is deterministic across processes (unlike hash()).
        rng = random.Random(f"{self.name}:{self.seed}")
        try:
            self._run(tracker, rng)
        except BudgetExhausted:
            pass
        best_index, best_score = self._pick_best(tracker)
        return SearchOutcome(strategy=self.name, seed=self.seed,
                             budget=budget, best_index=best_index,
                             best_score=best_score, history=tracker.history)

    @staticmethod
    def _pick_best(tracker: _Tracker) -> Tuple[int, float]:
        if not tracker.scores:
            raise RuntimeError("strategy evaluated no points")
        # Ties break toward fewer enabled flags, then the lower index —
        # the same "minimal optimal flag selection" rule as Table I.
        best_index = min(
            tracker.scores,
            key=lambda i: (-tracker.scores[i], popcount(i), i))
        return best_index, tracker.scores[best_index]

    def _run(self, tracker: _Tracker, rng: random.Random) -> None:
        raise NotImplementedError


class Exhaustive(SearchStrategy):
    """All 256 combinations in index order — today's study behavior."""

    name = "exhaustive"

    def _run(self, tracker: _Tracker, rng: random.Random) -> None:
        for index in range(SPACE_SIZE):
            tracker.evaluate(index)


class RandomSampling(SearchStrategy):
    """Budget-many distinct points, drawn uniformly without replacement."""

    name = "random"

    def _run(self, tracker: _Tracker, rng: random.Random) -> None:
        order = list(range(SPACE_SIZE))
        rng.shuffle(order)
        for index in order:
            tracker.evaluate(index)


class GreedyHillClimb(SearchStrategy):
    """Bit-flip ascent from the LunarGlass default, with random restarts."""

    name = "greedy"

    def __init__(self, seed: int = 2018,
                 start_index: int = DEFAULT_LUNARGLASS.index):
        super().__init__(seed)
        self.start_index = start_index

    def _run(self, tracker: _Tracker, rng: random.Random) -> None:
        current = self.start_index
        current_score = tracker.evaluate(current)
        while True:
            best_neighbor, best_score = None, current_score
            for neighbor in neighbor_indices(current):
                score = tracker.evaluate(neighbor)
                if score > best_score + SCORE_EPS:
                    best_neighbor, best_score = neighbor, score
            if best_neighbor is not None:
                current, current_score = best_neighbor, best_score
                continue
            # Local optimum: restart from an unvisited random point.
            unvisited = [i for i in range(SPACE_SIZE) if i not in tracker.scores]
            if not unvisited:
                return
            current = rng.choice(unvisited)
            current_score = tracker.evaluate(current)


class Genetic(SearchStrategy):
    """Tournament selection + uniform crossover + mutation over bitmasks."""

    name = "genetic"

    def __init__(self, seed: int = 2018, population_size: int = 16,
                 tournament_size: int = 3, elitism: int = 2,
                 mutation_rate: float = 1.0 / 8.0,
                 max_stall_generations: int = 25):
        super().__init__(seed)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.elitism = min(elitism, population_size)
        self.mutation_rate = mutation_rate
        #: stop after this many generations without a new unique point —
        #: a converged population under a large budget would otherwise
        #: coupon-collect the remaining space one mutation at a time.
        self.max_stall_generations = max_stall_generations

    def _run(self, tracker: _Tracker, rng: random.Random) -> None:
        # Seed population: the interesting corners plus random fill.
        population = [DEFAULT_LUNARGLASS.index, 0, SPACE_SIZE - 1]
        while len(population) < self.population_size:
            population.append(rng.randrange(SPACE_SIZE))
        scores = {i: tracker.evaluate(i) for i in population}

        stalled = 0
        while not tracker.exhausted and stalled < self.max_stall_generations:
            ranked = sorted(set(population),
                            key=lambda i: (-scores[i], popcount(i), i))
            next_gen = ranked[:self.elitism]
            while len(next_gen) < self.population_size:
                mother = self._tournament(population, scores, rng)
                father = self._tournament(population, scores, rng)
                child = uniform_crossover(mother, father, rng)
                child = mutate_index(child, rng, self.mutation_rate)
                next_gen.append(child)
            population = next_gen
            seen_before = len(tracker.scores)
            scores = {i: tracker.evaluate(i) for i in population}
            stalled = stalled + 1 if len(tracker.scores) == seen_before else 0

    def _tournament(self, population: List[int], scores: Dict[int, float],
                    rng: random.Random) -> int:
        contenders = [rng.choice(population)
                      for _ in range(self.tournament_size)]
        return max(contenders, key=lambda i: (scores[i], -popcount(i), -i))


#: CLI / config registry.
STRATEGIES = {
    cls.name: cls
    for cls in (Exhaustive, RandomSampling, GreedyHillClimb, Genetic)
}


def make_strategy(name: str, seed: int = 2018, **kwargs) -> SearchStrategy:
    """Instantiate the registered strategy *name* (ValueError if unknown)."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(f"unknown strategy {name!r}; "
                         f"choose from {sorted(STRATEGIES)}") from None
    return cls(seed=seed, **kwargs)
