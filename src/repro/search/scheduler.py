"""Parallel work scheduler for (shader x variant x platform) units.

Measurements are pure functions of (text, platform, seed) — the execution
environments are stateless and every RNG is derived from the unit's own
seed — so units can run in any order on any worker and the scheduler's
outputs are order-preserving and identical to a serial run.  A
``concurrent.futures`` pool shards the units; ``max_workers <= 1`` (the
default) or a pool that fails to start falls back to a plain serial loop.

Two pool kinds: ``"process"`` (the study's default — the work is
pure-Python and CPU-bound, so threads would serialize on the GIL) needs a
picklable function and items; ``"thread"`` works with closures and suits
I/O-bound or C-extension work.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment override for the default worker count (0/1 = serial).
JOBS_ENV_VAR = "REPRO_JOBS"


@dataclass(frozen=True)
class WorkUnit:
    """One measurement task: a shader text on one platform with one seed."""

    case_index: int
    variant_id: int        # -1 for the unaltered original
    platform: str
    text: str
    seed: int


@dataclass(frozen=True)
class MeasureBatch:
    """Every pending measurement of one shader text, shipped as one unit.

    Batching per text means a process pool pickles each emitted shader once
    instead of once per (variant x platform) unit, and the worker's shared
    JIT front-end memo parses it once for all platforms in the batch.
    """

    text: str
    #: (platform name, measurement seed) per pending measurement.
    tasks: Tuple[Tuple[str, int], ...]


def default_workers() -> int:
    """Worker count from ``REPRO_JOBS`` (serial when unset or invalid)."""
    try:
        return max(1, int(os.environ.get(JOBS_ENV_VAR, "1")))
    except ValueError:
        return 1


class Scheduler:
    """Order-preserving map over work units, parallel when asked to be.

    ``cancel_check`` is an optional zero-argument callable that cancels an
    in-flight :meth:`map` by raising: the serial path runs it before every
    unit, the pool path before dispatch.  The study service installs its
    per-job timeout/cancel hook here so one runaway study cannot wedge a
    worker inside a long scheduler batch.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 kind: str = "thread",
                 cancel_check: Optional[Callable[[], None]] = None):
        if kind not in ("thread", "process"):
            raise ValueError(f"kind must be 'thread' or 'process', got {kind!r}")
        self.max_workers = (default_workers() if max_workers is None
                            else max(1, int(max_workers)))
        self.kind = kind
        self.cancel_check = cancel_check

    @property
    def parallel(self) -> bool:
        return self.max_workers > 1

    def _check_cancelled(self) -> None:
        if self.cancel_check is not None:
            self.cancel_check()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply *fn* to every item, results in input order."""
        units = list(items)
        if not self.parallel or len(units) <= 1:
            return [self._checked(fn, unit) for unit in units]
        workers = min(self.max_workers, len(units))
        self._check_cancelled()
        try:
            if self.kind == "process":
                pool = ProcessPoolExecutor(max_workers=workers)
            else:
                pool = ThreadPoolExecutor(max_workers=workers)
        except (OSError, RuntimeError, NotImplementedError):
            # Pool creation can fail in constrained sandboxes; the serial
            # path computes the same results.  Worker exceptions are NOT
            # swallowed here — they propagate from pool.map below.
            return [self._checked(fn, unit) for unit in units]
        try:
            with pool:
                chunk = max(1, len(units) // (workers * 4))
                return list(pool.map(fn, units, chunksize=chunk))
        except BrokenProcessPool:
            # The pool's workers were killed under us (sandbox policy, OOM
            # killer); no partial results are retrievable, so recompute.
            return [self._checked(fn, unit) for unit in units]

    def _checked(self, fn: Callable[[T], R], unit: T) -> R:
        self._check_cancelled()
        return fn(unit)
