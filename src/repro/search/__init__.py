"""repro.search — flag-space exploration beyond the brute-force sweep.

The paper evaluates all 256 flag combinations of every shader on every
platform.  This subsystem generalizes that study into a tunable search:

- :mod:`repro.search.strategies` — ``Exhaustive`` (the paper's sweep),
  ``RandomSampling``, ``GreedyHillClimb`` and ``Genetic`` strategies over
  flag bitmasks, all deterministic under a fixed seed;
- :mod:`repro.search.engine` — ``evaluate(case, flags, platform)`` wrapping
  the compiler and the execution environments behind a content-addressed
  result cache;
- :mod:`repro.search.cache` — the cache itself, with an optional on-disk
  JSON store so repeated runs skip recompilation and re-measurement;
- :mod:`repro.search.scheduler` — shards (shader x variant x platform)
  work units across a ``concurrent.futures`` pool, with a serial fallback.
"""

from repro.search.cache import ResultCache, make_key, source_digest
from repro.search.engine import Evaluation, EvaluationEngine, Sample
from repro.search.scheduler import Scheduler, WorkUnit, default_workers
from repro.search.strategies import (
    STRATEGIES, Exhaustive, Genetic, GreedyHillClimb, RandomSampling,
    SearchOutcome, SearchStrategy, make_strategy,
)

__all__ = [
    "ResultCache", "make_key", "source_digest",
    "Evaluation", "EvaluationEngine", "Sample",
    "Scheduler", "WorkUnit", "default_workers",
    "STRATEGIES", "SearchStrategy", "SearchOutcome", "make_strategy",
    "Exhaustive", "RandomSampling", "GreedyHillClimb", "Genetic",
]
