"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single type at the API boundary.  Frontend errors carry source
locations; backend/model errors carry the offending entity's name.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PreprocessorError(ReproError):
    """Raised for malformed preprocessor directives or macro expansion loops."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class LexerError(ReproError):
    """Raised when the lexer meets a character sequence it cannot tokenize."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"line {line}, col {col}: {message}")
        self.line = line
        self.col = col


class ParseError(ReproError):
    """Raised on a syntax error while parsing GLSL."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        loc = f"line {line}, col {col}: " if line else ""
        super().__init__(loc + message)
        self.line = line
        self.col = col


class TypeError_(ReproError):
    """Raised on a GLSL type mismatch (named with a trailing underscore to
    avoid shadowing the builtin)."""


class NormalizeError(ReproError):
    """Raised when the wild-GLSL normalizer cannot rewrite a construct into
    the core subset (e.g. struct return types, conditional switch breaks)."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class LoweringError(ReproError):
    """Raised when the AST-to-IR lowering meets an unsupported construct."""


class IRError(ReproError):
    """Raised by the IR verifier or by malformed IR manipulation."""


class InterpError(ReproError):
    """Raised by the reference IR interpreter (e.g. non-terminating loop)."""


class BackendError(ReproError):
    """Raised when the GLSL backend cannot re-structure the CFG."""


class ModelError(ReproError):
    """Raised by GPU performance models on unknown instruction kinds."""


class HarnessError(ReproError):
    """Raised by the measurement harness (e.g. interface mismatch)."""
