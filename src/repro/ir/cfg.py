"""CFG analyses: orderings, dominators, dominance frontiers, natural loops.

Dominators use the Cooper–Harvey–Kennedy iterative algorithm on the reverse
postorder; post-dominators run the same algorithm on the reversed CFG (all
our CFGs have a single exit block after lowering, enforced by the verifier).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import IRError
from repro.ir.module import BasicBlock, Function


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder (dataflow converges fastest in this order)."""
    visited: Set[BasicBlock] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        visited.add(block)
        while stack:
            current, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(function.entry)
    return list(reversed(order))


def compute_dominators(function: Function) -> Dict[BasicBlock, Optional[BasicBlock]]:
    """Immediate dominators; entry maps to None."""
    order = reverse_postorder(function)
    index = {b: i for i, b in enumerate(order)}
    preds = function.predecessors()
    idom: Dict[BasicBlock, Optional[BasicBlock]] = {order[0]: order[0]}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block in order[1:]:
            candidates = [p for p in preds[block] if p in idom and p in index]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(block) is not new_idom:
                idom[block] = new_idom
                changed = True

    result: Dict[BasicBlock, Optional[BasicBlock]] = {}
    for block in order:
        result[block] = None if block is order[0] else idom[block]
    return result


def dominates(idom: Dict[BasicBlock, Optional[BasicBlock]],
              a: BasicBlock, b: BasicBlock) -> bool:
    """True when *a* dominates *b* (reflexive)."""
    node: Optional[BasicBlock] = b
    while node is not None:
        if node is a:
            return True
        node = idom.get(node)
    return False


def dominance_frontiers(
    function: Function, idom: Dict[BasicBlock, Optional[BasicBlock]]
) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Per-block dominance frontiers (the classic phi-placement sets)."""
    frontiers: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in function.blocks}
    preds = function.predecessors()
    for block in function.blocks:
        if len(preds[block]) < 2:
            continue
        for pred in preds[block]:
            runner: Optional[BasicBlock] = pred
            while runner is not None and runner is not idom[block]:
                frontiers[runner].add(block)
                runner = idom[runner]
    return frontiers


def compute_postdominators(function: Function) -> Dict[BasicBlock, Optional[BasicBlock]]:
    """Immediate post-dominators, via dominators of the reversed CFG.

    Requires a unique exit (a block whose terminator has no successors).
    Blocks ending in Discard also count as exits; they are attached to the
    virtual exit.
    """
    exits = [b for b in function.blocks if not b.successors()]
    if not exits:
        raise IRError("function has no exit block")

    # Build reversed adjacency with a virtual root connecting all exits.
    succs_rev: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
    preds_rev: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        for succ in block.successors():
            succs_rev[succ].append(block)
            preds_rev[block].append(succ)

    virtual = BasicBlock("__virtual_exit")
    all_nodes = [virtual] + function.blocks
    succs_rev[virtual] = list(exits)
    preds_rev[virtual] = []
    for block in exits:
        preds_rev[block] = preds_rev.get(block, []) + [virtual]

    # Reverse postorder on the reversed graph from the virtual root.
    visited: Set[BasicBlock] = set()
    order: List[BasicBlock] = []
    stack = [(virtual, iter(succs_rev[virtual]))]
    visited.add(virtual)
    while stack:
        current, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, iter(succs_rev[nxt])))
                advanced = True
                break
        if not advanced:
            order.append(current)
            stack.pop()
    order.reverse()

    index = {b: i for i, b in enumerate(order)}
    ipdom: Dict[BasicBlock, Optional[BasicBlock]] = {virtual: virtual}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[a] > index[b]:
                a = ipdom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = ipdom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block in order[1:]:
            candidates = [p for p in preds_rev[block] if p in ipdom and p in index]
            if not candidates:
                continue
            new = candidates[0]
            for other in candidates[1:]:
                new = intersect(new, other)
            if ipdom.get(block) is not new:
                ipdom[block] = new
                changed = True

    result: Dict[BasicBlock, Optional[BasicBlock]] = {}
    for block in function.blocks:
        pd = ipdom.get(block)
        result[block] = None if pd is virtual or pd is None else pd
    return result


@dataclass
class NaturalLoop:
    """A natural loop: header, back-edge latches, and member blocks."""
    header: BasicBlock
    latches: List[BasicBlock]
    blocks: Set[BasicBlock] = field(default_factory=set)

    @property
    def latch(self) -> BasicBlock:
        if len(self.latches) != 1:
            raise IRError("loop has multiple latches")
        return self.latches[0]

    def exits(self) -> List[BasicBlock]:
        out = []
        for block in self.blocks:
            for succ in block.successors():
                if succ not in self.blocks and succ not in out:
                    out.append(succ)
        return out


def find_natural_loops(function: Function) -> List[NaturalLoop]:
    """Back edges (tail -> header where header dominates tail) and their bodies."""
    idom = compute_dominators(function)
    loops: Dict[BasicBlock, NaturalLoop] = {}
    for block in function.blocks:
        for succ in block.successors():
            if dominates(idom, succ, block):
                loop = loops.setdefault(succ, NaturalLoop(header=succ, latches=[]))
                loop.latches.append(block)
                # Collect the loop body by walking predecessors from the latch.
                loop.blocks.add(succ)
                stack = [block]
                preds = function.predecessors()
                while stack:
                    node = stack.pop()
                    if node in loop.blocks:
                        continue
                    loop.blocks.add(node)
                    stack.extend(preds[node])
    return list(loops.values())
