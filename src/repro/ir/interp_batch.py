"""Lane-batched reference interpreter: all measurement lanes in one pass.

The scalar :class:`~repro.ir.interp.Interpreter` walks the instruction list
once per fragment; a measurement profiles several sample fragments per
(variant, platform) unit, so the module is traversed — and every
instruction re-dispatched — once per lane.  :class:`BatchedInterpreter`
executes all lanes together: values become fixed-length *lanes* (one entry
per uniform/input sample), straight-line ops map elementwise over the
lanes of a group, and divergent control flow is handled by partitioning
lanes per branch edge — a group that reaches a ``CondBr`` with mixed
conditions splits into one sub-group per taken path, and each sub-group
continues independently (grouped re-execution per taken path).

Semantics are *exactly* the scalar interpreter's: every per-lane value is
produced by the same scalar helper functions (``_binop``, ``_cmp``,
``_apply_builtin``, ...) in the same order, so outputs, per-lane
:class:`~repro.ir.interp.ExecutionStats` (steps, block-visit order and
counts, texture samples), and raised errors are identical to running the
scalar interpreter once per lane.  The per-fragment ``_MAX_STEPS`` budget
is enforced independently per lane: lanes in a group share an identical
execution history (same step count), and a runaway lane isolates itself
into its own group at the first divergent branch, where its budget trips
without charging — or being subsidised by — its terminating siblings.

Groups are scheduled lowest-lane-first, so errors surface with the same
precedence as a scalar loop over the lanes in order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import InterpError
from repro.ir.instructions import (
    BinOp, Br, Call, Cmp, CondBr, Construct, Convert, Discard, ExtractElem,
    InsertElem, LoadElem, LoadGlobal, LoadVar, Phi, Ret, Sample, Select,
    Shuffle, StoreElem, StoreOutput, StoreVar, UnOp,
)
from repro.ir.interp import (
    ExecutionStats, RtVal, _MAX_STEPS, _apply_builtin, _as_tuple, _binop,
    _cmp, _convert_scalar, _map_unary, _stable_seed,
)
from repro.ir.module import BasicBlock, Module
from repro.ir.textures import ProceduralTexture
from repro.ir.values import Constant, Slot, Undef, Value

LaneEnv = Union[Dict[str, object], Sequence[Dict[str, object]]]


class _Group:
    """A set of lanes with an identical execution history.

    All per-lane state is stored structure-of-arrays: each dict maps an IR
    entity to a list parallel to ``lanes``.  ``steps``, ``visits`` and
    ``tex_samples`` are shared because every member lane has executed the
    exact same instruction sequence.
    """

    __slots__ = ("lanes", "block", "prev", "env", "scalars", "arrays",
                 "outputs", "steps", "visits", "tex_samples")

    def __init__(self, lanes: Tuple[int, ...], block: Optional[BasicBlock],
                 prev: Optional[BasicBlock],
                 env: Dict[Value, List[RtVal]],
                 scalars: Dict[Slot, List[RtVal]],
                 arrays: Dict[Slot, List[List[RtVal]]],
                 outputs: Dict[str, List[RtVal]],
                 steps: int, visits: Dict[str, int], tex_samples: int):
        self.lanes = lanes
        self.block = block
        self.prev = prev
        self.env = env
        self.scalars = scalars
        self.arrays = arrays
        self.outputs = outputs
        self.steps = steps
        self.visits = visits
        self.tex_samples = tex_samples


class BatchedInterpreter:
    """Executes a module's ``main`` for many lanes in one pass.

    ``uniforms`` and ``inputs`` may each be a single dict (broadcast to
    every lane) or a sequence of dicts, one per lane; the lane count is
    inferred from the sequences (or ``lane_count`` when both are
    broadcast).  ``run`` returns one outputs dict per lane (empty for
    discarded lanes) and fills ``stats`` with one
    :class:`~repro.ir.interp.ExecutionStats` per lane.
    """

    def __init__(self, module: Module,
                 uniforms: Optional[LaneEnv] = None,
                 inputs: Optional[LaneEnv] = None,
                 textures: Optional[Dict[str, ProceduralTexture]] = None,
                 lane_count: Optional[int] = None,
                 max_steps: Optional[int] = None):
        self.module = module
        self.textures = textures or {}
        self.max_steps = _MAX_STEPS if max_steps is None else max_steps
        n = lane_count
        for env in (uniforms, inputs):
            if isinstance(env, (list, tuple)):
                if n is not None and n != len(env):
                    raise ValueError(
                        f"lane count mismatch: {n} vs {len(env)} lane dicts")
                n = len(env)
        self.lane_count = 1 if n is None else n
        self._lane_uniforms = self._per_lane(uniforms)
        self._lane_inputs = self._per_lane(inputs)
        self.stats: List[ExecutionStats] = [ExecutionStats()
                                            for _ in range(self.lane_count)]

    def _per_lane(self, env: Optional[LaneEnv]) -> List[Dict[str, object]]:
        if env is None:
            return [{} for _ in range(self.lane_count)]
        if isinstance(env, (list, tuple)):
            return list(env)
        return [env] * self.lane_count

    # ------------------------------------------------------------------

    def run(self) -> List[Dict[str, RtVal]]:
        """Execute main for every lane; returns per-lane outputs dicts."""
        function = self.module.function
        n = self.lane_count
        arrays: Dict[Slot, List[List[RtVal]]] = {}
        for slot in function.slots:
            if slot.is_array:
                if slot.const_init is not None:
                    arrays[slot] = [[c.value for c in slot.const_init]
                                    for _ in range(n)]
                else:
                    fill: RtVal = ((0.0,) * slot.ty.width
                                   if slot.ty.is_vector else 0.0)
                    length = slot.array_length or 0
                    arrays[slot] = [[fill] * length for _ in range(n)]

        results: List[Dict[str, RtVal]] = [{} for _ in range(n)]
        worklist: List[_Group] = [_Group(
            lanes=tuple(range(n)), block=function.entry, prev=None,
            env={}, scalars={}, arrays=arrays, outputs={},
            steps=0, visits={}, tex_samples=0)]
        while worklist:
            # Lowest-lane-first scheduling: the group containing the
            # smallest lane id always runs next, so errors surface in the
            # same order as a scalar loop over the lanes.
            worklist.sort(key=lambda g: g.lanes[0], reverse=True)
            group = worklist.pop()
            worklist.extend(self._run_group(group, results))
        return results

    # ------------------------------------------------------------------

    def _run_group(self, group: _Group,
                   results: List[Dict[str, RtVal]]) -> Tuple[_Group, ...]:
        """Execute *group* until it terminates or splits at a divergent
        branch; returns the child groups (empty when it terminated)."""
        while True:
            block = group.block
            group.visits[block.name] = group.visits.get(block.name, 0) + 1

            # Phase 1: evaluate all phis against the incoming edge at once.
            phi_values: List[Tuple[Phi, List[RtVal]]] = []
            for phi in block.phis():
                incoming = None
                for pred, value in phi.incoming:
                    if pred is group.prev:
                        incoming = value
                        break
                if incoming is None:
                    raise InterpError(
                        f"phi {phi.name} has no incoming for "
                        f"{group.prev.name if group.prev else '?'}")
                phi_values.append((phi, self._values(incoming, group)))
            for phi, vals in phi_values:
                group.env[phi] = vals

            next_block: Optional[BasicBlock] = None
            for instr in block.non_phi_instrs():
                group.steps += 1
                if group.steps > self.max_steps:
                    raise InterpError("step limit exceeded (infinite loop?)")

                if isinstance(instr, Br):
                    next_block = instr.target
                elif isinstance(instr, CondBr):
                    conds = self._values(instr.cond, group)
                    if all(conds):
                        next_block = instr.if_true
                    elif not any(conds):
                        next_block = instr.if_false
                    else:
                        return self._split(group, block, conds, instr)
                elif isinstance(instr, Ret):
                    self._finish(group, results, discard=False)
                    return ()
                elif isinstance(instr, Discard):
                    self._finish(group, results, discard=True)
                    return ()
                elif isinstance(instr, StoreOutput):
                    group.outputs[instr.var] = self._values(instr.value, group)
                elif isinstance(instr, StoreVar):
                    group.scalars[instr.slot] = self._values(instr.value, group)
                elif isinstance(instr, LoadVar):
                    vals = group.scalars.get(instr.slot)
                    if vals is None:
                        fill: RtVal = ((0.0,) * instr.ty.width
                                       if instr.ty.is_vector else 0.0)
                        vals = [fill] * len(group.lanes)
                    group.env[instr] = vals
                elif isinstance(instr, StoreElem):
                    indices = self._values(instr.index, group)
                    vals = self._values(instr.value, group)
                    lane_arrays = group.arrays[instr.slot]
                    for pos, array in enumerate(lane_arrays):
                        index = int(indices[pos])  # type: ignore[arg-type]
                        if 0 <= index < len(array):
                            array[index] = vals[pos]
                elif isinstance(instr, LoadElem):
                    indices = self._values(instr.index, group)
                    lane_arrays = group.arrays[instr.slot]
                    out: List[RtVal] = []
                    for pos, array in enumerate(lane_arrays):
                        index = int(indices[pos])  # type: ignore[arg-type]
                        index = (min(max(index, 0), len(array) - 1)
                                 if array else 0)
                        out.append(array[index] if array else 0.0)
                    group.env[instr] = out
                else:
                    group.env[instr] = self._eval(instr, group)

            if next_block is None:
                raise InterpError("fell off the CFG without a terminator")
            group.prev, group.block = block, next_block

    def _split(self, group: _Group, block: BasicBlock, conds: List[RtVal],
               instr: CondBr) -> Tuple[_Group, ...]:
        """Partition the group's lanes by branch edge at a divergent
        ``CondBr``; each taken path continues as its own group."""
        taken = [pos for pos, cond in enumerate(conds) if cond]
        not_taken = [pos for pos, cond in enumerate(conds) if not cond]
        children = []
        for positions, target in ((taken, instr.if_true),
                                  (not_taken, instr.if_false)):
            children.append(_Group(
                lanes=tuple(group.lanes[pos] for pos in positions),
                block=target, prev=block,
                env={value: [vals[pos] for pos in positions]
                     for value, vals in group.env.items()},
                scalars={slot: [vals[pos] for pos in positions]
                         for slot, vals in group.scalars.items()},
                # Inner per-lane array lists are partitioned, not copied:
                # each belongs to exactly one lane, hence one child.
                arrays={slot: [arrs[pos] for pos in positions]
                        for slot, arrs in group.arrays.items()},
                outputs={name: [vals[pos] for pos in positions]
                         for name, vals in group.outputs.items()},
                steps=group.steps, visits=dict(group.visits),
                tex_samples=group.tex_samples))
        return tuple(children)

    def _finish(self, group: _Group, results: List[Dict[str, RtVal]],
                discard: bool) -> None:
        for pos, lane in enumerate(group.lanes):
            if not discard:
                results[lane] = {name: vals[pos]
                                 for name, vals in group.outputs.items()}
            stats = self.stats[lane]
            stats.steps = group.steps
            stats.block_visits = dict(group.visits)
            stats.texture_samples = group.tex_samples

    # ------------------------------------------------------------------

    def _values(self, value: Value, group: _Group) -> List[RtVal]:
        if isinstance(value, Constant):
            return [value.value] * len(group.lanes)
        if isinstance(value, Undef):
            fill: RtVal = ((0.0,) * value.ty.width
                           if value.ty.is_vector else 0.0)
            return [fill] * len(group.lanes)
        try:
            return group.env[value]
        except KeyError:
            raise InterpError(
                f"use of unevaluated value {getattr(value, 'name', value)}")

    def _eval(self, instr, group: _Group) -> List[RtVal]:
        if isinstance(instr, BinOp):
            op = instr.op
            lhs = self._values(instr.lhs, group)
            rhs = self._values(instr.rhs, group)
            return [_binop(op, x, y) for x, y in zip(lhs, rhs)]
        if isinstance(instr, Cmp):
            op = instr.op
            lhs = self._values(instr.lhs, group)
            rhs = self._values(instr.rhs, group)
            return [_cmp(op, x, y) for x, y in zip(lhs, rhs)]
        if isinstance(instr, UnOp):
            operands = self._values(instr.operand, group)
            if instr.op == "neg":
                return [_map_unary(v, lambda x: -x) for v in operands]
            return [_map_unary(v, lambda x: not x) for v in operands]
        if isinstance(instr, Convert):
            target = instr.ty.kind
            return [_map_unary(v, lambda x: _convert_scalar(x, target))
                    for v in self._values(instr.value, group)]
        if isinstance(instr, Select):
            conds = self._values(instr.cond, group)
            trues = self._values(instr.if_true, group)
            falses = self._values(instr.if_false, group)
            return [t if c else f for c, t, f in zip(conds, trues, falses)]
        if isinstance(instr, ExtractElem):
            index = instr.index
            return [vec[index] if isinstance(vec, tuple) else vec
                    for vec in self._values(instr.vector, group)]
        if isinstance(instr, InsertElem):
            width = instr.ty.width
            index = instr.index
            vecs = self._values(instr.vector, group)
            scalars = self._values(instr.scalar, group)
            out = []
            for vec, scalar in zip(vecs, scalars):
                lane = list(_as_tuple(vec, width))
                lane[index] = scalar  # type: ignore[call-overload]
                out.append(tuple(lane))
            return out
        if isinstance(instr, Shuffle):
            width = instr.source.ty.width
            mask = instr.mask
            out = []
            for vec in self._values(instr.source, group):
                src = _as_tuple(vec, width)
                picked = tuple(src[i] for i in mask)
                out.append(picked if len(picked) > 1 else picked[0])
            return out
        if isinstance(instr, Construct):
            columns = [self._values(op, group) for op in instr.operands]
            return [tuple(col[pos] for col in columns)  # type: ignore[misc]
                    for pos in range(len(group.lanes))]
        if isinstance(instr, Call):
            callee = instr.callee
            width = instr.ty.width
            columns = [self._values(op, group) for op in instr.operands]
            return [_apply_builtin(callee, [col[pos] for col in columns], width)
                    for pos in range(len(group.lanes))]
        if isinstance(instr, Sample):
            group.tex_samples += 1
            coord_width = instr.coord.ty.width
            coords = self._values(instr.coord, group)
            texture = self.textures.get(instr.sampler) or ProceduralTexture(
                seed=_stable_seed(instr.sampler))
            lods: Optional[List[RtVal]] = None
            if instr.lod is not None:
                lods = self._values(instr.lod, group)
            out = []
            for pos in range(len(group.lanes)):
                coord = _as_tuple(coords[pos], coord_width)
                if instr.sampler_kind == "sampler2DShadow":
                    out.append(texture.sample_shadow(
                        [float(c) for c in coord]))
                else:
                    lod = 0.0 if lods is None else float(lods[pos])  # type: ignore[arg-type]
                    out.append(texture.sample([float(c) for c in coord],
                                              kind=instr.sampler_kind, lod=lod))
            return out
        if isinstance(instr, LoadGlobal):
            return self._load_global(instr, group)
        raise InterpError(f"cannot interpret {instr.opcode}")

    def _load_global(self, instr: LoadGlobal, group: _Group) -> List[RtVal]:
        lane_dicts = (self._lane_inputs if instr.kind == "input"
                      else self._lane_uniforms)
        indices: Optional[List[RtVal]] = None
        if instr.element is not None:
            indices = self._values(instr.element, group)
        default: RtVal = (((0.5,) * instr.ty.width)
                          if instr.ty.is_vector else 0.5)
        out: List[RtVal] = []
        for pos, lane in enumerate(group.lanes):
            source = lane_dicts[lane]
            if instr.var not in source:
                # Harness default: 0.5 floats (paper Section IV-B).
                out.append(default)
                continue
            value = source[instr.var]
            if instr.column is not None:
                value = value[instr.column]  # type: ignore[index]
            if indices is not None:
                index = int(indices[pos])  # type: ignore[arg-type]
                seq = value  # type: ignore[assignment]
                index = min(max(index, 0), len(seq) - 1)  # type: ignore[arg-type]
                value = seq[index]  # type: ignore[index]
            out.append(value)  # type: ignore[arg-type]
        return out
