"""IR -> GLSL source emission (the LunarGlass "back end").

The emitted code deliberately looks like LunarGlass output, not like the
original shader: every instruction becomes its own temporary assignment, all
matrix math arrives pre-scalarized, scalars that were multiplied with vectors
appear as explicit ``vecN(s)`` splats, and unrolled/flattened control flow
shows up as huge straight-line blocks.  Those are precisely the compilation
artifacts Section III-C of the paper discusses.

Control-flow restructuring relies on the CFG staying reducible (lowering only
creates structured CFGs and no pass introduces irreducibility): conditionals
re-emit via immediate post-dominators, natural loops via a
``while (true) { ...; if (!cond) break; ... }`` skeleton with phi variables
assigned along their incoming edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import BackendError
from repro.glsl.printer import format_float
from repro.ir.cfg import NaturalLoop, compute_postdominators, find_natural_loops
from repro.ir.instructions import (
    BinOp, Br, Call, Cmp, CondBr, Construct, Convert, Discard, ExtractElem,
    InsertElem, Instr, LoadElem, LoadGlobal, LoadVar, Phi, Ret, Sample, Select,
    Shuffle, StoreElem, StoreOutput, StoreVar, Terminator, UnOp,
)
from repro.ir.module import BasicBlock, Module
from repro.ir.types import IRType
from repro.ir.values import Constant, Slot, Undef, Value

_BIN_SYMBOL = {"add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%",
               "and": "&&", "or": "||", "xor": "^^"}
_CMP_SYMBOL = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}
_LANES = "xyzw"


def emit_glsl(module: Module, es: bool = False) -> str:
    """Emit GLSL source for *module*.

    ``es`` selects the mobile (OpenGL ES) dialect the paper produced via
    glslang + SPIRV-Cross: an ES version header and precision qualifiers.
    """
    return _Emitter(module, es).emit()


class _Emitter:
    def __init__(self, module: Module, es: bool):
        self.module = module
        self.es = es
        self.function = module.function
        self.lines: List[str] = []
        self.indent = 0
        self.names: Dict[Value, str] = {}
        self.counter = 0
        self.phi_vars: Dict[Phi, str] = {}
        self.loops: Dict[BasicBlock, NaturalLoop] = {}
        self.ipdom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        # Stack of (loop, canonical-exit-block) for break/continue emission.
        self.loop_stack: List[tuple] = []
        self.emitted_blocks: Set[BasicBlock] = set()

    # ------------------------------------------------------------------

    def emit(self) -> str:
        self.function.remove_unreachable_blocks()
        for loop in find_natural_loops(self.function):
            self.loops[loop.header] = loop
        self.ipdom = compute_postdominators(self.function)

        if self.es:
            self.lines.append("#version 310 es")
            self.lines.append("precision highp float;")
            self.lines.append("precision highp int;")
        else:
            self.lines.append(f"#version {self.module.version or '450'}")
        for var in self.module.interface.uniforms:
            self.lines.append(f"uniform {_glsl_ty(var.ty)} {var.name}{_arr(var.ty)};")
        for var in self.module.interface.inputs:
            self.lines.append(f"in {_glsl_ty(var.ty)} {var.name}{_arr(var.ty)};")
        for var in self.module.interface.outputs:
            self.lines.append(f"out {_glsl_ty(var.ty)} {var.name}{_arr(var.ty)};")
        self.lines.append("void main()")
        self.lines.append("{")
        self.indent = 1

        self._declare_phis()
        self._declare_arrays()
        self._emit_region(self.function.entry, None)

        self.lines.append("}")
        return "\n".join(self.lines) + "\n"

    def _declare_phis(self) -> None:
        for block in self.function.blocks:
            for phi in block.phis():
                name = f"p{len(self.phi_vars)}"
                self.phi_vars[phi] = name
                self.names[phi] = name
                self._line(f"{phi.ty.glsl_name()} {name} = {_zero(phi.ty)};")

    def _declare_arrays(self) -> None:
        for slot in self.function.slots:
            if not slot.is_array:
                continue
            base = slot.ty.glsl_name()
            name = _sanitize(slot.name)
            if slot.const_init is not None:
                elems = ", ".join(self._const(c) for c in slot.const_init)
                self._line(f"const {base} {name}[{len(slot.const_init)}] = "
                           f"{base}[]({elems});")
            else:
                self._line(f"{base} {name}[{slot.array_length}];")

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------

    def _emit_region(self, block: Optional[BasicBlock],
                     stop: Optional[BasicBlock]) -> None:
        while block is not None and block is not stop:
            if block in self.loops and block not in self.emitted_blocks:
                block = self._emit_loop(self.loops[block], stop)
                continue
            self.emitted_blocks.add(block)
            self._emit_block_body(block)
            term = block.terminator
            if term is None:
                raise BackendError(f"block {block.name} lacks a terminator")
            block = self._emit_terminator(block, term, stop)

    def _emit_block_body(self, block: BasicBlock) -> None:
        for instr in block.non_phi_instrs():
            if isinstance(instr, Terminator):
                continue
            self._emit_instr(instr)

    def _emit_terminator(self, block: BasicBlock, term: Terminator,
                         stop: Optional[BasicBlock]) -> Optional[BasicBlock]:
        if isinstance(term, Ret):
            self._line("return;")
            return None
        if isinstance(term, Discard):
            self._line("discard;")
            return None
        if isinstance(term, Br):
            return self._emit_goto(block, term.target, stop)
        if isinstance(term, CondBr):
            return self._emit_condbr(block, term, stop)
        raise BackendError(f"unknown terminator {term.opcode}")

    def _emit_goto(self, block: BasicBlock, target: BasicBlock,
                   stop: Optional[BasicBlock]) -> Optional[BasicBlock]:
        """Handle an unconditional edge; may emit continue/break."""
        self._emit_phi_moves(block, target)
        if self.loop_stack:
            loop, after = self.loop_stack[-1]
            if target is loop.header:
                self._line("continue;")
                return None
            if target is after:
                self._line("break;")
                return None
        if target is stop:
            return None
        return target

    def _emit_condbr(self, block: BasicBlock, term: CondBr,
                     stop: Optional[BasicBlock]) -> Optional[BasicBlock]:
        cond = self._use(term.cond)
        loop = self.loop_stack[-1][0] if self.loop_stack else None

        # Divergent branch inside a loop: one arm leaves the loop (break /
        # return paths) or jumps straight back to the header (continue).  Emit
        # that arm as an else-less `if` whose region ends in break/continue,
        # then keep walking the other arm.
        if loop is not None:
            for polarity, taken, other in ((True, term.if_true, term.if_false),
                                           (False, term.if_false, term.if_true)):
                diverges = taken is loop.header or taken not in loop.blocks
                other_stays = other is not loop.header and other in loop.blocks
                if diverges and other_stays:
                    guard = cond if polarity else f"!({cond})"
                    self._line(f"if ({guard})")
                    self._line("{")
                    self.indent += 1
                    if taken is loop.header:
                        self._emit_phi_moves(block, taken)
                        self._line("continue;")
                    else:
                        next_block = self._emit_goto(block, taken, stop)
                        if next_block is not None:
                            self._emit_region(next_block, stop)
                    self.indent -= 1
                    self._line("}")
                    return self._emit_goto(block, other, stop)

        merge = self.ipdom.get(block)
        if self.loop_stack and merge is self.loop_stack[-1][0].header:
            merge = None
        self._line(f"if ({cond})")
        self._line("{")
        self.indent += 1
        self._emit_phi_moves(block, term.if_true)
        if term.if_true is not merge:
            self._emit_region(term.if_true, merge)
        self.indent -= 1
        self._line("}")
        needs_else = (term.if_false is not merge or
                      _has_phi_moves(block, term.if_false, self.phi_vars))
        if needs_else:
            self._line("else")
            self._line("{")
            self.indent += 1
            self._emit_phi_moves(block, term.if_false)
            if term.if_false is not merge:
                self._emit_region(term.if_false, merge)
            self.indent -= 1
            self._line("}")
        if merge is None:
            return None
        return merge

    def _emit_loop(self, loop: NaturalLoop,
                   stop: Optional[BasicBlock]) -> Optional[BasicBlock]:
        header = loop.header
        self.emitted_blocks.add(header)
        # The canonical exit ("after") is the structural loop end: the
        # header's out-of-loop branch target when it has one, else the first
        # exit edge target (while(true) loops that only leave via break).
        after: Optional[BasicBlock] = None
        header_term = header.terminator
        if isinstance(header_term, CondBr):
            for target in (header_term.if_false, header_term.if_true):
                if target not in loop.blocks:
                    after = target
                    break
        if after is None:
            exits = loop.exits()
            after = exits[0] if exits else None

        self.loop_stack.append((loop, after))
        self._line("while (true)")
        self._line("{")
        self.indent += 1

        # Header body (condition computation), then the guarded break.
        self._emit_block_body(header)
        term = header.terminator
        body_entry: Optional[BasicBlock] = None
        if isinstance(term, CondBr):
            in_true = term.if_true in loop.blocks
            in_false = term.if_false in loop.blocks
            cond = self._use(term.cond)
            if in_true and not in_false:
                self._line(f"if (!({cond}))")
                self._line("{")
                self.indent += 1
                self._emit_phi_moves(header, term.if_false)
                self._line("break;")
                self.indent -= 1
                self._line("}")
                self._emit_phi_moves(header, term.if_true)
                body_entry = term.if_true
            elif in_false and not in_true:
                self._line(f"if ({cond})")
                self._line("{")
                self.indent += 1
                self._emit_phi_moves(header, term.if_true)
                self._line("break;")
                self.indent -= 1
                self._line("}")
                self._emit_phi_moves(header, term.if_false)
                body_entry = term.if_false
            else:
                raise BackendError("loop header branches to two in-loop targets")
        elif isinstance(term, Br):
            self._emit_phi_moves(header, term.target)
            body_entry = term.target
        else:
            raise BackendError("loop header has no branch")

        if body_entry is not None and body_entry is not header:
            self._emit_region(body_entry, header)
        # Falling off the region end means the backedge was taken implicitly.
        self.indent -= 1
        self._line("}")
        self.loop_stack.pop()
        if after is stop:
            return None
        return after

    def _emit_phi_moves(self, pred: BasicBlock, succ: BasicBlock) -> None:
        for phi in succ.phis():
            for block, value in phi.incoming:
                if block is pred:
                    self._line(f"{self.phi_vars[phi]} = {self._use(value)};")

    # ------------------------------------------------------------------
    # Instructions
    # ------------------------------------------------------------------

    def _emit_instr(self, instr: Instr) -> None:
        if isinstance(instr, StoreOutput):
            self._line(f"{instr.var} = {self._use(instr.value)};")
            return
        if isinstance(instr, StoreElem):
            self._line(f"{_sanitize(instr.slot.name)}[{self._use(instr.index)}]"
                       f" = {self._use(instr.value)};")
            return
        if isinstance(instr, StoreVar):
            # Slots surviving to emission (arrays are separate): materialize
            # as plain variables.
            self._line(f"{_sanitize(instr.slot.name)} = {self._use(instr.value)};")
            return
        if isinstance(instr, InsertElem):
            name = self._fresh(instr)
            ty = instr.ty.glsl_name()
            self._line(f"{ty} {name} = {self._use(instr.vector)};")
            self._line(f"{name}.{_LANES[instr.index]} = {self._use(instr.scalar)};")
            return
        text = self._expr(instr)
        name = self._fresh(instr)
        self._line(f"{instr.ty.glsl_name()} {name} = {text};")

    def _expr(self, instr: Instr) -> str:
        if isinstance(instr, BinOp):
            return (f"{self._use(instr.lhs)} {_BIN_SYMBOL[instr.op]} "
                    f"{self._use(instr.rhs)}")
        if isinstance(instr, Cmp):
            return (f"{self._use(instr.lhs)} {_CMP_SYMBOL[instr.op]} "
                    f"{self._use(instr.rhs)}")
        if isinstance(instr, UnOp):
            return f"-{self._use(instr.operand)}" if instr.op == "neg" else (
                f"!{self._use(instr.operand)}")
        if isinstance(instr, Convert):
            return f"{instr.ty.glsl_name()}({self._use(instr.value)})"
        if isinstance(instr, Select):
            return (f"{self._use(instr.cond)} ? {self._use(instr.if_true)}"
                    f" : {self._use(instr.if_false)}")
        if isinstance(instr, ExtractElem):
            return f"{self._use(instr.vector)}.{_LANES[instr.index]}"
        if isinstance(instr, Shuffle):
            lanes = "".join(_LANES[i] for i in instr.mask)
            return f"{self._use(instr.source)}.{lanes}"
        if isinstance(instr, Construct):
            args = ", ".join(self._use(op) for op in instr.operands)
            return f"{instr.ty.glsl_name()}({args})"
        if isinstance(instr, Call):
            args = ", ".join(self._use(op) for op in instr.operands)
            return f"{instr.callee}({args})"
        if isinstance(instr, Sample):
            fn = "textureLod" if instr.lod is not None else "texture"
            args = [instr.sampler, self._use(instr.coord)]
            if instr.lod is not None:
                args.append(self._use(instr.lod))
            return f"{fn}({', '.join(args)})"
        if isinstance(instr, LoadGlobal):
            text = instr.var
            if instr.column is not None:
                text += f"[{instr.column}]"
            if instr.element is not None:
                text += f"[{self._use(instr.element)}]"
            return text
        if isinstance(instr, LoadElem):
            return f"{_sanitize(instr.slot.name)}[{self._use(instr.index)}]"
        if isinstance(instr, LoadVar):
            return _sanitize(instr.slot.name)
        raise BackendError(f"cannot emit {instr.opcode}")

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------

    def _fresh(self, value: Value) -> str:
        name = f"t{self.counter}"
        self.counter += 1
        self.names[value] = name
        return name

    def _use(self, value: Value) -> str:
        if isinstance(value, Constant):
            return self._const(value)
        if isinstance(value, Undef):
            return _zero(value.ty)
        name = self.names.get(value)
        if name is None:
            raise BackendError(
                f"value {getattr(value, 'name', value)} used before emission")
        return name

    def _const(self, const: Constant) -> str:
        if const.ty.is_vector:
            comps = const.components()
            if all(c == comps[0] for c in comps):
                return f"{const.ty.glsl_name()}({_scalar_text(comps[0], const.ty.kind)})"
            inner = ", ".join(_scalar_text(c, const.ty.kind) for c in comps)
            return f"{const.ty.glsl_name()}({inner})"
        return _scalar_text(const.value, const.ty.kind)

    def _line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)


def _scalar_text(value, kind: str) -> str:
    if kind == "float":
        return format_float(float(value))
    if kind == "bool":
        return "true" if value else "false"
    return str(int(value))


def _zero(ty: IRType) -> str:
    if ty.is_vector:
        zero = {"float": "0.0", "int": "0", "bool": "false"}[ty.kind]
        return f"{ty.glsl_name()}({zero})"
    return {"float": "0.0", "int": "0", "bool": "false"}[ty.kind]


def _sanitize(name: str) -> str:
    return name.replace(".", "_")


def _arr(ty) -> str:
    from repro.glsl import types as T

    if isinstance(ty, T.Array):
        return f"[{ty.length}]" if ty.length is not None else "[]"
    return ""


def _glsl_ty(ty) -> str:
    from repro.glsl import types as T

    if isinstance(ty, T.Array):
        return str(ty.element)
    return str(ty)


def _has_phi_moves(pred: BasicBlock, succ: BasicBlock, phi_vars) -> bool:
    for phi in succ.phis():
        for block, _ in phi.incoming:
            if block is pred:
                return True
    return False
