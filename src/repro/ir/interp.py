"""Reference interpreter for the IR.

Used by tests to check that every optimization pass preserves shader
semantics (safe passes bit-for-bit modulo float noise, unsafe passes within a
small relative tolerance), and by the harness to derive data-dependent branch
probabilities and loop trip counts.

Values are Python numbers; vectors are tuples.  Division by zero and domain
errors follow GLSL's "undefined but must not crash" rule with deterministic
guards so that original and optimized shaders agree.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import InterpError
from repro.ir.instructions import (
    BinOp, Br, Call, Cmp, CondBr, Construct, Convert, Discard, ExtractElem,
    InsertElem, Instr, LoadElem, LoadGlobal, LoadVar, Phi, Ret, Sample, Select,
    Shuffle, StoreElem, StoreOutput, StoreVar, UnOp,
)
from repro.ir.module import BasicBlock, Module
from repro.ir.textures import ProceduralTexture
from repro.ir.values import Constant, Slot, Undef, Value

Num = Union[float, int, bool]
RtVal = Union[Num, Tuple[Num, ...]]

_BIG = 1.0e30
_MAX_STEPS = 2_000_000


class ExecutionStats:
    """Dynamic counts collected during a run (used for branch profiles)."""

    def __init__(self):
        self.steps = 0
        self.block_visits: Dict[str, int] = {}
        self.texture_samples = 0


class Interpreter:
    """Executes a module's ``main`` for one fragment.

    ``max_steps`` bounds the dynamic instruction count for this one
    fragment (defaults to the module-level ``_MAX_STEPS`` budget); the
    batched interpreter (:mod:`repro.ir.interp_batch`) enforces the same
    budget independently per lane.
    """

    def __init__(self, module: Module,
                 uniforms: Optional[Dict[str, object]] = None,
                 inputs: Optional[Dict[str, RtVal]] = None,
                 textures: Optional[Dict[str, ProceduralTexture]] = None,
                 max_steps: Optional[int] = None):
        self.module = module
        self.uniforms = uniforms or {}
        self.inputs = inputs or {}
        self.textures = textures or {}
        self.max_steps = _MAX_STEPS if max_steps is None else max_steps
        self.stats = ExecutionStats()

    def run(self) -> Dict[str, RtVal]:
        """Execute main; returns outputs (empty dict when discarded)."""
        function = self.module.function
        values: Dict[Value, RtVal] = {}
        arrays: Dict[Slot, List[RtVal]] = {}
        for slot in function.slots:
            if slot.is_array:
                if slot.const_init is not None:
                    arrays[slot] = [c.value for c in slot.const_init]
                else:
                    fill: RtVal = (0.0,) * slot.ty.width if slot.ty.is_vector else 0.0
                    arrays[slot] = [fill] * (slot.array_length or 0)

        outputs: Dict[str, RtVal] = {}
        scalars: Dict[Slot, RtVal] = {}

        block: Optional[BasicBlock] = function.entry
        prev: Optional[BasicBlock] = None
        while block is not None:
            self.stats.block_visits[block.name] = (
                self.stats.block_visits.get(block.name, 0) + 1)

            # Phase 1: evaluate all phis against the incoming edge at once.
            phi_values: List[Tuple[Phi, RtVal]] = []
            for phi in block.phis():
                incoming = None
                for pred, value in phi.incoming:
                    if pred is prev:
                        incoming = value
                        break
                if incoming is None:
                    raise InterpError(
                        f"phi {phi.name} has no incoming for {prev.name if prev else '?'}")
                phi_values.append((phi, self._value(incoming, values)))
            for phi, val in phi_values:
                values[phi] = val

            next_block: Optional[BasicBlock] = None
            for instr in block.non_phi_instrs():
                self.stats.steps += 1
                if self.stats.steps > self.max_steps:
                    raise InterpError("step limit exceeded (infinite loop?)")

                if isinstance(instr, Br):
                    next_block = instr.target
                elif isinstance(instr, CondBr):
                    cond = self._value(instr.cond, values)
                    next_block = instr.if_true if cond else instr.if_false
                elif isinstance(instr, Ret):
                    return outputs
                elif isinstance(instr, Discard):
                    return {}
                elif isinstance(instr, StoreOutput):
                    outputs[instr.var] = self._value(instr.value, values)
                elif isinstance(instr, StoreVar):
                    scalars[instr.slot] = self._value(instr.value, values)
                elif isinstance(instr, LoadVar):
                    values[instr] = scalars.get(
                        instr.slot,
                        (0.0,) * instr.ty.width if instr.ty.is_vector else 0.0)
                elif isinstance(instr, StoreElem):
                    index = int(self._value(instr.index, values))  # type: ignore[arg-type]
                    array = arrays[instr.slot]
                    if 0 <= index < len(array):
                        array[index] = self._value(instr.value, values)
                elif isinstance(instr, LoadElem):
                    index = int(self._value(instr.index, values))  # type: ignore[arg-type]
                    array = arrays[instr.slot]
                    index = min(max(index, 0), len(array) - 1) if array else 0
                    values[instr] = array[index] if array else 0.0
                else:
                    values[instr] = self._eval(instr, values)

            prev, block = block, next_block
        raise InterpError("fell off the CFG without a terminator")

    # ------------------------------------------------------------------

    def _value(self, value: Value, env: Dict[Value, RtVal]) -> RtVal:
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, Undef):
            return (0.0,) * value.ty.width if value.ty.is_vector else 0.0
        try:
            return env[value]
        except KeyError:
            raise InterpError(f"use of unevaluated value {getattr(value, 'name', value)}")

    def _eval(self, instr: Instr, env: Dict[Value, RtVal]) -> RtVal:
        if isinstance(instr, BinOp):
            return _binop(instr.op,
                          self._value(instr.lhs, env), self._value(instr.rhs, env))
        if isinstance(instr, Cmp):
            return _cmp(instr.op,
                        self._value(instr.lhs, env), self._value(instr.rhs, env))
        if isinstance(instr, UnOp):
            operand = self._value(instr.operand, env)
            if instr.op == "neg":
                return _map_unary(operand, lambda x: -x)
            return _map_unary(operand, lambda x: not x)
        if isinstance(instr, Convert):
            target = instr.ty.kind
            return _map_unary(self._value(instr.value, env),
                              lambda x: _convert_scalar(x, target))
        if isinstance(instr, Select):
            cond = self._value(instr.cond, env)
            return (self._value(instr.if_true, env) if cond
                    else self._value(instr.if_false, env))
        if isinstance(instr, ExtractElem):
            vec = self._value(instr.vector, env)
            return vec[instr.index] if isinstance(vec, tuple) else vec
        if isinstance(instr, InsertElem):
            vec = list(_as_tuple(self._value(instr.vector, env), instr.ty.width))
            vec[instr.index] = self._value(instr.scalar, env)  # type: ignore[call-overload]
            return tuple(vec)
        if isinstance(instr, Shuffle):
            src = _as_tuple(self._value(instr.source, env),
                            instr.source.ty.width)
            picked = tuple(src[i] for i in instr.mask)
            return picked if len(picked) > 1 else picked[0]
        if isinstance(instr, Construct):
            return tuple(self._value(op, env) for op in instr.operands)  # type: ignore[misc]
        if isinstance(instr, Call):
            args = [self._value(op, env) for op in instr.operands]
            return _apply_builtin(instr.callee, args, instr.ty.width)
        if isinstance(instr, Sample):
            self.stats.texture_samples += 1
            coords = _as_tuple(self._value(instr.coord, env),
                               instr.coord.ty.width)
            texture = self.textures.get(instr.sampler) or ProceduralTexture(
                seed=_stable_seed(instr.sampler))
            lod = 0.0
            if instr.lod is not None:
                lod = float(self._value(instr.lod, env))  # type: ignore[arg-type]
            if instr.sampler_kind == "sampler2DShadow":
                return texture.sample_shadow([float(c) for c in coords])
            return texture.sample([float(c) for c in coords],
                                  kind=instr.sampler_kind, lod=lod)
        if isinstance(instr, LoadGlobal):
            return self._load_global(instr, env)
        raise InterpError(f"cannot interpret {instr.opcode}")

    def _load_global(self, instr: LoadGlobal, env: Dict[Value, RtVal]) -> RtVal:
        source = self.inputs if instr.kind == "input" else self.uniforms
        if instr.var not in source:
            # Harness default: 0.5 floats (paper Section IV-B).
            return ((0.5,) * instr.ty.width) if instr.ty.is_vector else 0.5
        value = source[instr.var]
        if instr.column is not None:
            value = value[instr.column]  # type: ignore[index]
        if instr.element is not None:
            index = int(self._value(instr.element, env))  # type: ignore[arg-type]
            seq = value  # type: ignore[assignment]
            index = min(max(index, 0), len(seq) - 1)  # type: ignore[arg-type]
            value = seq[index]  # type: ignore[index]
        return value  # type: ignore[return-value]


def _stable_seed(name: str) -> int:
    return sum(ord(c) for c in name) % 17


def _as_tuple(value: RtVal, width: int) -> Tuple[Num, ...]:
    if isinstance(value, tuple):
        return value
    return (value,) * width


def _broadcast(a: RtVal, b: RtVal) -> Tuple[Tuple[Num, ...], Tuple[Num, ...]]:
    at = a if isinstance(a, tuple) else None
    bt = b if isinstance(b, tuple) else None
    width = len(at) if at else (len(bt) if bt else 1)
    return _as_tuple(a, width), _as_tuple(b, width)


def _rebuild(components: Sequence[Num], like_width: int) -> RtVal:
    if like_width == 1:
        return components[0]
    return tuple(components)


def _map_unary(value: RtVal, fn: Callable[[Num], Num]) -> RtVal:
    if isinstance(value, tuple):
        return tuple(fn(c) for c in value)
    return fn(value)


def _binop(op: str, a: RtVal, b: RtVal) -> RtVal:
    at, bt = _broadcast(a, b)
    out: List[Num] = []
    for x, y in zip(at, bt):
        out.append(_scalar_binop(op, x, y))
    return _rebuild(out, len(at))


def _scalar_binop(op: str, x: Num, y: Num) -> Num:
    if op == "add":
        return x + y
    if op == "sub":
        return x - y
    if op == "mul":
        return x * y
    if op == "div":
        if isinstance(x, float) or isinstance(y, float):
            if y == 0.0:
                return math.copysign(_BIG, x if x else 1.0)
            return x / y
        return int(x / y) if y else 0
    if op == "mod":
        if isinstance(x, float) or isinstance(y, float):
            return x - y * math.floor(x / y) if y else 0.0
        return x % y if y else 0
    if op == "and":
        return bool(x) and bool(y)
    if op == "or":
        return bool(x) or bool(y)
    if op == "xor":
        return bool(x) != bool(y)
    raise InterpError(f"unknown binop {op}")


def _cmp(op: str, a: RtVal, b: RtVal) -> bool:
    if op == "eq":
        return a == b
    if op == "ne":
        return a != b
    if op == "lt":
        return a < b  # type: ignore[operator]
    if op == "le":
        return a <= b  # type: ignore[operator]
    if op == "gt":
        return a > b  # type: ignore[operator]
    if op == "ge":
        return a >= b  # type: ignore[operator]
    raise InterpError(f"unknown cmp {op}")


def _convert_scalar(x: Num, kind: str) -> Num:
    if kind == "float":
        return float(x)
    if kind == "int":
        return int(x)
    return bool(x)


# ---------------------------------------------------------------------------
# Builtin math library
# ---------------------------------------------------------------------------


def _safe_pow(x: float, y: float) -> float:
    if x < 0.0:
        x = abs(x)  # GLSL: undefined; deterministic guard
    if x == 0.0 and y <= 0.0:
        return 0.0
    try:
        return math.pow(x, y)
    except OverflowError:
        return _BIG


def _safe_log(x: float) -> float:
    return math.log(x) if x > 0.0 else -_BIG


def _safe_sqrt(x: float) -> float:
    return math.sqrt(x) if x > 0.0 else 0.0


def _length(v: Sequence[float]) -> float:
    return math.sqrt(sum(float(c) * float(c) for c in v))


_UNARY_FLOAT = {
    "radians": math.radians,
    "degrees": math.degrees,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "asin": lambda x: math.asin(max(-1.0, min(1.0, x))),
    "acos": lambda x: math.acos(max(-1.0, min(1.0, x))),
    "exp": lambda x: math.exp(min(x, 80.0)),
    "log": _safe_log,
    "exp2": lambda x: math.pow(2.0, min(x, 120.0)),
    "log2": lambda x: math.log2(x) if x > 0.0 else -_BIG,
    "sqrt": _safe_sqrt,
    "inversesqrt": lambda x: 1.0 / math.sqrt(x) if x > 0.0 else _BIG,
    "abs": abs,
    "sign": lambda x: (x > 0) - (x < 0),
    "floor": math.floor,
    "ceil": math.ceil,
    "fract": lambda x: x - math.floor(x),
    "round": lambda x: float(round(x)),
    "trunc": math.trunc,
}


def _apply_builtin(name: str, args: List[RtVal], result_width: int) -> RtVal:
    if name in _UNARY_FLOAT:
        return _map_unary(args[0], lambda x: float(_UNARY_FLOAT[name](float(x))))

    if name == "atan":
        if len(args) == 1:
            return _map_unary(args[0], lambda x: math.atan(float(x)))
        a, b = _broadcast(args[0], args[1])
        return _rebuild([math.atan2(float(x), float(y)) for x, y in zip(a, b)], len(a))

    if name in ("pow", "mod", "min", "max", "step"):
        a, b = _broadcast(args[0], args[1])
        fn = {
            "pow": lambda x, y: _safe_pow(float(x), float(y)),
            "mod": lambda x, y: _scalar_binop("mod", float(x), float(y)),
            "min": min,
            "max": max,
            "step": lambda edge, x: 0.0 if x < edge else 1.0,
        }[name]
        return _rebuild([fn(x, y) for x, y in zip(a, b)], len(a))

    if name == "clamp":
        width = max(len(a) if isinstance(a, tuple) else 1 for a in args[:3])
        x = _as_tuple(args[0], width)
        lo = _as_tuple(args[1], width)
        hi = _as_tuple(args[2], width)
        return _rebuild([min(max(v, l), h) for v, l, h in zip(x, lo, hi)], width)

    if name == "mix":
        width = max(len(a) if isinstance(a, tuple) else 1 for a in args[:3])
        x = _as_tuple(args[0], width)
        y = _as_tuple(args[1], width)
        a = _as_tuple(args[2], width)
        return _rebuild([xv * (1.0 - av) + yv * av for xv, yv, av in zip(x, y, a)],
                        width)

    if name == "smoothstep":
        width = max(len(a) if isinstance(a, tuple) else 1 for a in args[:3])
        e0 = _as_tuple(args[0], width)
        e1 = _as_tuple(args[1], width)
        x = _as_tuple(args[2], width)
        out = []
        for a0, a1, xv in zip(e0, e1, x):
            span = a1 - a0
            t = (xv - a0) / span if span else 0.0
            t = min(max(t, 0.0), 1.0)
            out.append(t * t * (3.0 - 2.0 * t))
        return _rebuild(out, len(e0))

    if name == "length":
        return _length(_as_tuple(args[0], 1))

    if name == "distance":
        a, b = _broadcast(args[0], args[1])
        return _length([x - y for x, y in zip(a, b)])

    if name == "dot":
        a, b = _broadcast(args[0], args[1])
        return float(sum(float(x) * float(y) for x, y in zip(a, b)))

    if name == "cross":
        a = _as_tuple(args[0], 3)
        b = _as_tuple(args[1], 3)
        return (a[1] * b[2] - a[2] * b[1],
                a[2] * b[0] - a[0] * b[2],
                a[0] * b[1] - a[1] * b[0])

    if name == "normalize":
        v = _as_tuple(args[0], 1)
        n = _length(v)
        if n == 0.0:
            return _rebuild([0.0] * len(v), len(v))
        return _rebuild([float(c) / n for c in v], len(v))

    if name == "reflect":
        i, n = _broadcast(args[0], args[1])
        d = sum(float(x) * float(y) for x, y in zip(n, i))
        return _rebuild([float(x) - 2.0 * d * float(y) for x, y in zip(i, n)], len(i))

    if name == "refract":
        i, n = _broadcast(args[0], args[1])
        eta = float(args[2]) if not isinstance(args[2], tuple) else float(args[2][0])
        d = sum(float(x) * float(y) for x, y in zip(n, i))
        k = 1.0 - eta * eta * (1.0 - d * d)
        if k < 0.0:
            return _rebuild([0.0] * len(i), len(i))
        factor = eta * d + math.sqrt(k)
        return _rebuild([eta * float(x) - factor * float(y) for x, y in zip(i, n)],
                        len(i))

    if name == "faceforward":
        n, i = _broadcast(args[0], args[1])
        _, nref = _broadcast(args[0], args[2])
        d = sum(float(x) * float(y) for x, y in zip(nref, i))
        return _rebuild([float(x) if d < 0 else -float(x) for x in n], len(n))

    if name == "any":
        return any(bool(c) for c in _as_tuple(args[0], 1))
    if name == "all":
        return all(bool(c) for c in _as_tuple(args[0], 1))
    if name == "not":
        return _map_unary(args[0], lambda x: not x)
    if name in ("lessThan", "greaterThan", "equal"):
        a, b = _broadcast(args[0], args[1])
        fn = {"lessThan": lambda x, y: x < y,
              "greaterThan": lambda x, y: x > y,
              "equal": lambda x, y: x == y}[name]
        return tuple(fn(x, y) for x, y in zip(a, b))

    raise InterpError(f"builtin {name!r} not implemented in interpreter")
