"""Deep-copy a Function/Module (used to run 256 flag combinations off one
parse+lower instead of re-running the frontend per combination).

Cloning never mutates its source: unreachable blocks are filtered during the
copy rather than removed from the input, so a module shared between trie
states (the "flag disabled" edge reuses its parent verbatim) stays intact
while its siblings clone and diverge.

``preserve_names=True`` carries each instruction's SSA name onto its copy.
The reassociation passes order expression leaves by those names (SSA
creation order), so a mid-pipeline clone must keep them for the copy to
behave byte-identically to continuing on the original; a fresh-name clone
renumbers values in RPO, which is only equivalent when cloning a pristine
front-end module (every variant then gets the *same* renumbering)."""

from __future__ import annotations

from typing import Dict

from repro.ir.instructions import (
    BinOp, Br, Call, Cmp, CondBr, Construct, Convert, Discard, ExtractElem,
    InsertElem, Instr, LoadElem, LoadGlobal, LoadVar, Phi, Ret, Sample, Select,
    Shuffle, StoreElem, StoreOutput, StoreVar, UnOp,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Slot, Value


def clone_module(module: Module, preserve_names: bool = False) -> Module:
    """Deep-copy *module* without mutating it (see :func:`clone_function`)."""
    return Module(clone_function(module.function, preserve_names),
                  module.interface, module.version)


def _reachable_blocks(function: Function) -> set:
    reachable = set()
    stack = [function.entry]
    while stack:
        block = stack.pop()
        if block in reachable:
            continue
        reachable.add(block)
        stack.extend(block.successors())
    return reachable


def clone_function(function: Function,
                   preserve_names: bool = False) -> Function:
    """Deep-copy *function*: fresh blocks/instructions with remapped operand
    edges; ``preserve_names`` keeps SSA value names verbatim (the
    compilation trie's requirement for byte-identical emission)."""
    new_fn = Function(function.name)
    block_map: Dict[BasicBlock, BasicBlock] = {}
    slot_map: Dict[Slot, Slot] = {}
    value_map: Dict[Value, Value] = {}

    for slot in function.slots:
        clone = Slot(slot.name, slot.ty, slot.array_length)
        clone.const_init = slot.const_init
        clone.is_mutated = slot.is_mutated
        slot_map[slot] = clone
        new_fn.slots.append(clone)

    reachable = _reachable_blocks(function)
    for block in function.blocks:
        if block not in reachable:
            continue
        block_map[block] = new_fn.add_block(BasicBlock(block.name))

    # Pre-create phi shells (they may be used across back edges), then clone
    # the straight-line instructions in reverse postorder so every non-phi
    # definition is cloned before its uses (the RPO property of reducible
    # CFGs: dominators precede the blocks they dominate).
    from repro.ir.cfg import reverse_postorder

    phis: Dict[Phi, Phi] = {}
    for block in function.blocks:
        if block not in reachable:
            continue
        new_block = block_map[block]
        for instr in block.instrs:
            if isinstance(instr, Phi):
                new_phi = Phi(instr.ty)
                if preserve_names:
                    new_phi.name = instr.name
                new_block.instrs.append(new_phi)
                new_phi.block = new_block
                phis[instr] = new_phi
                value_map[instr] = new_phi

    for block in reverse_postorder(function):
        new_block = block_map[block]
        for instr in block.instrs:
            if isinstance(instr, Phi):
                continue
            new_instr = _clone(instr, value_map, block_map, slot_map)
            if preserve_names:
                new_instr.name = instr.name
            new_block.instrs.append(new_instr)
            new_instr.block = new_block
            value_map[instr] = new_instr

    for old_phi, new_phi in phis.items():
        for pred, value in old_phi.incoming:
            if pred not in block_map:  # edge from an unreachable block
                continue
            new_phi.add_incoming(block_map[pred], value_map.get(value, value))

    return new_fn


def _clone(instr: Instr, vm: Dict[Value, Value],
           bm: Dict[BasicBlock, BasicBlock], sm: Dict[Slot, Slot]) -> Instr:
    def m(value: Value) -> Value:
        return vm.get(value, value)

    if isinstance(instr, BinOp):
        return BinOp(instr.op, m(instr.lhs), m(instr.rhs))
    if isinstance(instr, Cmp):
        return Cmp(instr.op, m(instr.lhs), m(instr.rhs))
    if isinstance(instr, UnOp):
        return UnOp(instr.op, m(instr.operand))
    if isinstance(instr, Convert):
        return Convert(m(instr.value), instr.ty.kind)
    if isinstance(instr, Select):
        return Select(m(instr.cond), m(instr.if_true), m(instr.if_false))
    if isinstance(instr, ExtractElem):
        return ExtractElem(m(instr.vector), instr.index)
    if isinstance(instr, InsertElem):
        return InsertElem(m(instr.vector), m(instr.scalar), instr.index)
    if isinstance(instr, Shuffle):
        return Shuffle(m(instr.source), list(instr.mask))
    if isinstance(instr, Construct):
        return Construct(instr.ty, [m(op) for op in instr.operands])
    if isinstance(instr, Call):
        return Call(instr.callee, instr.ty, [m(op) for op in instr.operands])
    if isinstance(instr, Sample):
        lod = m(instr.lod) if instr.lod is not None else None
        return Sample(instr.sampler, instr.sampler_kind, instr.ty,
                      m(instr.coord), lod)
    if isinstance(instr, LoadGlobal):
        element = m(instr.element) if instr.element is not None else None
        return LoadGlobal(instr.var, instr.ty, instr.kind,
                          column=instr.column, element=element)
    if isinstance(instr, StoreOutput):
        return StoreOutput(instr.var, m(instr.value))
    if isinstance(instr, LoadVar):
        return LoadVar(sm[instr.slot])
    if isinstance(instr, StoreVar):
        return StoreVar(sm[instr.slot], m(instr.value))
    if isinstance(instr, LoadElem):
        return LoadElem(sm[instr.slot], m(instr.index))
    if isinstance(instr, StoreElem):
        return StoreElem(sm[instr.slot], m(instr.index), m(instr.value))
    if isinstance(instr, Br):
        return Br(bm[instr.target])
    if isinstance(instr, CondBr):
        return CondBr(m(instr.cond), bm[instr.if_true], bm[instr.if_false])
    if isinstance(instr, Ret):
        return Ret()
    if isinstance(instr, Discard):
        return Discard()
    raise AssertionError(f"cannot clone {instr.opcode}")
