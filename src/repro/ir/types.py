"""IR value types: scalars and short vectors of float/int/bool.

Matrices never reach the IR — lowering scalarizes them into column vectors,
which is exactly the LunarGlass artifact the paper describes ("the matrices
are divided up into their individual scalar components").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError


@dataclass(frozen=True)
class IRType:
    """A scalar (width 1) or vector (width 2..4) of a base kind."""

    kind: str  # "float" | "int" | "bool"
    width: int = 1

    def __post_init__(self):
        if self.kind not in ("float", "int", "bool"):
            raise IRError(f"invalid IR type kind {self.kind!r}")
        if not 1 <= self.width <= 4:
            raise IRError(f"invalid IR vector width {self.width}")

    @property
    def is_vector(self) -> bool:
        return self.width > 1

    @property
    def is_scalar(self) -> bool:
        return self.width == 1

    @property
    def scalar(self) -> "IRType":
        return IRType(self.kind, 1)

    def with_width(self, width: int) -> "IRType":
        return IRType(self.kind, width)

    def __str__(self) -> str:
        if self.width == 1:
            return self.kind
        return f"<{self.width} x {self.kind}>"

    def glsl_name(self) -> str:
        """The GLSL spelling of this type (used by the backend)."""
        if self.width == 1:
            return self.kind
        prefix = {"float": "vec", "int": "ivec", "bool": "bvec"}[self.kind]
        return f"{prefix}{self.width}"


FLOAT = IRType("float", 1)
INT = IRType("int", 1)
BOOL = IRType("bool", 1)


def vec(kind: str, width: int) -> IRType:
    """The IR type with *kind* elements and *width* lanes."""
    return IRType(kind, width)


def float_vec(width: int) -> IRType:
    """The float IR type with *width* lanes."""
    return IRType("float", width)
