"""AST -> IR lowering, reproducing LunarGlass's source-to-source artifacts.

Design notes
------------
- **Full inlining.**  Every user-function call is inlined (GPU shader
  compilers do the same); ``return`` anywhere in a callee is supported via a
  return slot plus a continuation block.
- **Matrix scalarization artifact.**  The IR has no matrix type: a ``matN``
  becomes N column-vector values, and matrix algebra expands into per-column
  multiply/add chains — "tens of lines worth of scalarized calculations"
  (paper Section III-C-a).
- **Unnecessary vectorization artifact.**  ``vec * float`` splats the scalar
  into a vector (Construct) before the multiply, exactly like LLVM-based
  LunarGlass (Section III-C-b).
- **Single exit.**  ``main`` gets one exit block holding the StoreOutputs and
  Ret; early returns branch to it, ``discard`` terminates directly.
- Local scalars/vectors become slots (promoted by mem2reg); arrays stay as
  slots with LoadElem/StoreElem; ``const`` arrays carry their initializer for
  later constant folding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import LoweringError
from repro.glsl import ast
from repro.glsl import types as T
from repro.glsl.builtins import TEXTURE_BUILTINS
from repro.glsl.introspect import shader_interface
from repro.glsl.parser import swizzle_indices
from repro.ir.builder import IRBuilder
from repro.ir.instructions import Phi
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import IRType
from repro.ir.values import Constant, Slot, Undef, Value

#: A lowered matrix rvalue: a list of column-vector Values.
MatrixVal = List[Value]
LoweredVal = Union[Value, MatrixVal]

_GEN_BUILTINS_SPLAT = frozenset(
    {
        "pow", "mod", "min", "max", "clamp", "mix", "step", "smoothstep",
        "atan",
    }
)


def ir_type(ty: T.GLSLType) -> IRType:
    """Map a GLSL scalar/vector type to an IR type."""
    if isinstance(ty, T.Scalar):
        return IRType(_kind(ty.kind), 1)
    if isinstance(ty, T.Vector):
        return IRType(_kind(ty.kind), ty.size)
    raise LoweringError(f"type {ty} has no direct IR equivalent")


def _kind(kind: T.ScalarKind) -> str:
    if kind == T.ScalarKind.FLOAT:
        return "float"
    if kind in (T.ScalarKind.INT, T.ScalarKind.UINT):
        return "int"
    return "bool"


class _Binding:
    """Base class for name bindings in the lowering environment."""


class _SlotBinding(_Binding):
    def __init__(self, slot: Slot):
        self.slot = slot


class _ArrayBinding(_Binding):
    def __init__(self, slot: Slot, element_ty: T.GLSLType):
        self.slot = slot
        self.element_ty = element_ty


class _MatrixBinding(_Binding):
    def __init__(self, columns: List[Slot], size: int):
        self.columns = columns
        self.size = size


class _UniformBinding(_Binding):
    def __init__(self, name: str, ty: T.GLSLType):
        self.name = name
        self.ty = ty


class _InputBinding(_Binding):
    def __init__(self, name: str, ty: T.GLSLType):
        self.name = name
        self.ty = ty


class _SamplerBinding(_Binding):
    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind


class _ConstBinding(_Binding):
    def __init__(self, value: Constant):
        self.value = value


def lower_shader(shader: ast.Shader, version: Optional[str] = None) -> Module:
    """Lower a parsed fragment shader into an IR module."""
    return _Lowerer(shader).lower(version)


class _Lowerer:
    def __init__(self, shader: ast.Shader):
        self.shader = shader
        self.interface = shader_interface(shader)
        self.function = Function("main")
        self.builder = IRBuilder(self.function)
        self.env: Dict[str, _Binding] = {}
        self.output_slots: Dict[str, Slot] = {}
        self.loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []  # (continue, break)
        self._inline_depth = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def lower(self, version: Optional[str]) -> Module:
        main = self.shader.function("main")
        if main is None:
            raise LoweringError("shader has no main()")

        entry = self.builder.new_block("entry")
        self.builder.set_block(entry)
        self._bind_globals()

        self._lower_block(main.body)
        if not self.builder.terminated:
            self._emit_return()

        self.function.remove_unreachable_blocks()
        return Module(self.function, self.interface, version)

    def _emit_return(self) -> None:
        """Store every output variable and return (one per return site)."""
        for out in self.interface.outputs:
            slot = self.output_slots[out.name]
            value = self.builder.load_var(slot)
            self.builder.store_output(out.name, value)
        self.builder.ret()

    # ------------------------------------------------------------------
    # Globals
    # ------------------------------------------------------------------

    def _bind_globals(self) -> None:
        for decl in self.shader.globals:
            if decl.qualifier == "uniform":
                base = decl.ty
                if isinstance(base, T.Sampler):
                    self.env[decl.name] = _SamplerBinding(decl.name, base.name)
                else:
                    self.env[decl.name] = _UniformBinding(decl.name, base)
            elif decl.qualifier == "in":
                self.env[decl.name] = _InputBinding(decl.name, decl.ty)
            elif decl.qualifier == "out":
                slot = self._make_slot(decl.name, decl.ty)
                if isinstance(slot, Slot) and not slot.is_array:
                    zero = Constant.splat(slot.ty, 0.0 if slot.ty.kind == "float" else 0)
                    self.builder.store_var(slot, zero)
                self.output_slots[decl.name] = slot  # type: ignore[assignment]
                self.env[decl.name] = _SlotBinding(slot)  # type: ignore[arg-type]
            elif decl.qualifier == "const" or decl.qualifier is None:
                if decl.init is None:
                    raise LoweringError(f"global {decl.name} lacks an initializer")
                self._bind_const_global(decl)

    def _bind_const_global(self, decl: ast.GlobalDecl) -> None:
        if isinstance(decl.ty, T.Array):
            values = [self._const_eval(e) for e in decl.init.elements]  # type: ignore[union-attr]
            slot = Slot(decl.name, ir_type(decl.ty.element), len(values))
            slot.const_init = tuple(values)
            self.function.new_slot(slot)
            self.env[decl.name] = _ArrayBinding(slot, decl.ty.element)
        else:
            self.env[decl.name] = _ConstBinding(self._const_eval(decl.init))

    def _make_slot(self, name: str, ty: T.GLSLType) -> Union[Slot, List[Slot]]:
        if isinstance(ty, T.Array):
            slot = Slot(name, ir_type(ty.element), ty.length or 0)
            return self.function.new_slot(slot)
        if isinstance(ty, T.Matrix):
            cols = [
                self.function.new_slot(
                    Slot(f"{name}.col{i}", IRType("float", ty.size)))
                for i in range(ty.size)
            ]
            return cols  # type: ignore[return-value]
        return self.function.new_slot(Slot(name, ir_type(ty)))

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _lower_block(self, block: ast.BlockStmt) -> None:
        for stmt in block.body:
            if self.builder.terminated:
                # Code after return/discard/break is unreachable; skip it the
                # way LLVM's reader drops trailing dead statements.
                return
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.BlockStmt):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            self._lower_decl(stmt)
        elif isinstance(stmt, ast.AssignStmt):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            if not self.loop_stack:
                raise LoweringError("break outside loop")
            self.builder.br(self.loop_stack[-1][1])
        elif isinstance(stmt, ast.ContinueStmt):
            if not self.loop_stack:
                raise LoweringError("continue outside loop")
            self.builder.br(self.loop_stack[-1][0])
        elif isinstance(stmt, ast.DiscardStmt):
            self.builder.discard()
        else:
            raise LoweringError(f"unsupported statement {type(stmt).__name__}")

    def _lower_decl(self, stmt: ast.DeclStmt) -> None:
        for decl in stmt.declarators:
            if stmt.is_const and isinstance(decl.ty, T.Array) and decl.init is not None:
                try:
                    values = [self._const_eval(e)
                              for e in decl.init.elements]  # type: ignore[union-attr]
                except LoweringError:
                    values = None
                if values is not None:
                    slot = Slot(decl.name, ir_type(decl.ty.element), len(values))
                    slot.const_init = tuple(values)
                    self.function.new_slot(slot)
                    self.env[decl.name] = _ArrayBinding(slot, decl.ty.element)
                    continue
            binding = self._declare_local(decl.name, decl.ty)
            if decl.init is not None:
                self._store_binding(binding, decl.ty, self._lower_expr(decl.init))

    def _declare_local(self, name: str, ty: T.GLSLType) -> _Binding:
        made = self._make_slot(name, ty)
        if isinstance(ty, T.Array):
            binding: _Binding = _ArrayBinding(made, ty.element)  # type: ignore[arg-type]
        elif isinstance(ty, T.Matrix):
            binding = _MatrixBinding(made, ty.size)  # type: ignore[arg-type]
        else:
            binding = _SlotBinding(made)  # type: ignore[arg-type]
        self.env[name] = binding
        return binding

    def _store_binding(self, binding: _Binding, ty: T.GLSLType,
                       value: LoweredVal) -> None:
        if isinstance(binding, _SlotBinding):
            assert isinstance(value, Value)
            self.builder.store_var(binding.slot, value)
        elif isinstance(binding, _MatrixBinding):
            assert isinstance(value, list)
            for slot, column in zip(binding.columns, value):
                self.builder.store_var(slot, column)
        elif isinstance(binding, _ArrayBinding):
            if not isinstance(value, list):
                raise LoweringError("array initializer must be an array literal")
            for index, element in enumerate(value):
                self.builder.store_elem(binding.slot, Constant.int_(index), element)
        else:
            raise LoweringError("cannot assign to this binding")

    def _lower_assign(self, stmt: ast.AssignStmt) -> None:
        target = stmt.target
        assert target is not None and stmt.value is not None
        if stmt.op == "=":
            value = self._lower_expr(stmt.value)
        else:
            op = {"+=": "add", "-=": "sub", "*=": "mul", "/=": "div"}[stmt.op]
            current = self._lower_expr(target)
            rhs = self._lower_expr(stmt.value)
            value = self._emit_arith(op, current, rhs, target.ty, stmt.value.ty)
        self._store_lvalue(target, value)

    # -- lvalues ------------------------------------------------------------

    def _store_lvalue(self, target: ast.Expr, value: LoweredVal) -> None:
        if isinstance(target, ast.Ident):
            binding = self.env.get(target.name)
            if binding is None:
                raise LoweringError(f"assignment to unknown name {target.name}")
            if isinstance(binding, (_UniformBinding, _InputBinding, _SamplerBinding,
                                    _ConstBinding)):
                raise LoweringError(f"cannot assign to {target.name}")
            self._store_binding(binding, target.ty, value)  # type: ignore[arg-type]
            return
        if isinstance(target, ast.Member):
            base = target.base
            assert isinstance(base, ast.Ident), "swizzle store base must be a variable"
            binding = self.env.get(base.name)
            if not isinstance(binding, _SlotBinding):
                raise LoweringError(f"cannot swizzle-store to {base.name}")
            indices = swizzle_indices(target.name)
            current = self.builder.load_var(binding.slot)
            assert isinstance(value, Value)
            if len(indices) == 1:
                current = self.builder.insert(current, value, indices[0])
            else:
                for lane, component in enumerate(indices):
                    scalar = self.builder.extract(value, lane)
                    current = self.builder.insert(current, scalar, component)
            self.builder.store_var(binding.slot, current)
            return
        if isinstance(target, ast.Index):
            base = target.base
            index = self._lower_expr(target.index)
            assert isinstance(index, Value)
            if isinstance(base, ast.Ident):
                binding = self.env.get(base.name)
                if isinstance(binding, _ArrayBinding):
                    if binding.slot.const_init is not None:
                        raise LoweringError(f"cannot assign to const array {base.name}")
                    assert isinstance(value, Value)
                    self.builder.store_elem(binding.slot, index, value)
                    return
                if isinstance(binding, _SlotBinding) and binding.slot.ty.is_vector:
                    if not isinstance(index, Constant):
                        raise LoweringError(
                            "dynamic index store into a vector is unsupported")
                    current = self.builder.load_var(binding.slot)
                    assert isinstance(value, Value)
                    current = self.builder.insert(current, value, int(index.value))
                    self.builder.store_var(binding.slot, current)
                    return
                if isinstance(binding, _MatrixBinding):
                    if not isinstance(index, Constant):
                        raise LoweringError("dynamic matrix column store unsupported")
                    assert isinstance(value, Value)
                    self.builder.store_var(binding.columns[int(index.value)], value)
                    return
            raise LoweringError("unsupported indexed assignment target")
        raise LoweringError(f"unsupported assignment target {type(target).__name__}")

    # -- control flow -------------------------------------------------------

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self._lower_expr(stmt.cond)
        assert isinstance(cond, Value)
        then_block = self.builder.new_block("if.then")
        merge_block = self.builder.new_block("if.end")
        else_block = merge_block
        if stmt.else_body is not None:
            else_block = self.builder.new_block("if.else")
        self.builder.cond_br(cond, then_block, else_block)

        self.builder.set_block(then_block)
        self._lower_block(stmt.then_body)
        if not self.builder.terminated:
            self.builder.br(merge_block)

        if stmt.else_body is not None:
            self.builder.set_block(else_block)
            self._lower_block(stmt.else_body)
            if not self.builder.terminated:
                self.builder.br(merge_block)

        self.builder.set_block(merge_block)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        header = self.builder.new_block("for.header")
        body = self.builder.new_block("for.body")
        step = self.builder.new_block("for.step")
        exit_block = self.builder.new_block("for.end")
        self.builder.br(header)

        self.builder.set_block(header)
        if stmt.cond is not None:
            cond = self._lower_expr(stmt.cond)
            assert isinstance(cond, Value)
            self.builder.cond_br(cond, body, exit_block)
        else:
            self.builder.br(body)

        self.builder.set_block(body)
        self.loop_stack.append((step, exit_block))
        self._lower_block(stmt.body)
        self.loop_stack.pop()
        if not self.builder.terminated:
            self.builder.br(step)

        self.builder.set_block(step)
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        self.builder.br(header)

        self.builder.set_block(exit_block)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        header = self.builder.new_block("while.header")
        body = self.builder.new_block("while.body")
        exit_block = self.builder.new_block("while.end")
        self.builder.br(header)

        self.builder.set_block(header)
        cond = self._lower_expr(stmt.cond)
        assert isinstance(cond, Value)
        self.builder.cond_br(cond, body, exit_block)

        self.builder.set_block(body)
        self.loop_stack.append((header, exit_block))
        self._lower_block(stmt.body)
        self.loop_stack.pop()
        if not self.builder.terminated:
            self.builder.br(header)

        self.builder.set_block(exit_block)

    def _lower_return(self, stmt: ast.ReturnStmt) -> None:
        if self._inline_depth:
            raise LoweringError(
                "return inside loops of inlined functions is unsupported")
        if stmt.value is not None:
            raise LoweringError("main() cannot return a value")
        self._emit_return()

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> LoweredVal:
        if isinstance(expr, ast.FloatLit):
            return Constant.float_(expr.value)
        if isinstance(expr, ast.IntLit):
            return Constant.int_(expr.value)
        if isinstance(expr, ast.BoolLit):
            return Constant.bool_(expr.value)
        if isinstance(expr, ast.Ident):
            return self._lower_ident(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Ternary):
            return self._lower_ternary(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, ast.ArrayLiteral):
            return [self._as_value(self._lower_expr(e)) for e in expr.elements]  # type: ignore[return-value]
        if isinstance(expr, ast.Index):
            return self._lower_index(expr)
        if isinstance(expr, ast.Member):
            return self._lower_member(expr)
        raise LoweringError(f"unsupported expression {type(expr).__name__}")

    def _as_value(self, val: LoweredVal) -> Value:
        if isinstance(val, list):
            raise LoweringError("matrix value in scalar/vector context")
        return val

    def _lower_ident(self, expr: ast.Ident) -> LoweredVal:
        binding = self.env.get(expr.name)
        if binding is None:
            raise LoweringError(f"unknown identifier {expr.name}")
        if isinstance(binding, _ConstBinding):
            return binding.value
        if isinstance(binding, _SlotBinding):
            return self.builder.load_var(binding.slot)
        if isinstance(binding, _MatrixBinding):
            return [self.builder.load_var(col) for col in binding.columns]
        if isinstance(binding, _InputBinding):
            return self._load_interface(expr.name, binding.ty, "input")
        if isinstance(binding, _UniformBinding):
            return self._load_interface(expr.name, binding.ty, "uniform")
        if isinstance(binding, _ArrayBinding):
            raise LoweringError(f"array {expr.name} used without an index")
        if isinstance(binding, _SamplerBinding):
            raise LoweringError(f"sampler {expr.name} used outside texture()")
        raise LoweringError(f"cannot read {expr.name}")

    def _load_interface(self, name: str, ty: T.GLSLType, kind: str) -> LoweredVal:
        if isinstance(ty, T.Matrix):
            col_ty = IRType("float", ty.size)
            return [
                self.builder.load_global(name, col_ty, kind, column=i)
                for i in range(ty.size)
            ]
        if isinstance(ty, T.Array):
            raise LoweringError(f"{kind} array {name} used without an index")
        return self.builder.load_global(name, ir_type(ty), kind)

    def _lower_binary(self, expr: ast.Binary) -> LoweredVal:
        op_map = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod"}
        assert expr.left is not None and expr.right is not None
        if expr.op in ("&&", "||", "^^"):
            lhs = self._as_value(self._lower_expr(expr.left))
            rhs = self._as_value(self._lower_expr(expr.right))
            op = {"&&": "and", "||": "or", "^^": "xor"}[expr.op]
            return self.builder.binop(op, lhs, rhs)
        if expr.op in ("==", "!=", "<", ">", "<=", ">="):
            return self._lower_compare(expr)
        if expr.op in op_map:
            lhs = self._lower_expr(expr.left)
            rhs = self._lower_expr(expr.right)
            return self._emit_arith(op_map[expr.op], lhs, rhs,
                                    expr.left.ty, expr.right.ty)
        raise LoweringError(f"unsupported binary operator {expr.op}")

    def _lower_compare(self, expr: ast.Binary) -> Value:
        op = {"==": "eq", "!=": "ne", "<": "lt", ">": "gt",
              "<=": "le", ">=": "ge"}[expr.op]
        lhs = self._as_value(self._lower_expr(expr.left))
        rhs = self._as_value(self._lower_expr(expr.right))
        if lhs.ty.is_vector:
            # Vector ==/!= reduces component-wise with and/or.
            result: Optional[Value] = None
            for lane in range(lhs.ty.width):
                a = self.builder.extract(lhs, lane)
                b = self.builder.extract(rhs, lane)
                piece = self.builder.cmp("eq" if op == "eq" else "ne", a, b)
                if result is None:
                    result = piece
                else:
                    result = self.builder.binop(
                        "and" if op == "eq" else "or", result, piece)
            assert result is not None
            return result
        return self.builder.cmp(op, lhs, rhs)

    def _emit_arith(self, op: str, lhs: LoweredVal, rhs: LoweredVal,
                    lty: Optional[T.GLSLType], rty: Optional[T.GLSLType]) -> LoweredVal:
        # Matrix algebra: scalarized (the LunarGlass artifact).
        l_is_mat = isinstance(lhs, list)
        r_is_mat = isinstance(rhs, list)
        if l_is_mat or r_is_mat:
            return self._matrix_arith(op, lhs, rhs)

        assert isinstance(lhs, Value) and isinstance(rhs, Value)
        # Kind promotion (int -> float).
        if lhs.ty.kind == "int" and rhs.ty.kind == "float":
            lhs = self.builder.convert(lhs, "float")
        elif rhs.ty.kind == "int" and lhs.ty.kind == "float":
            rhs = self.builder.convert(rhs, "float")
        # Width promotion: splat the scalar side (vectorization artifact).
        if lhs.ty.width != rhs.ty.width:
            if lhs.ty.is_scalar:
                lhs = self.builder.splat(lhs, rhs.ty.width)
            elif rhs.ty.is_scalar:
                rhs = self.builder.splat(rhs, lhs.ty.width)
            else:
                raise LoweringError(f"width mismatch {lhs.ty} vs {rhs.ty}")
        return self.builder.binop(op, lhs, rhs)

    def _matrix_arith(self, op: str, lhs: LoweredVal, rhs: LoweredVal) -> LoweredVal:
        if op == "mul":
            if isinstance(lhs, list) and isinstance(rhs, list):
                return self._mat_mat_mul(lhs, rhs)
            if isinstance(lhs, list) and isinstance(rhs, Value) and rhs.ty.is_vector:
                return self._mat_vec_mul(lhs, rhs)
            if isinstance(rhs, list) and isinstance(lhs, Value) and lhs.ty.is_vector:
                return self._vec_mat_mul(lhs, rhs)
            # matrix * scalar
            mat, scalar = (lhs, rhs) if isinstance(lhs, list) else (rhs, lhs)
            assert isinstance(mat, list) and isinstance(scalar, Value)
            splat = self.builder.splat(scalar, mat[0].ty.width)
            return [self.builder.binop("mul", col, splat) for col in mat]
        if op in ("add", "sub") and isinstance(lhs, list) and isinstance(rhs, list):
            return [self.builder.binop(op, a, b) for a, b in zip(lhs, rhs)]
        if op == "div" and isinstance(lhs, list) and isinstance(rhs, Value):
            splat = self.builder.splat(rhs, lhs[0].ty.width)
            return [self.builder.binop("div", col, splat) for col in lhs]
        raise LoweringError(f"unsupported matrix operation {op}")

    def _mat_vec_mul(self, mat: MatrixVal, vec_val: Value) -> Value:
        """m * v = sum_i(col_i * v[i]) — fully scalarized per column."""
        result: Optional[Value] = None
        for i, column in enumerate(mat):
            scalar = self.builder.extract(vec_val, i)
            splat = self.builder.splat(scalar, column.ty.width)
            term = self.builder.binop("mul", column, splat)
            result = term if result is None else self.builder.binop("add", result, term)
        assert result is not None
        return result

    def _vec_mat_mul(self, vec_val: Value, mat: MatrixVal) -> Value:
        """v * m: result[i] = dot(v, col_i) via scalar expansion."""
        width = len(mat)
        lanes: List[Value] = []
        for column in mat:
            acc: Optional[Value] = None
            for lane in range(vec_val.ty.width):
                a = self.builder.extract(vec_val, lane)
                b = self.builder.extract(column, lane)
                prod = self.builder.binop("mul", a, b)
                acc = prod if acc is None else self.builder.binop("add", acc, prod)
            assert acc is not None
            lanes.append(acc)
        return self.builder.construct(IRType("float", width), lanes)

    def _mat_mat_mul(self, a: MatrixVal, b: MatrixVal) -> MatrixVal:
        """(a*b).col_j = a * b.col_j."""
        return [self._mat_vec_mul(a, col) for col in b]

    def _lower_unary(self, expr: ast.Unary) -> LoweredVal:
        assert expr.operand is not None
        if expr.op in ("++", "--"):
            target = expr.operand
            if not isinstance(target, ast.Ident):
                raise LoweringError("++/-- requires a simple variable")
            old = self._as_value(self._lower_expr(target))
            one = (Constant.int_(1) if old.ty.kind == "int" else Constant.float_(1.0))
            new = self.builder.binop("add" if expr.op == "++" else "sub", old, one)
            self._store_lvalue(target, new)
            return old if expr.postfix else new
        operand = self._lower_expr(expr.operand)
        if isinstance(operand, list):
            if expr.op == "-":
                return [self.builder.unop("neg", col) for col in operand]
            raise LoweringError(f"unsupported matrix unary {expr.op}")
        if expr.op == "-":
            return self.builder.unop("neg", operand)
        if expr.op == "!":
            return self.builder.unop("not", operand)
        raise LoweringError(f"unsupported unary operator {expr.op}")

    def _lower_ternary(self, expr: ast.Ternary) -> Value:
        """Ternaries lower to the select form (LLVM's reader does the same
        for side-effect-free arms, which is all GLSL fragment work is)."""
        cond = self._as_value(self._lower_expr(expr.cond))
        then = self._as_value(self._lower_expr(expr.then))
        other = self._as_value(self._lower_expr(expr.otherwise))
        return self.builder.select(cond, then, other)

    def _lower_index(self, expr: ast.Index) -> LoweredVal:
        assert expr.base is not None and expr.index is not None
        base = expr.base
        index = self._as_value(self._lower_expr(expr.index))
        if isinstance(base, ast.Ident):
            binding = self.env.get(base.name)
            if isinstance(binding, _ArrayBinding):
                return self.builder.load_elem(binding.slot, index)
            if isinstance(binding, _MatrixBinding):
                if not isinstance(index, Constant):
                    raise LoweringError("dynamic matrix column read unsupported")
                return self.builder.load_var(binding.columns[int(index.value)])
            if isinstance(binding, _UniformBinding):
                uty = binding.ty
                if isinstance(uty, T.Array):
                    if isinstance(uty.element, T.Matrix):
                        raise LoweringError("arrays of matrices are unsupported")
                    return self.builder.load_global(
                        base.name, ir_type(uty.element), "uniform", element=index)
                if isinstance(uty, T.Matrix):
                    if not isinstance(index, Constant):
                        raise LoweringError("dynamic matrix column read unsupported")
                    return self.builder.load_global(
                        base.name, IRType("float", uty.size), "uniform",
                        column=int(index.value))
        # Fall back: vector component extraction (possibly of a computed vector).
        vec_val = self._as_value(self._lower_expr(base))
        if vec_val.ty.is_vector:
            if isinstance(index, Constant):
                return self.builder.extract(vec_val, int(index.value))
            raise LoweringError("dynamic vector component read unsupported")
        raise LoweringError("unsupported index expression")

    def _lower_member(self, expr: ast.Member) -> Value:
        assert expr.base is not None
        base = self._as_value(self._lower_expr(expr.base))
        indices = swizzle_indices(expr.name)
        if len(indices) == 1:
            return self.builder.extract(base, indices[0])
        return self.builder.shuffle(base, indices)

    # -- calls ----------------------------------------------------------------

    def _lower_call(self, expr: ast.Call) -> LoweredVal:
        if expr.is_constructor:
            return self._lower_constructor(expr)
        if expr.callee in TEXTURE_BUILTINS:
            return self._lower_texture(expr)
        user = self.shader.function(expr.callee)
        if user is not None:
            return self._inline_call(user, expr)
        return self._lower_builtin(expr)

    def _lower_constructor(self, expr: ast.Call) -> LoweredVal:
        target = T.type_from_name(expr.callee)
        args = [self._lower_expr(a) for a in expr.args]

        if isinstance(target, T.Scalar):
            value = self._as_value(args[0])
            if value.ty.is_vector:
                value = self.builder.extract(value, 0)
            return self.builder.convert(value, _kind(target.kind))

        if isinstance(target, T.Vector):
            width = target.size
            kind = _kind(target.kind)
            flat: List[Value] = []
            for arg in args:
                value = self._as_value(arg)
                if value.ty.is_scalar:
                    flat.append(self.builder.convert(value, kind))
                else:
                    for lane in range(value.ty.width):
                        if len(flat) < width:
                            lane_val = self.builder.extract(value, lane)
                            flat.append(self.builder.convert(lane_val, kind))
            if len(flat) == 1:
                return self.builder.splat(flat[0], width)
            if len(flat) < width:
                raise LoweringError(f"constructor {target} missing components")
            return self.builder.construct(IRType(kind, width), flat[:width])

        if isinstance(target, T.Matrix):
            return self._lower_matrix_constructor(target, args)

        raise LoweringError(f"unsupported constructor {expr.callee}")

    def _lower_matrix_constructor(self, target: T.Matrix,
                                  args: List[LoweredVal]) -> MatrixVal:
        size = target.size
        col_ty = IRType("float", size)
        if len(args) == 1 and isinstance(args[0], list):
            source = args[0]
            if len(source) != size:
                raise LoweringError("matrix resize constructors are unsupported")
            return list(source)
        if len(args) == 1 and isinstance(args[0], Value) and args[0].ty.is_scalar:
            scalar = self.builder.convert(args[0], "float")
            zero = Constant.float_(0.0)
            columns: MatrixVal = []
            for j in range(size):
                lanes = [scalar if i == j else zero for i in range(size)]
                columns.append(self.builder.construct(col_ty, lanes))
            return columns
        # N column vectors, or N*N scalars.
        flat: List[Value] = []
        for arg in args:
            value = self._as_value(arg)
            if value.ty.is_scalar:
                flat.append(self.builder.convert(value, "float"))
            else:
                for lane in range(value.ty.width):
                    flat.append(self.builder.extract(value, lane))
        if len(flat) != size * size:
            raise LoweringError(
                f"mat{size} constructor needs {size * size} scalars, got {len(flat)}")
        return [
            self.builder.construct(col_ty, flat[j * size : (j + 1) * size])
            for j in range(size)
        ]

    def _lower_texture(self, expr: ast.Call) -> Value:
        sampler_expr = expr.args[0]
        if not isinstance(sampler_expr, ast.Ident):
            raise LoweringError("texture() sampler must be a uniform name")
        binding = self.env.get(sampler_expr.name)
        if not isinstance(binding, _SamplerBinding):
            raise LoweringError(f"{sampler_expr.name} is not a sampler")
        coord = self._as_value(self._lower_expr(expr.args[1]))
        lod: Optional[Value] = None
        if expr.callee in ("textureLod", "texture2DLod") and len(expr.args) > 2:
            lod = self._as_value(self._lower_expr(expr.args[2]))
        result_ty = (IRType("float", 1) if binding.kind == "sampler2DShadow"
                     else IRType("float", 4))
        return self.builder.sample(binding.name, binding.kind, result_ty, coord, lod)

    def _lower_builtin(self, expr: ast.Call) -> Value:
        name = expr.callee
        args = [self._as_value(self._lower_expr(a)) for a in expr.args]
        assert expr.ty is not None
        result_ty = ir_type(expr.ty)
        if name == "transpose":
            raise LoweringError("transpose of matrix values is unsupported here")
        # Splat scalar args of genType builtins to the result width (the
        # LLVM-operand-uniformity artifact again).
        if name in _GEN_BUILTINS_SPLAT and result_ty.is_vector:
            args = [
                self.builder.splat(a, result_ty.width) if a.ty.is_scalar else a
                for a in args
            ]
        if name == "saturate":
            zero = Constant.splat(result_ty, 0.0)
            one = Constant.splat(result_ty, 1.0)
            return self.builder.call("clamp", result_ty, [args[0], zero, one])
        return self.builder.call(name, result_ty, args)

    # -- inlining --------------------------------------------------------------

    def _inline_call(self, fn: ast.FunctionDef, expr: ast.Call) -> LoweredVal:
        if self._inline_depth > 16:
            raise LoweringError(f"call chain too deep inlining {fn.name} (recursion?)")

        arg_values = [self._lower_expr(a) for a in expr.args]
        saved_env = dict(self.env)
        saved_loops = self.loop_stack
        self.loop_stack = []

        # Bind parameters to fresh slots under their plain names (the whole
        # caller environment is snapshotted and restored around the body).
        for param, arg in zip(fn.params, arg_values):
            binding = self._declare_local(param.name, param.ty)
            if param.qualifier in ("in", "inout"):
                self._store_binding(binding, param.ty, arg)

        # Return machinery.
        ret_slot: Optional[Slot] = None
        if not isinstance(fn.return_type, T.Void):
            if isinstance(fn.return_type, (T.Matrix, T.Array)):
                raise LoweringError("functions returning matrices/arrays unsupported")
            ret_slot = self.function.new_slot(
                Slot(f"{fn.name}.ret", ir_type(fn.return_type)))
        after = self.builder.new_block(f"{fn.name}.after")

        self._inline_depth += 1
        self._lower_inlined_body(fn.body, ret_slot, after)
        self._inline_depth -= 1
        if not self.builder.terminated:
            self.builder.br(after)
        self.builder.set_block(after)

        # Copy out/inout params back to caller lvalues.
        for param, arg_expr in zip(fn.params, expr.args):
            if param.qualifier in ("out", "inout"):
                binding = self.env[param.name]
                value = self._read_binding(binding, param.ty)
                # restore caller env before storing to the caller's lvalue
                callee_env = self.env
                self.env = saved_env
                self._store_lvalue(arg_expr, value)
                saved_env = self.env
                self.env = callee_env

        self.env = saved_env
        self.loop_stack = saved_loops
        if ret_slot is not None:
            return self.builder.load_var(ret_slot)
        return Constant.float_(0.0)  # void call result (never used)

    def _read_binding(self, binding: _Binding, ty: T.GLSLType) -> LoweredVal:
        if isinstance(binding, _SlotBinding):
            return self.builder.load_var(binding.slot)
        if isinstance(binding, _MatrixBinding):
            return [self.builder.load_var(col) for col in binding.columns]
        raise LoweringError("unsupported out-parameter type")

    def _lower_inlined_body(self, body: ast.BlockStmt, ret_slot: Optional[Slot],
                            after: BasicBlock) -> None:
        """Lower a callee body where ``return`` jumps to *after*."""

        def walk(block: ast.BlockStmt) -> None:
            for stmt in block.body:
                if self.builder.terminated:
                    return
                if isinstance(stmt, ast.ReturnStmt):
                    if stmt.value is not None:
                        if ret_slot is None:
                            raise LoweringError("void function returns a value")
                        value = self._as_value(self._lower_expr(stmt.value))
                        self.builder.store_var(ret_slot, value)
                    self.builder.br(after)
                    return
                if isinstance(stmt, ast.IfStmt):
                    self._lower_if_inlined(stmt, ret_slot, after, walk)
                elif isinstance(stmt, ast.BlockStmt):
                    walk(stmt)
                else:
                    self._lower_stmt(stmt)

        walk(body)

    def _lower_if_inlined(self, stmt: ast.IfStmt, ret_slot: Optional[Slot],
                          after: BasicBlock, walk) -> None:
        cond = self._as_value(self._lower_expr(stmt.cond))
        then_block = self.builder.new_block("if.then")
        merge_block = self.builder.new_block("if.end")
        else_block = merge_block
        if stmt.else_body is not None:
            else_block = self.builder.new_block("if.else")
        self.builder.cond_br(cond, then_block, else_block)

        self.builder.set_block(then_block)
        walk(stmt.then_body)
        if not self.builder.terminated:
            self.builder.br(merge_block)

        if stmt.else_body is not None:
            self.builder.set_block(else_block)
            walk(stmt.else_body)
            if not self.builder.terminated:
                self.builder.br(merge_block)

        self.builder.set_block(merge_block)

    # -- constant evaluation -----------------------------------------------------

    def _const_eval(self, expr: Optional[ast.Expr]) -> Constant:
        if expr is None:
            raise LoweringError("missing constant initializer")
        if isinstance(expr, ast.FloatLit):
            return Constant.float_(expr.value)
        if isinstance(expr, ast.IntLit):
            return Constant.int_(expr.value)
        if isinstance(expr, ast.BoolLit):
            return Constant.bool_(expr.value)
        if isinstance(expr, ast.Unary) and expr.op == "-":
            inner = self._const_eval(expr.operand)
            if inner.ty.is_vector:
                return Constant(inner.ty, tuple(-c for c in inner.components()))
            return Constant(inner.ty, -inner.value)
        if isinstance(expr, ast.Ident):
            binding = self.env.get(expr.name)
            if isinstance(binding, _ConstBinding):
                return binding.value
            raise LoweringError(f"{expr.name} is not a compile-time constant")
        if isinstance(expr, ast.Binary):
            lhs = self._const_eval(expr.left)
            rhs = self._const_eval(expr.right)
            return _const_binop(expr.op, lhs, rhs)
        if isinstance(expr, ast.Call) and expr.is_constructor:
            target = T.type_from_name(expr.callee)
            parts: List[float] = []
            for arg in expr.args:
                parts.extend(self._const_eval(arg).components())
            if isinstance(target, T.Scalar):
                value = parts[0]
                if target.kind == T.ScalarKind.FLOAT:
                    return Constant.float_(float(value))
                if target.kind == T.ScalarKind.BOOL:
                    return Constant.bool_(bool(value))
                return Constant.int_(int(value))
            if isinstance(target, T.Vector):
                ty = ir_type(target)
                if len(parts) == 1:
                    return Constant.splat(ty, _cast(parts[0], ty.kind))
                if len(parts) < target.size:
                    raise LoweringError("constant constructor missing components")
                return Constant(ty, tuple(_cast(p, ty.kind) for p in parts[: target.size]))
        raise LoweringError(
            f"expression {type(expr).__name__} is not a compile-time constant")


def _cast(value, kind: str):
    if kind == "float":
        return float(value)
    if kind == "int":
        return int(value)
    return bool(value)


def _const_binop(op: str, lhs: Constant, rhs: Constant) -> Constant:
    import operator

    ops = {"+": operator.add, "-": operator.sub, "*": operator.mul,
           "/": lambda a, b: a / b if b else 0.0}
    if op not in ops:
        raise LoweringError(f"operator {op} not supported in constants")
    fn = ops[op]
    if lhs.ty.is_vector or rhs.ty.is_vector:
        width = max(lhs.ty.width, rhs.ty.width)
        kind = "float" if "float" in (lhs.ty.kind, rhs.ty.kind) else lhs.ty.kind
        a = lhs.components() if lhs.ty.is_vector else lhs.components() * width
        b = rhs.components() if rhs.ty.is_vector else rhs.components() * width
        return Constant(IRType(kind, width),
                        tuple(_cast(fn(x, y), kind) for x, y in zip(a, b)))
    kind = "float" if "float" in (lhs.ty.kind, rhs.ty.kind) else lhs.ty.kind
    return Constant(IRType(kind, 1), _cast(fn(lhs.value, rhs.value), kind))
