"""IR verifier: structural and SSA invariants, run after lowering and after
every pass in tests.

Checks:
- every block ends in exactly one terminator, and only one;
- phi nodes sit at the top of their block and match the predecessor list;
- every instruction operand is a Constant/Undef or an instruction whose
  definition dominates the use (SSA dominance property);
- binary operands agree in type; select/cmp shapes are sane;
- all blocks are reachable from entry.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.errors import IRError
from repro.ir.cfg import compute_dominators, dominates
from repro.ir.instructions import (
    BinOp, Cmp, Instr, Phi, Select, Terminator,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Constant, Undef, Value


def verify_function(function: Function) -> None:
    """Raise :class:`~repro.errors.IRError` on the first violation."""
    if not function.blocks:
        raise IRError("function has no blocks")

    block_set = set(function.blocks)
    preds = function.predecessors()

    # Reachability.
    reachable: Set[BasicBlock] = set()
    stack = [function.entry]
    while stack:
        block = stack.pop()
        if block in reachable:
            continue
        reachable.add(block)
        stack.extend(block.successors())
    for block in function.blocks:
        if block not in reachable:
            raise IRError(f"block {block.name} is unreachable")

    # Block structure.
    defined_in: Dict[Instr, BasicBlock] = {}
    for block in function.blocks:
        if not block.instrs or not isinstance(block.instrs[-1], Terminator):
            raise IRError(f"block {block.name} lacks a terminator")
        seen_non_phi = False
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, Terminator) and index != len(block.instrs) - 1:
                raise IRError(f"terminator mid-block in {block.name}")
            if isinstance(instr, Phi):
                if seen_non_phi:
                    raise IRError(f"phi after non-phi in {block.name}")
            else:
                seen_non_phi = True
            if instr.block is not block:
                raise IRError(f"instruction {instr.name} has stale block link")
            defined_in[instr] = block
        for succ in block.successors():
            if succ not in block_set:
                raise IRError(f"{block.name} branches to foreign block {succ.name}")

    # Phi incoming lists match predecessors.
    for block in function.blocks:
        pred_set = set(preds[block])
        for phi in block.phis():
            incoming_blocks = [b for b, _ in phi.incoming]
            if set(incoming_blocks) != pred_set or len(incoming_blocks) != len(pred_set):
                raise IRError(
                    f"phi {phi.name} in {block.name} has incoming "
                    f"{[b.name for b in incoming_blocks]} but preds "
                    f"{[b.name for b in pred_set]}")

    # SSA dominance.
    idom = compute_dominators(function)
    order: Dict[Instr, int] = {}
    for block in function.blocks:
        for index, instr in enumerate(block.instrs):
            order[instr] = index

    def check_use(user: Instr, operand: Value, use_block: BasicBlock) -> None:
        if isinstance(operand, (Constant, Undef)):
            return
        if not isinstance(operand, Instr):
            raise IRError(f"{user.name} uses non-IR value {operand!r}")
        def_block = defined_in.get(operand)
        if def_block is None:
            raise IRError(
                f"{user.name} uses {operand.name}, which is not in the function")
        if def_block is use_block:
            if order[operand] >= order[user]:
                raise IRError(f"{user.name} uses {operand.name} before definition")
        elif not dominates(idom, def_block, use_block):
            raise IRError(
                f"{user.name} in {use_block.name} not dominated by "
                f"def of {operand.name} in {def_block.name}")

    for block in function.blocks:
        for instr in block.instrs:
            if isinstance(instr, Phi):
                for pred, value in instr.incoming:
                    if isinstance(value, (Constant, Undef)):
                        continue
                    if not isinstance(value, Instr):
                        raise IRError(f"phi {instr.name} has bad incoming {value!r}")
                    def_block = defined_in.get(value)
                    if def_block is None:
                        raise IRError(
                            f"phi {instr.name} incoming {value.name} not in function")
                    if not dominates(idom, def_block, pred):
                        raise IRError(
                            f"phi {instr.name} incoming {value.name} does not "
                            f"dominate predecessor {pred.name}")
            else:
                for operand in instr.operands:
                    check_use(instr, operand, block)

    # Simple type sanity.
    for instr in function.instructions():
        if isinstance(instr, BinOp):
            if instr.lhs.ty != instr.rhs.ty:
                raise IRError(
                    f"{instr.name}: operand types differ "
                    f"({instr.lhs.ty} vs {instr.rhs.ty})")
        if isinstance(instr, Cmp):
            if instr.lhs.ty != instr.rhs.ty:
                raise IRError(f"{instr.name}: compare operand types differ")
        if isinstance(instr, Select):
            if instr.if_true.ty != instr.if_false.ty:
                raise IRError(f"{instr.name}: select arm types differ")
            if instr.cond.ty.kind != "bool":
                raise IRError(f"{instr.name}: select condition is not bool")


def verify_module(module) -> None:
    """Verify the module's function (see :func:`verify_function`)."""
    verify_function(module.function)
