"""SSA intermediate representation modelled on the LLVM 3.4 core LunarGlass used.

Pipeline: :func:`repro.ir.lowering.lower_shader` turns a parsed GLSL AST into
a :class:`repro.ir.module.Module` (one inlined ``main`` function), after which
:func:`repro.ir.mem2reg.promote_to_ssa` rewrites scalar/vector local slots
into SSA form with phi nodes.  Passes operate on the module;
:func:`repro.ir.glsl_backend.emit_glsl` re-emits GLSL source (reproducing
LunarGlass's source-to-source artifacts), and :mod:`repro.ir.interp` provides
a reference interpreter used to check that optimizations preserve semantics.
"""

from repro.ir.types import IRType, FLOAT, INT, BOOL, vec
from repro.ir.module import Module, Function, BasicBlock
from repro.ir.lowering import lower_shader
from repro.ir.mem2reg import promote_to_ssa
from repro.ir.verify import verify_function
from repro.ir.glsl_backend import emit_glsl
from repro.ir.interp import Interpreter
from repro.ir.interp_batch import BatchedInterpreter

__all__ = [
    "IRType", "FLOAT", "INT", "BOOL", "vec",
    "Module", "Function", "BasicBlock",
    "lower_shader", "promote_to_ssa", "verify_function", "emit_glsl",
    "Interpreter", "BatchedInterpreter",
]
