"""Promote scalar/vector slots to SSA registers (classic mem2reg).

Phi placement uses iterated dominance frontiers; renaming walks the dominator
tree.  Array slots are left in memory (LoadElem/StoreElem) — constant folding
resolves const-array accesses after unrolling instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.cfg import compute_dominators, dominance_frontiers
from repro.ir.instructions import LoadVar, Phi, StoreVar
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Constant, Slot, Undef, Value


def promote_to_ssa(function: Function) -> int:
    """Promote every non-array slot; returns the number promoted."""
    function.remove_unreachable_blocks()
    slots = [s for s in function.slots if not s.is_array]
    if not slots:
        return 0

    idom = compute_dominators(function)
    frontiers = dominance_frontiers(function, idom)
    preds = function.predecessors()

    # Dominator tree children.
    children: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        parent = idom[block]
        if parent is not None:
            children[parent].append(block)

    # Phi placement.
    phi_for: Dict[Phi, Slot] = {}
    for slot in slots:
        def_blocks = {
            instr.block
            for instr in function.instructions()
            if isinstance(instr, StoreVar) and instr.slot is slot and instr.block
        }
        worklist = list(def_blocks)
        placed = set()
        while worklist:
            block = worklist.pop()
            for frontier_block in frontiers[block]:
                if frontier_block in placed:
                    continue
                placed.add(frontier_block)
                phi = Phi(slot.ty)
                frontier_block.insert_at_front(phi)
                phi_for[phi] = slot
                if frontier_block not in def_blocks:
                    worklist.append(frontier_block)

    # Renaming.
    stacks: Dict[Slot, List[Value]] = {slot: [] for slot in slots}

    def current(slot: Slot) -> Value:
        if stacks[slot]:
            return stacks[slot][-1]
        # Reading before any write: undef (GLSL leaves it undefined; a zero
        # would hide bugs, Undef keeps them visible in the verifier).
        return Undef(slot.ty)

    def rename(block: BasicBlock) -> None:
        pushed: List[Slot] = []
        for instr in list(block.instrs):
            if isinstance(instr, Phi) and instr in phi_for:
                slot = phi_for[instr]
                stacks[slot].append(instr)
                pushed.append(slot)
            elif isinstance(instr, LoadVar) and instr.slot in stacks:
                function.replace_all_uses(instr, current(instr.slot))
                block.remove(instr)
            elif isinstance(instr, StoreVar) and instr.slot in stacks:
                stacks[instr.slot].append(instr.value)
                pushed.append(instr.slot)
                block.remove(instr)
        for succ in block.successors():
            for phi in succ.phis():
                if phi in phi_for:
                    phi.add_incoming(block, current(phi_for[phi]))
        for child in children[block]:
            rename(child)
        for slot in pushed:
            stacks[slot].pop()

    rename(function.entry)

    # Prune trivial phis (single unique incoming value, or self-references).
    _prune_trivial_phis(function)

    function.slots = [s for s in function.slots if s.is_array]
    return len(slots)


def _prune_trivial_phis(function: Function) -> None:
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for phi in block.phis():
                distinct = {v for _, v in phi.incoming if v is not phi}
                if len(distinct) == 1:
                    replacement = distinct.pop()
                    function.replace_all_uses(phi, replacement)
                    block.remove(phi)
                    changed = True
                elif not distinct:
                    block.remove(phi)
                    changed = True
