"""IR value hierarchy: constants, undef, and instruction results.

Instructions (defined in :mod:`repro.ir.instructions`) are themselves values.
Operand edges point directly at :class:`Value` objects; def-use information is
recomputed on demand (shaders are tiny, so this stays fast and keeps mutation
simple for passes).
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple, Union

from repro.errors import IRError
from repro.ir.types import IRType

Number = Union[float, int, bool]

_counter = itertools.count()


def fresh_name(prefix: str = "v") -> str:
    """A globally unique SSA value name with the given prefix."""
    return f"{prefix}{next(_counter)}"


class Value:
    """Anything usable as an operand."""

    ty: IRType

    def __init__(self, ty: IRType):
        self.ty = ty


class Constant(Value):
    """A scalar or vector compile-time constant.

    Scalars store a Python number; vectors store a tuple of numbers of length
    ``ty.width``.  Equality/hash are value-based so constants can key caches.
    """

    def __init__(self, ty: IRType, value):
        super().__init__(ty)
        if ty.is_vector:
            value = tuple(value)
            if len(value) != ty.width:
                raise IRError(f"constant arity mismatch: {value} vs {ty}")
        self.value = value

    # -- convenience constructors ------------------------------------
    @staticmethod
    def float_(x: float) -> "Constant":
        return Constant(IRType("float", 1), float(x))

    @staticmethod
    def int_(x: int) -> "Constant":
        return Constant(IRType("int", 1), int(x))

    @staticmethod
    def bool_(x: bool) -> "Constant":
        return Constant(IRType("bool", 1), bool(x))

    @staticmethod
    def splat(ty: IRType, x: Number) -> "Constant":
        if ty.is_scalar:
            return Constant(ty, x)
        return Constant(ty, tuple(x for _ in range(ty.width)))

    # -- helpers -------------------------------------------------------
    def components(self) -> Tuple[Number, ...]:
        if self.ty.is_vector:
            return tuple(self.value)
        return (self.value,)

    @property
    def is_zero(self) -> bool:
        return all(c == 0 for c in self.components())

    @property
    def is_one(self) -> bool:
        return all(c == 1 for c in self.components())

    def is_splat_of(self, x: Number) -> bool:
        return all(c == x for c in self.components())

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constant)
            and self.ty == other.ty
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.ty, self.value))

    def __repr__(self) -> str:
        return f"const {self.ty} {self.value}"


class Undef(Value):
    """An undefined value (the start of an insert-element chain)."""

    def __repr__(self) -> str:
        return f"undef {self.ty}"


class Slot:
    """A stack slot created by lowering (pre-SSA local variable).

    ``array_length`` is None for plain scalar/vector slots (promotable by
    mem2reg) and an int for array slots (accessed via LoadElem/StoreElem).
    ``const_init`` carries the initializer tuple for immutable const arrays so
    constant folding can resolve constant-index loads after unrolling.
    """

    def __init__(self, name: str, ty: IRType, array_length: Optional[int] = None):
        self.name = name
        self.ty = ty
        self.array_length = array_length
        self.const_init: Optional[Tuple[Constant, ...]] = None
        self.is_mutated = False

    @property
    def is_array(self) -> bool:
        return self.array_length is not None

    def __repr__(self) -> str:
        suffix = f"[{self.array_length}]" if self.is_array else ""
        return f"slot {self.name}:{self.ty}{suffix}"
