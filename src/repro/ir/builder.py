"""A thin convenience wrapper for appending instructions to a growing CFG."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import IRError
from repro.ir.instructions import (
    BinOp, Br, Call, Cmp, CondBr, Construct, Convert, Discard, ExtractElem,
    InsertElem, Instr, LoadElem, LoadGlobal, LoadVar, Phi, Ret, Sample, Select,
    Shuffle, StoreElem, StoreOutput, StoreVar, UnOp,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.types import IRType
from repro.ir.values import Constant, Slot, Value


class IRBuilder:
    """Appends instructions to a function under construction, block by block."""
    def __init__(self, function: Function):
        self.function = function
        self.block: Optional[BasicBlock] = None

    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    def new_block(self, name: Optional[str] = None) -> BasicBlock:
        return self.function.add_block(BasicBlock(name))

    @property
    def terminated(self) -> bool:
        return self.block is None or self.block.terminator is not None

    def _emit(self, instr: Instr) -> Instr:
        if self.block is None:
            raise IRError("builder has no current block")
        return self.block.append(instr)

    # -- arithmetic -----------------------------------------------------
    def binop(self, op: str, lhs: Value, rhs: Value) -> Value:
        return self._emit(BinOp(op, lhs, rhs))

    def cmp(self, op: str, lhs: Value, rhs: Value) -> Value:
        return self._emit(Cmp(op, lhs, rhs))

    def unop(self, op: str, operand: Value) -> Value:
        return self._emit(UnOp(op, operand))

    def convert(self, value: Value, to_kind: str) -> Value:
        if value.ty.kind == to_kind:
            return value
        return self._emit(Convert(value, to_kind))

    def select(self, cond: Value, if_true: Value, if_false: Value) -> Value:
        return self._emit(Select(cond, if_true, if_false))

    # -- vectors ----------------------------------------------------------
    def extract(self, vector: Value, index: int) -> Value:
        return self._emit(ExtractElem(vector, index))

    def insert(self, vector: Value, scalar: Value, index: int) -> Value:
        return self._emit(InsertElem(vector, scalar, index))

    def shuffle(self, source: Value, mask: Sequence[int]) -> Value:
        return self._emit(Shuffle(source, mask))

    def construct(self, ty: IRType, scalars: Sequence[Value]) -> Value:
        return self._emit(Construct(ty, scalars))

    def splat(self, scalar: Value, width: int) -> Value:
        """The 'unnecessary vectorization' artifact: scalar -> vector."""
        if width == 1:
            return scalar
        ty = IRType(scalar.ty.kind, width)
        if isinstance(scalar, Constant):
            return Constant.splat(ty, scalar.value)
        return self.construct(ty, [scalar] * width)

    # -- memory / globals -------------------------------------------------
    def load_var(self, slot: Slot) -> Value:
        return self._emit(LoadVar(slot))

    def store_var(self, slot: Slot, value: Value) -> None:
        slot.is_mutated = True
        self._emit(StoreVar(slot, value))

    def load_elem(self, slot: Slot, index: Value) -> Value:
        return self._emit(LoadElem(slot, index))

    def store_elem(self, slot: Slot, index: Value, value: Value) -> None:
        slot.is_mutated = True
        self._emit(StoreElem(slot, index, value))

    def load_global(self, var: str, ty: IRType, kind: str,
                    column: Optional[int] = None,
                    element: Optional[Value] = None) -> Value:
        return self._emit(LoadGlobal(var, ty, kind, column=column, element=element))

    def store_output(self, var: str, value: Value) -> None:
        self._emit(StoreOutput(var, value))

    def call(self, callee: str, ty: IRType, args: Sequence[Value]) -> Value:
        return self._emit(Call(callee, ty, args))

    def sample(self, sampler: str, sampler_kind: str, ty: IRType,
               coord: Value, lod: Optional[Value] = None) -> Value:
        return self._emit(Sample(sampler, sampler_kind, ty, coord, lod))

    def phi(self, ty: IRType) -> Phi:
        if self.block is None:
            raise IRError("builder has no current block")
        phi = Phi(ty)
        self.block.insert_at_front(phi)
        return phi

    # -- terminators --------------------------------------------------------
    def br(self, target: BasicBlock) -> None:
        self._emit(Br(target))

    def cond_br(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> None:
        self._emit(CondBr(cond, if_true, if_false))

    def ret(self) -> None:
        self._emit(Ret())

    def discard(self) -> None:
        self._emit(Discard())
