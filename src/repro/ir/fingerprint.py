"""Canonical structural fingerprints for IR functions.

The compilation trie (:mod:`repro.core.trie`) walks the fixed pass order as a
binary decision tree and needs to know when two differently-reached IR states
have *converged*: if they agree, their entire subtrees are identical and can
be shared, so each pass runs once per distinct reachable state instead of
once per flag combination.

Convergence must mean "every later pass and the GLSL backend behave
identically", which for this IR is two properties:

1. **structure** — blocks in list order, instructions in block order, operand
   edges, per-instruction payloads (opcodes, types, constants, slot
   references, branch targets, phi incoming lists);
2. **relative value-name order** — the reassociation passes canonically sort
   expression leaves by SSA creation order via ``leaf_order_key``, which
   compares the ``v<counter>`` names numerically.  Two structurally identical
   states whose surviving values were created in different orders can still
   reassociate differently later, so the fingerprint folds in each value's
   rank under that same ordering (ranks are position-relative, never the
   absolute counter values, which differ between clones by construction).

Everything identity-based that passes rely on (``id()``-keyed CSE/GVN maps)
is isomorphic between two states that agree on both properties, so equal
fingerprints imply byte-identical emitted GLSL down every remaining path.
Fingerprints are sha256 digests of a canonical serialization; collisions are
cryptographically negligible.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.ir.instructions import (
    BinOp, Br, Call, Cmp, CondBr, Construct, Convert, Discard, ExtractElem,
    InsertElem, Instr, LoadElem, LoadGlobal, LoadVar, Phi, Ret, Sample, Select,
    Shuffle, StoreElem, StoreOutput, StoreVar, UnOp,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Constant, Slot, Undef, Value


#: Memoized digests keyed ``(Function.uid, Function.epoch)``.  The clone
#: paths (``preserve_names=True`` in particular — every trie edge and every
#: vendor JIT compile starts with one) re-fingerprint the same frozen
#: function repeatedly: corpus-trie interning hashes a state once when it is
#: created and again every time another pipeline reaches it.  The key is
#: sound because ``uid`` is process-unique per Function (reassigned on
#: unpickle) and every structural mutation bumps ``epoch`` (see
#: ``Function.touch`` and :mod:`repro.passes.manager`), so a stale digest is
#: unreachable as long as mutators honor that contract.
_FP_CACHE: "OrderedDict[Tuple[int, int], str]" = OrderedDict()
_FP_CACHE_SIZE = 8192
_FP_LOCK = threading.Lock()
_FP_HITS = 0
_FP_MISSES = 0


def fingerprint_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the fingerprint LRU (tests, diagnostics)."""
    with _FP_LOCK:
        return {"hits": _FP_HITS, "misses": _FP_MISSES,
                "size": len(_FP_CACHE), "max_size": _FP_CACHE_SIZE}


def clear_fingerprint_cache() -> None:
    """Drop the fingerprint LRU and reset its counters."""
    global _FP_HITS, _FP_MISSES
    with _FP_LOCK:
        _FP_CACHE.clear()
        _FP_HITS = 0
        _FP_MISSES = 0


def fingerprint_module(module: Module) -> str:
    """Canonical digest of a module's function (interface/version are shared
    across all trie states of one shader, so the function is the identity;
    the *corpus*-global trie appends its own interface/version digest — see
    :mod:`repro.core.corpus_trie`)."""
    return fingerprint_function(module.function)


def fingerprint_function(function: Function) -> str:
    """A sha256 digest that is equal iff two functions are structurally
    identical *and* order their values identically under ``leaf_order_key``.

    Memoized per ``(uid, epoch)``: repeated fingerprints of an unmutated
    function (the trie/JIT hot path) are a dict lookup, and any pipeline
    step invalidates by bumping the epoch rather than by purging.
    """
    global _FP_HITS, _FP_MISSES
    key = (function.uid, function.epoch)
    with _FP_LOCK:
        digest = _FP_CACHE.get(key)
        if digest is not None:
            _FP_HITS += 1
            _FP_CACHE.move_to_end(key)
            return digest
        _FP_MISSES += 1
    digest = _fingerprint_uncached(function)
    with _FP_LOCK:
        _FP_CACHE[key] = digest
        while len(_FP_CACHE) > _FP_CACHE_SIZE:
            _FP_CACHE.popitem(last=False)
    return digest


def _fingerprint_uncached(function: Function) -> str:
    block_num: Dict[BasicBlock, int] = {
        block: number for number, block in enumerate(function.blocks)}
    slot_num: Dict[int, int] = {
        id(slot): number for number, slot in enumerate(function.slots)}
    value_num: Dict[int, int] = {}
    names: List[str] = []
    for block in function.blocks:
        for instr in block.instrs:
            value_num[id(instr)] = len(names)
            names.append(instr.name)

    payload: List[object] = []
    for slot in function.slots:
        payload.append(("slot", slot.name, _ty(slot.ty), slot.array_length,
                        slot.is_mutated,
                        None if slot.const_init is None else
                        tuple(_const(c) for c in slot.const_init)))
    for block in function.blocks:
        payload.append(("block", block_num[block]))
        for instr in block.instrs:
            payload.append(_instr(instr, value_num, block_num, slot_num))

    # Relative creation-order ranks of the surviving values (property 2).
    order = sorted(range(len(names)), key=lambda i: (len(names[i]), names[i]))
    ranks = [0] * len(names)
    for rank, position in enumerate(order):
        ranks[position] = rank
    payload.append(("ranks", tuple(ranks)))

    return hashlib.sha256(repr(payload).encode()).hexdigest()


# ---------------------------------------------------------------------------
# Serialization helpers
# ---------------------------------------------------------------------------


def _ty(ty) -> str:
    return f"{ty.kind}{ty.width}"


def _const(const: Constant):
    return ("c", _ty(const.ty), repr(const.value))


def _ref(value: Value, vn: Dict[int, int]):
    """Operand reference: constants/undefs by content, results by number."""
    if isinstance(value, Constant):
        return _const(value)
    if isinstance(value, Undef):
        return ("u", _ty(value.ty))
    number = vn.get(id(value))
    if number is None:
        # A use of a value from an unreachable/removed block; key it by its
        # repr so such (malformed) states at least never merge incorrectly.
        return ("x", repr(value))
    return ("v", number)


def _instr(instr: Instr, vn: Dict[int, int], bn: Dict[BasicBlock, int],
           sn: Dict[int, int]):
    ops = tuple(_ref(op, vn) for op in instr.operands)
    base = (instr.opcode, _ty(instr.ty), ops)
    if isinstance(instr, (BinOp, Cmp, UnOp)):
        return base + (instr.op,)
    if isinstance(instr, (ExtractElem, InsertElem)):
        return base + (instr.index,)
    if isinstance(instr, Shuffle):
        return base + (tuple(instr.mask),)
    if isinstance(instr, Call):
        return base + (instr.callee,)
    if isinstance(instr, Sample):
        return base + (instr.sampler, instr.sampler_kind)
    if isinstance(instr, LoadGlobal):
        return base + (instr.var, instr.kind, instr.column)
    if isinstance(instr, StoreOutput):
        return base + (instr.var,)
    if isinstance(instr, (LoadVar, StoreVar, LoadElem, StoreElem)):
        return base + (sn.get(id(instr.slot), -1),)
    if isinstance(instr, Phi):
        return base + (tuple((bn.get(block, -1), _ref(value, vn))
                             for block, value in instr.incoming),)
    if isinstance(instr, Br):
        return base + (bn.get(instr.target, -1),)
    if isinstance(instr, CondBr):
        return base + (bn.get(instr.if_true, -1), bn.get(instr.if_false, -1))
    if isinstance(instr, (Ret, Discard, Construct, Convert, Select)):
        return base
    return base + (repr(instr),)
