"""Instruction set of the SSA IR.

Each instruction is a :class:`~repro.ir.values.Value` (its own result) with an
``operands`` list.  Terminators end basic blocks.  The set mirrors what the
LunarGlass/LLVM-3.4 pipeline needed for GLSL:

==============  ==========================================================
BinOp           add/sub/mul/div/mod + logical and/or on scalars & vectors
Cmp             eq/ne/lt/le/gt/ge producing bool
UnOp            neg / not
Select          cond ? a : b (what the Hoist pass produces)
ExtractElem     single component read v[i] (constant index)
InsertElem      single component write (builds vectors one lane at a time)
Shuffle         single-source swizzle with a constant mask
Construct       build a vector from ``width`` scalar operands
Call            pure math builtin intrinsic (sin, dot, mix, ...)
Sample          texture fetch (kept distinct for the GPU cost models)
LoadGlobal      read a uniform / stage input (pure)
StoreOutput     write a stage output (side effect)
LoadVar et al.  pre-mem2reg slot accesses (arrays keep them forever)
Phi             SSA merge
Br/CondBr/Ret/Discard   terminators
==============  ==========================================================
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING

from repro.errors import IRError
from repro.ir.types import IRType, BOOL
from repro.ir.values import Slot, Value, fresh_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import BasicBlock

#: Binary opcodes. "and"/"or" operate on bools.
BINOPS = frozenset({"add", "sub", "mul", "div", "mod", "and", "or", "xor"})
CMPOPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})
COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor", "eq", "ne"})


class Instr(Value):
    """Base instruction."""

    opcode = "instr"
    has_side_effects = False
    is_terminator = False

    def __init__(self, ty: IRType, operands: Sequence[Value]):
        super().__init__(ty)
        self.operands: List[Value] = list(operands)
        self.name = fresh_name()
        self.block: Optional["BasicBlock"] = None

    def replace_operand(self, old: Value, new: Value) -> None:
        self.operands = [new if op is old else op for op in self.operands]

    def short(self) -> str:
        ops = ", ".join(getattr(o, "name", repr(o)) for o in self.operands)
        return f"{self.name} = {self.opcode} {ops}"

    def __repr__(self) -> str:
        return self.short()


class BinOp(Instr):
    """Elementwise binary arithmetic (``add`` / ``sub`` / ``mul`` / ``div`` / ...)."""
    def __init__(self, op: str, lhs: Value, rhs: Value, ty: Optional[IRType] = None):
        if op not in BINOPS:
            raise IRError(f"invalid binary opcode {op!r}")
        super().__init__(ty or lhs.ty, [lhs, rhs])
        self.op = op

    opcode = "bin"

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    @property
    def commutative(self) -> bool:
        return self.op in COMMUTATIVE

    def short(self) -> str:
        return (f"{self.name} = {self.op} "
                f"{getattr(self.lhs, 'name', self.lhs)}, "
                f"{getattr(self.rhs, 'name', self.rhs)}")


class Cmp(Instr):
    """Elementwise comparison producing bools."""
    def __init__(self, op: str, lhs: Value, rhs: Value):
        if op not in CMPOPS:
            raise IRError(f"invalid compare opcode {op!r}")
        super().__init__(BOOL, [lhs, rhs])
        self.op = op

    opcode = "cmp"

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class UnOp(Instr):
    """Elementwise unary op."""
    def __init__(self, op: str, operand: Value):
        if op not in ("neg", "not"):
            raise IRError(f"invalid unary opcode {op!r}")
        super().__init__(operand.ty, [operand])
        self.op = op

    opcode = "un"

    @property
    def operand(self) -> Value:
        return self.operands[0]


class Convert(Instr):
    """Element-wise kind conversion (int<->float, int->bool, ...)."""

    def __init__(self, value: Value, to_kind: str):
        super().__init__(IRType(to_kind, value.ty.width), [value])

    opcode = "convert"

    @property
    def value(self) -> Value:
        return self.operands[0]


class Select(Instr):
    """Elementwise ``cond ? a : b``."""
    def __init__(self, cond: Value, if_true: Value, if_false: Value):
        super().__init__(if_true.ty, [cond, if_true, if_false])

    opcode = "select"

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def if_true(self) -> Value:
        return self.operands[1]

    @property
    def if_false(self) -> Value:
        return self.operands[2]


class ExtractElem(Instr):
    """Read one lane of a vector."""
    def __init__(self, vector: Value, index: int):
        super().__init__(vector.ty.scalar, [vector])
        self.index = index

    opcode = "extract"

    @property
    def vector(self) -> Value:
        return self.operands[0]


class InsertElem(Instr):
    """Replace one lane of a vector."""
    def __init__(self, vector: Value, scalar: Value, index: int):
        super().__init__(vector.ty, [vector, scalar])
        self.index = index

    opcode = "insert"

    @property
    def vector(self) -> Value:
        return self.operands[0]

    @property
    def scalar(self) -> Value:
        return self.operands[1]


class Shuffle(Instr):
    """Single-source swizzle: result[i] = source[mask[i]]."""

    def __init__(self, source: Value, mask: Sequence[int]):
        mask = list(mask)
        super().__init__(source.ty.with_width(len(mask)) if len(mask) > 1
                         else source.ty.scalar, [source])
        self.mask = mask

    opcode = "shuffle"

    @property
    def source(self) -> Value:
        return self.operands[0]


class Construct(Instr):
    """Build a vector out of ``width`` scalar operands (what Coalesce emits)."""

    def __init__(self, ty: IRType, scalars: Sequence[Value]):
        if len(scalars) != ty.width:
            raise IRError(f"construct needs {ty.width} scalars, got {len(scalars)}")
        super().__init__(ty, scalars)

    opcode = "construct"


class Call(Instr):
    """Pure math intrinsic call (never a user function — those are inlined)."""

    def __init__(self, callee: str, ty: IRType, args: Sequence[Value]):
        super().__init__(ty, args)
        self.callee = callee

    opcode = "call"

    def short(self) -> str:
        ops = ", ".join(getattr(o, "name", repr(o)) for o in self.operands)
        return f"{self.name} = call {self.callee}({ops})"


class Sample(Instr):
    """Texture sample.  ``sampler`` is the uniform's name (an opaque handle)."""

    def __init__(self, sampler: str, sampler_kind: str, ty: IRType,
                 coord: Value, lod: Optional[Value] = None):
        operands = [coord] + ([lod] if lod is not None else [])
        super().__init__(ty, operands)
        self.sampler = sampler
        self.sampler_kind = sampler_kind

    opcode = "sample"

    @property
    def coord(self) -> Value:
        return self.operands[0]

    @property
    def lod(self) -> Optional[Value]:
        return self.operands[1] if len(self.operands) > 1 else None

    def short(self) -> str:
        return f"{self.name} = sample {self.sampler}, {getattr(self.coord, 'name', self.coord)}"


class LoadGlobal(Instr):
    """Read a uniform or stage input.

    ``column`` selects a matrix column (static); array uniforms carry their
    index as the sole operand (``element``), which may be any int Value.
    """

    def __init__(self, var: str, ty: IRType, kind: str, column: Optional[int] = None,
                 element: Optional[Value] = None):
        super().__init__(ty, [element] if element is not None else [])
        self.var = var
        self.kind = kind  # "uniform" | "input"
        self.column = column

    opcode = "loadglobal"

    @property
    def element(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def short(self) -> str:
        return f"{self.name} = loadglobal {self.var}"


class StoreOutput(Instr):
    """Write a shader output (e.g. the fragment colour)."""
    has_side_effects = True

    def __init__(self, var: str, value: Value):
        super().__init__(value.ty, [value])
        self.var = var

    opcode = "storeoutput"

    @property
    def value(self) -> Value:
        return self.operands[0]

    def short(self) -> str:
        return f"storeoutput {self.var}, {getattr(self.value, 'name', self.value)}"


class LoadVar(Instr):
    """Pre-mem2reg read of a scalar/vector slot."""

    def __init__(self, slot: Slot):
        super().__init__(slot.ty, [])
        self.slot = slot

    opcode = "loadvar"

    def short(self) -> str:
        return f"{self.name} = loadvar {self.slot.name}"


class StoreVar(Instr):
    """Store to a named slot (pre-mem2reg local)."""
    has_side_effects = True

    def __init__(self, slot: Slot, value: Value):
        super().__init__(value.ty, [value])
        self.slot = slot

    opcode = "storevar"

    @property
    def value(self) -> Value:
        return self.operands[0]

    def short(self) -> str:
        return f"storevar {self.slot.name}, {getattr(self.value, 'name', self.value)}"


class LoadElem(Instr):
    """Read ``slot[index]`` from an array slot."""

    def __init__(self, slot: Slot, index: Value):
        super().__init__(slot.ty, [index])
        self.slot = slot

    opcode = "loadelem"

    @property
    def index(self) -> Value:
        return self.operands[0]


class StoreElem(Instr):
    """Store one element of an array slot."""
    has_side_effects = True

    def __init__(self, slot: Slot, index: Value, value: Value):
        super().__init__(value.ty, [index, value])
        self.slot = slot

    opcode = "storeelem"

    @property
    def index(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]


class Phi(Instr):
    """SSA phi node: one incoming value per predecessor."""
    def __init__(self, ty: IRType):
        super().__init__(ty, [])
        self.incoming: List[tuple] = []  # (BasicBlock, Value)

    opcode = "phi"

    def add_incoming(self, block: "BasicBlock", value: Value) -> None:
        self.incoming.append((block, value))
        self.operands.append(value)

    def set_incoming_value(self, block: "BasicBlock", value: Value) -> None:
        for i, (b, _) in enumerate(self.incoming):
            if b is block:
                self.incoming[i] = (b, value)
        self._sync_operands()

    def replace_operand(self, old: Value, new: Value) -> None:
        self.incoming = [(b, new if v is old else v) for b, v in self.incoming]
        self._sync_operands()

    def remove_incoming(self, block: "BasicBlock") -> None:
        self.incoming = [(b, v) for b, v in self.incoming if b is not block]
        self._sync_operands()

    def _sync_operands(self) -> None:
        self.operands = [v for _, v in self.incoming]

    def short(self) -> str:
        parts = ", ".join(
            f"[{b.name}: {getattr(v, 'name', v)}]" for b, v in self.incoming)
        return f"{self.name} = phi {parts}"


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


class Terminator(Instr):
    """Base class for block terminators."""
    is_terminator = True
    has_side_effects = True

    def successors(self) -> List["BasicBlock"]:
        return []


class Br(Terminator):
    """Unconditional branch."""
    def __init__(self, target: "BasicBlock"):
        super().__init__(BOOL, [])
        self.target = target

    opcode = "br"

    def successors(self) -> List["BasicBlock"]:
        return [self.target]

    def short(self) -> str:
        return f"br {self.target.name}"


class CondBr(Terminator):
    """Two-way conditional branch."""
    def __init__(self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock"):
        super().__init__(BOOL, [cond])
        self.if_true = if_true
        self.if_false = if_false

    opcode = "condbr"

    @property
    def cond(self) -> Value:
        return self.operands[0]

    def successors(self) -> List["BasicBlock"]:
        return [self.if_true, self.if_false]

    def short(self) -> str:
        return (f"condbr {getattr(self.cond, 'name', self.cond)}, "
                f"{self.if_true.name}, {self.if_false.name}")


class Ret(Terminator):
    """Function return."""
    def __init__(self):
        super().__init__(BOOL, [])

    opcode = "ret"

    def short(self) -> str:
        return "ret"


class Discard(Terminator):
    """GLSL ``discard`` — kills the fragment (SPIR-V OpKill semantics)."""

    def __init__(self):
        super().__init__(BOOL, [])

    opcode = "discard"

    def short(self) -> str:
        return "discard"


def is_pure(instr: Instr) -> bool:
    """True when the instruction can be removed if its result is unused.

    ``LoadVar``/``LoadElem`` are pure (no side effect); ``Sample`` and
    ``LoadGlobal`` are pure reads in this model too.
    """
    return not instr.has_side_effects
