"""Procedural texture model shared by the interpreter and the harness.

The paper's harness binds "a colourfully-patterned opaque power-of-two image"
to every sampler.  We model that with a smooth deterministic RGBA function of
the (wrapped) texture coordinates, so optimized and unoptimized shaders see
identical texel values and unsafe-FP reassociation causes only tiny drift.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

TAU = 2.0 * math.pi


class ProceduralTexture:
    """Deterministic RGBA texture: repeat-wrapped, resolution-independent.

    ``seed`` varies the pattern per texture unit so distinct samplers return
    distinct data (some shaders combine several textures).
    """

    def __init__(self, seed: int = 0):
        self.seed = seed

    def sample(self, coords: Sequence[float], kind: str = "sampler2D",
               lod: float = 0.0) -> Tuple[float, float, float, float]:
        u = _wrap(coords[0] if len(coords) > 0 else 0.0)
        v = _wrap(coords[1] if len(coords) > 1 else 0.0)
        w = _wrap(coords[2] if len(coords) > 2 else 0.0)
        s = float(self.seed)
        blur = 1.0 / (1.0 + abs(lod))  # higher lods flatten toward grey
        r = 0.5 + 0.5 * blur * math.sin(TAU * (3.0 * u + 0.13 * s))
        g = 0.5 + 0.5 * blur * math.cos(TAU * (5.0 * v + 0.29 * s))
        b = 0.5 + 0.5 * blur * math.sin(TAU * (u + v + w + 0.53 * s))
        return (r, g, b, 1.0)

    def sample_shadow(self, coords: Sequence[float]) -> float:
        """Depth-compare result for sampler2DShadow: smooth 0..1."""
        base = self.sample(coords)
        reference = _wrap(coords[2] if len(coords) > 2 else 0.5)
        return 1.0 if base[0] >= reference else 0.0


def _wrap(x: float) -> float:
    return x - math.floor(x)
