"""Basic blocks, functions, and modules."""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional

from repro.errors import IRError
from repro.glsl.introspect import ShaderInterface
from repro.ir.instructions import Instr, Phi, Terminator
from repro.ir.values import Slot, Value

_block_counter = itertools.count()

#: Process-unique Function identities for the fingerprint cache
#: (:mod:`repro.ir.fingerprint`): ``(uid, epoch)`` keys a memoized digest,
#: and any structural mutation must bump ``epoch`` so the stale digest can
#: never be served again.
_function_uids = itertools.count(1)


class BasicBlock:
    """A straight-line instruction sequence ending in one terminator."""
    def __init__(self, name: Optional[str] = None):
        # Names are globally unique: dynamic profiles key on them.
        suffix = next(_block_counter)
        self.name = f"{name}.{suffix}" if name else f"bb{suffix}"
        self.instrs: List[Instr] = []

    # -- structure ------------------------------------------------------
    @property
    def terminator(self) -> Optional[Terminator]:
        if self.instrs and isinstance(self.instrs[-1], Terminator):
            return self.instrs[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return term.successors() if term else []

    def phis(self) -> List[Phi]:
        return [i for i in self.instrs if isinstance(i, Phi)]

    def non_phi_instrs(self) -> List[Instr]:
        return [i for i in self.instrs if not isinstance(i, Phi)]

    # -- mutation ---------------------------------------------------------
    def append(self, instr: Instr) -> Instr:
        if self.terminator is not None:
            raise IRError(f"appending to terminated block {self.name}")
        instr.block = self
        self.instrs.append(instr)
        return instr

    def insert_before_terminator(self, instr: Instr) -> Instr:
        instr.block = self
        if self.terminator is not None:
            self.instrs.insert(len(self.instrs) - 1, instr)
        else:
            self.instrs.append(instr)
        return instr

    def insert_at_front(self, instr: Instr) -> Instr:
        instr.block = self
        index = 0
        while index < len(self.instrs) and isinstance(self.instrs[index], Phi):
            index += 1
        self.instrs.insert(index, instr)
        return instr

    def remove(self, instr: Instr) -> None:
        self.instrs.remove(instr)
        instr.block = None

    def __repr__(self) -> str:
        return f"BasicBlock({self.name}, {len(self.instrs)} instrs)"


class Function:
    """A single shader entry point (always the fully inlined ``main``)."""

    def __init__(self, name: str = "main"):
        self.name = name
        self.blocks: List[BasicBlock] = []
        self.slots: List[Slot] = []
        #: identity + mutation generation for the fingerprint cache.  The
        #: cache contract: every pipeline step (``run_cleanup`` /
        #: ``apply_flag_pass``) and every Function-level structural mutator
        #: calls :meth:`touch`; code doing direct block/instruction surgery
        #: outside those entry points must call it too, or a cached
        #: fingerprint could go stale (silent state-merge corruption).
        self.uid = next(_function_uids)
        self.epoch = 0

    def touch(self) -> None:
        """Mark the function structurally mutated (fingerprint cache key)."""
        self.epoch += 1

    def __setstate__(self, state: dict) -> None:
        # Unpickled copies must never alias the uid of a function from the
        # sending process (or of this one): reassign a fresh identity.
        self.__dict__.update(state)
        self.uid = next(_function_uids)
        self.epoch = 0

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError("function has no blocks")
        return self.blocks[0]

    def add_block(self, block: BasicBlock) -> BasicBlock:
        self.blocks.append(block)
        self.touch()
        return block

    def new_slot(self, slot: Slot) -> Slot:
        self.slots.append(slot)
        self.touch()
        return slot

    # -- analyses ---------------------------------------------------------
    def predecessors(self) -> Dict[BasicBlock, List[BasicBlock]]:
        preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def instructions(self) -> Iterable[Instr]:
        for block in self.blocks:
            yield from block.instrs

    def replace_all_uses(self, old: Value, new: Value) -> int:
        """Rewrite every operand edge old -> new; returns edges rewritten."""
        count = 0
        for instr in self.instructions():
            if old in instr.operands:
                instr.replace_operand(old, new)
                count += 1
        if count:
            self.touch()
        return count

    def remove_unreachable_blocks(self) -> int:
        """Drop blocks unreachable from entry; fix phi incoming lists."""
        reachable = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block in reachable:
                continue
            reachable.add(block)
            stack.extend(block.successors())
        dead = [b for b in self.blocks if b not in reachable]
        if not dead:
            return 0
        dead_set = set(dead)
        for block in self.blocks:
            if block in dead_set:
                continue
            for phi in block.phis():
                for pred, _ in list(phi.incoming):
                    if pred in dead_set:
                        phi.remove_incoming(pred)
        self.blocks = [b for b in self.blocks if b in reachable]
        self.touch()
        return len(dead)

    def dump(self) -> str:
        lines = [f"function {self.name}:"]
        for block in self.blocks:
            lines.append(f"  {block.name}:")
            for instr in block.instrs:
                lines.append(f"    {instr.short()}")
        return "\n".join(lines)


class Module:
    """A compiled shader: one function plus its GLSL interface."""

    def __init__(self, function: Function, interface: ShaderInterface,
                 version: Optional[str] = None):
        self.function = function
        self.interface = interface
        self.version = version

    def dump(self) -> str:
        return self.function.dump()
