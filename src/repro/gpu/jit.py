"""Simulated vendor driver JIT compilers.

OpenGL drivers receive GLSL source and compile it with their own (opaque)
optimizer.  Each vendor's JIT here re-parses the (possibly offline-optimized)
source through the shared frontend and applies a vendor-specific pipeline:
the always-on canonical cleanup, a driver unroller with vendor limits, and a
subset of the safe passes.  No JIT performs the unsafe FP passes — a
conformant driver cannot (paper Section III-B).

The redundancy (or absence) of each offline flag in a vendor's JIT is one of
the two mechanisms behind the paper's cross-platform variance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.glsl import parse_shader, preprocess
from repro.ir import lower_shader, promote_to_ssa
from repro.ir.module import Module
from repro.passes.canonicalize import canonicalize
from repro.passes.coalesce import coalesce
from repro.passes.cse import local_cse
from repro.passes.dce import trivial_dce
from repro.passes.div_to_mul import div_to_mul
from repro.passes.gvn import gvn
from repro.passes.hoist import hoist
from repro.passes.simplify_cfg import merge_straightline_blocks
from repro.passes.unroll import unroll

_SAFE_PASSES = {
    "gvn": gvn,
    "coalesce": coalesce,
    "div_to_mul": div_to_mul,
    "hoist": hoist,
}


@dataclass(frozen=True)
class VendorJIT:
    """One driver compiler: which redundant optimizations it already does."""

    name: str
    #: Safe passes the driver applies itself (subset of _SAFE_PASSES keys).
    passes: Tuple[str, ...] = ()
    #: Driver unroller limit (0 = driver does not unroll).
    unroll_max_trips: int = 0
    unroll_max_growth: int = 1024

    def compile(self, source: str) -> Module:
        """Parse and optimize GLSL the way this vendor's driver would."""
        pp = preprocess(source)
        shader = parse_shader(pp.text)
        module = lower_shader(shader, version=pp.version)
        promote_to_ssa(module.function)
        function = module.function

        def cleanup() -> None:
            canonicalize(function)
            merge_straightline_blocks(function)
            local_cse(function)
            trivial_dce(function)
            canonicalize(function)

        cleanup()
        if self.unroll_max_trips > 0:
            unroll(function, max_trips=self.unroll_max_trips,
                   max_growth=self.unroll_max_growth)
            cleanup()
        for name in self.passes:
            _SAFE_PASSES[name](function)
            cleanup()
        return module
