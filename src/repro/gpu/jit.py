"""Simulated vendor driver JIT compilers.

OpenGL drivers receive GLSL source and compile it with their own (opaque)
optimizer.  Each vendor's JIT here re-parses the (possibly offline-optimized)
source through the shared frontend and applies a vendor-specific pipeline:
the always-on canonical cleanup, a driver unroller with vendor limits, and a
subset of the safe passes.  No JIT performs the unsafe FP passes — a
conformant driver cannot (paper Section III-B).

The redundancy (or absence) of each offline flag in a vendor's JIT is one of
the two mechanisms behind the paper's cross-platform variance.

The front end (preprocess -> parse -> lower -> SSA) is identical for every
vendor, so it is memoized per source text: a study measuring one variant on
5 platforms parses it once and each vendor pipeline runs off a
name-preserving clone (exactly equivalent to lowering fresh — see
:mod:`repro.ir.clone`).

Under ``REPRO_COMPILE=corpus`` each pipeline is additionally routed through
the corpus-global state trie (:mod:`repro.core.corpus_trie`): every
cleanup/unroll/pass step becomes a memoized trie edge, so the five vendors'
overlapping pipelines — and the offline 256-variant walks, whose ``("pass",
name)`` steps are literally the same edges — execute each step once per
distinct IR state for the whole study.  The returned module is then an
*interned shared* module; all consumers here (profiling, cost estimation,
emission) only read, which the per-shader memo path already required.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Tuple

from repro.glsl import parse_shader, preprocess
from repro.ir import lower_shader, promote_to_ssa
from repro.ir.clone import clone_module
from repro.ir.module import Module
from repro.passes.coalesce import coalesce
from repro.passes.div_to_mul import div_to_mul
from repro.passes.gvn import gvn
from repro.passes.hoist import hoist
from repro.passes.manager import run_cleanup
from repro.passes.unroll import unroll

_SAFE_PASSES = {
    "gvn": gvn,
    "coalesce": coalesce,
    "div_to_mul": div_to_mul,
    "hoist": hoist,
}

#: Pristine lowered modules per source text (vendor-independent front-end
#: work).  Entries are never mutated — vendors clone before optimizing.
_FRONTEND_MEMO: "OrderedDict[str, Module]" = OrderedDict()
_FRONTEND_MEMO_SIZE = 256
_FRONTEND_LOCK = threading.Lock()


def shared_frontend(source: str) -> Module:
    """Parse + lower + SSA-promote *source* once per distinct text."""
    with _FRONTEND_LOCK:
        module = _FRONTEND_MEMO.get(source)
        if module is not None:
            _FRONTEND_MEMO.move_to_end(source)
            return module
    pp = preprocess(source)
    shader = parse_shader(pp.text)
    module = lower_shader(shader, version=pp.version)
    promote_to_ssa(module.function)
    with _FRONTEND_LOCK:
        _FRONTEND_MEMO[source] = module
        while len(_FRONTEND_MEMO) > _FRONTEND_MEMO_SIZE:
            _FRONTEND_MEMO.popitem(last=False)
    return module


def clear_frontend_memo() -> None:
    """Drop the shared front-end memo (tests and memory-sensitive callers)."""
    with _FRONTEND_LOCK:
        _FRONTEND_MEMO.clear()
    with _COMPILED_LOCK:
        _COMPILED_MEMO.clear()


#: Fully JIT-compiled modules per (vendor, source) — the batched
#: measurement path treats these as immutable (profiling and cost
#: estimation only read the IR), so one compile serves every measurement
#: seed of a (text, platform) unit.
_COMPILED_MEMO: "OrderedDict[Tuple[str, str], Module]" = OrderedDict()
_COMPILED_MEMO_SIZE = 256
_COMPILED_LOCK = threading.Lock()

#: Pipeline steps (cleanup / unroll / safe pass) actually executed by the
#: per-shader ``compile`` path.  The corpus-trie benchmark reads this as the
#: unshared-JIT baseline; corpus-mode steps are counted by the trie instead.
_JIT_STEPS = 0
_JIT_STEPS_LOCK = threading.Lock()


def jit_pipeline_steps() -> int:
    """Steps executed by non-corpus ``VendorJIT.compile`` calls so far."""
    with _JIT_STEPS_LOCK:
        return _JIT_STEPS


def reset_jit_pipeline_steps() -> None:
    """Zero the step counter (benchmark bracketing)."""
    global _JIT_STEPS
    with _JIT_STEPS_LOCK:
        _JIT_STEPS = 0


def _count_jit_steps(steps: int) -> None:
    global _JIT_STEPS
    with _JIT_STEPS_LOCK:
        _JIT_STEPS += steps


@dataclass(frozen=True)
class VendorJIT:
    """One driver compiler: which redundant optimizations it already does."""

    name: str
    #: Safe passes the driver applies itself (subset of _SAFE_PASSES keys).
    passes: Tuple[str, ...] = ()
    #: Driver unroller limit (0 = driver does not unroll).
    unroll_max_trips: int = 0
    unroll_max_growth: int = 1024

    def compile(self, source: str) -> Module:
        """Parse and optimize GLSL the way this vendor's driver would.

        Under ``REPRO_COMPILE=corpus`` the pipeline runs as corpus-trie
        edges and the result is an interned **shared** module — callers
        must treat it as immutable (every caller today only reads:
        profiling, cost estimation, static cycle analysis).  In the other
        modes the result is a private clone as before.
        """
        from repro.core.pipeline import compile_mode

        if compile_mode() == "corpus":
            return self._compile_shared(source)
        module = clone_module(shared_frontend(source), preserve_names=True)
        function = module.function

        steps = 1
        run_cleanup(function)
        if self.unroll_max_trips > 0:
            unroll(function, max_trips=self.unroll_max_trips,
                   max_growth=self.unroll_max_growth)
            run_cleanup(function)
            steps += 1
        for name in self.passes:
            _SAFE_PASSES[name](function)
            run_cleanup(function)
            steps += 1
        _count_jit_steps(steps)
        return module

    def _compile_shared(self, source: str) -> Module:
        """The ``REPRO_COMPILE=corpus`` pipeline: every step a trie edge.

        Step keys line up with the offline walk on purpose: ``("pass",
        "gvn")`` here and in :meth:`CorpusTrie.compile_variants` are the
        same edge (``apply_flag_pass`` is exactly "safe pass + cleanup"),
        so a vendor pipeline can serve states the offline walk produced
        and vice versa.
        """
        from repro.core.corpus_trie import shared_corpus_trie

        trie = shared_corpus_trie()
        state = trie.intern(shared_frontend(source))
        state = trie.apply(state, ("cleanup",))
        if self.unroll_max_trips > 0:
            state = trie.apply(state, ("unroll", self.unroll_max_trips,
                                       self.unroll_max_growth))
        for name in self.passes:
            state = trie.apply(state, ("pass", name))
        return state.module

    def compile_cached(self, source: str) -> Module:
        """Memoized :meth:`compile` for read-only consumers.

        The returned module is shared across callers and MUST NOT be
        mutated — the batched measurement path only profiles and costs it.
        Callers that optimize the module further (none today) must use
        :meth:`compile`, which always returns a fresh clone.
        """
        key = (self.name, source)
        with _COMPILED_LOCK:
            module = _COMPILED_MEMO.get(key)
            if module is not None:
                _COMPILED_MEMO.move_to_end(key)
                return module
        module = self.compile(source)
        with _COMPILED_LOCK:
            _COMPILED_MEMO[key] = module
            while len(_COMPILED_MEMO) > _COMPILED_MEMO_SIZE:
                _COMPILED_MEMO.popitem(last=False)
        return module
