"""Simulated GPU substrate: vendor driver JIT compilers + analytical
performance models for the paper's five platforms.

The paper measured on real hardware (GTX 1080, RX 480, HD 530, Mali-T880,
Adreno 530).  We substitute calibrated models that reproduce the two
mechanisms its cross-platform variance comes from:

1. **JIT redundancy** — each vendor's driver compiler already performs a
   subset of the offline optimizations, making those flags no-ops (or
   artifact-only) on that platform;
2. **ISA character** — scalar ISAs (NVIDIA/AMD/Intel/Adreno) pay per-lane for
   vector arithmetic and reward scalar grouping, while the Mali-T880's vector
   ISA issues whole vec4 ops per cycle and *punishes* scalarization; register
   pressure feeds an occupancy model that exposes texture latency when
   flattening/unrolling bloats live ranges.
"""

from repro.gpu.platform import Platform, all_platforms, platform_by_name
from repro.gpu.cost import CostBreakdown, estimate_kernel
from repro.gpu.jit import VendorJIT

__all__ = [
    "Platform", "all_platforms", "platform_by_name",
    "CostBreakdown", "estimate_kernel", "VendorJIT",
]
