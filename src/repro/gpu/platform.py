"""Platform bundles: GPU spec + driver JIT + timer noise + draw geometry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.gpu.cost import GPUSpec
from repro.gpu.jit import VendorJIT
from repro.gpu.timing import TimerModel


@dataclass(frozen=True)
class Platform:
    """Everything needed to 'run' a shader on one of the paper's devices."""

    name: str          # "Intel", "AMD", "NVIDIA", "ARM", "Qualcomm"
    device: str        # marketing name, for reports
    spec: GPUSpec
    jit: VendorJIT
    timer: TimerModel
    is_mobile: bool = False

    @property
    def draws_per_frame(self) -> int:
        """1000 full-screen triangles per frame on desktop, 100 on mobile
        (paper Section IV-B)."""
        return 100 if self.is_mobile else 1000

    #: 500x500 clipped quad (paper Section IV-B).
    fragments_per_draw: int = 500 * 500


def all_platforms() -> List[Platform]:
    """The five platforms in the paper's reporting order."""
    from repro.gpu.vendors import AMD, ARM, INTEL, NVIDIA, QUALCOMM

    return [INTEL, AMD, NVIDIA, ARM, QUALCOMM]


def platform_by_name(name: str) -> Platform:
    """The platform named *name*, case-insensitively (KeyError if unknown)."""
    matches: Dict[str, Platform] = {p.name.lower(): p for p in all_platforms()}
    try:
        return matches[name.lower()]
    except KeyError:
        raise KeyError(f"unknown platform {name!r}; "
                       f"expected one of {sorted(matches)}")
