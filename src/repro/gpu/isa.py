"""Classify IR instructions into machine-op categories for the cost models."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.ir.instructions import (
    BinOp, Call, Cmp, CondBr, Construct, Convert, ExtractElem, InsertElem,
    Instr, LoadElem, LoadGlobal, LoadVar, Phi, Sample, Select, Shuffle,
    StoreElem, StoreOutput, StoreVar, Terminator,
)

#: Builtins served by the special-function unit (slow, scalar-at-a-time on
#: most GPUs).
TRANSCENDENTALS = frozenset(
    {"sin", "cos", "tan", "asin", "acos", "atan", "exp", "log", "exp2",
     "log2", "pow", "sqrt", "inversesqrt", "radians", "degrees"}
)

#: Builtins that expand to short ALU sequences (costed by component count).
_CHEAP_CALLS = frozenset(
    {"abs", "sign", "floor", "ceil", "fract", "round", "trunc", "min", "max",
     "clamp", "mix", "step", "smoothstep", "mod", "any", "all", "not",
     "lessThan", "greaterThan", "equal"}
)

#: Reduction builtins with dedicated support on vector ISAs.
_REDUCTIONS = frozenset({"dot", "length", "distance", "normalize", "cross",
                         "reflect", "refract", "faceforward"})


class OpClass(Enum):
    """Machine-op cost categories the vendor cost models weigh."""
    ALU = auto()            # simple arithmetic / compares / selects
    MOV = auto()            # data movement: insert/extract/shuffle/construct
    TRANSCENDENTAL = auto()
    REDUCTION = auto()      # dot-like ops
    TEXTURE = auto()
    INTERP = auto()         # varying input read
    UNIFORM = auto()        # uniform / constant-buffer read
    LOCAL_MEM = auto()      # array slot access (indexed temporaries)
    EXPORT = auto()         # colour output write
    BRANCH = auto()
    PHI = auto()            # free (register coalescing)


@dataclass(frozen=True)
class MachineOp:
    """One virtual-ISA op: a cost class and the scalar lanes it touches."""
    op_class: OpClass
    width: int  # scalar lanes touched


def classify(instr: Instr) -> MachineOp:
    """Map an IR instruction to its machine-op class and lane width."""
    if isinstance(instr, (BinOp, Cmp, Select, Convert)):
        return MachineOp(OpClass.ALU, instr.ty.width if not isinstance(
            instr, Cmp) else instr.lhs.ty.width)
    if isinstance(instr, (InsertElem, ExtractElem)):
        return MachineOp(OpClass.MOV, 1)
    if isinstance(instr, Shuffle):
        return MachineOp(OpClass.MOV, len(instr.mask))
    if isinstance(instr, Construct):
        return MachineOp(OpClass.MOV, instr.ty.width)
    if isinstance(instr, Call):
        if instr.callee in TRANSCENDENTALS:
            return MachineOp(OpClass.TRANSCENDENTAL, instr.ty.width)
        if instr.callee in _REDUCTIONS:
            width = instr.operands[0].ty.width if instr.operands else instr.ty.width
            return MachineOp(OpClass.REDUCTION, width)
        if instr.callee in _CHEAP_CALLS:
            return MachineOp(OpClass.ALU, instr.ty.width)
        return MachineOp(OpClass.ALU, instr.ty.width)
    if isinstance(instr, Sample):
        return MachineOp(OpClass.TEXTURE, instr.ty.width)
    if isinstance(instr, LoadGlobal):
        if instr.kind == "input":
            return MachineOp(OpClass.INTERP, instr.ty.width)
        return MachineOp(OpClass.UNIFORM, instr.ty.width)
    if isinstance(instr, LoadElem) and instr.slot.const_init is not None:
        # Const arrays live in constant registers on every real GPU.
        return MachineOp(OpClass.UNIFORM, instr.ty.width)
    if isinstance(instr, (LoadVar, StoreVar, LoadElem, StoreElem)):
        return MachineOp(OpClass.LOCAL_MEM, instr.ty.width)
    if isinstance(instr, StoreOutput):
        return MachineOp(OpClass.EXPORT, instr.ty.width)
    if isinstance(instr, Phi):
        return MachineOp(OpClass.PHI, instr.ty.width)
    if isinstance(instr, Terminator):
        if isinstance(instr, CondBr):
            return MachineOp(OpClass.BRANCH, 1)
        return MachineOp(OpClass.BRANCH, 0)  # unconditional: free-ish
    return MachineOp(OpClass.ALU, 1)
