"""GL_TIME_ELAPSED measurement noise model.

The paper notes timer queries "can be noisy and introduce profiling
overhead"; it fights that with 100 frames x 5 repeats per variant.  We model
measured draw time as

    measured = true * (1 + eps) + overhead,   eps ~ N(0, sigma)

with per-platform sigma (Intel least noisy per Section VI-D-7, mobile worst)
plus timer quantization.  All randomness is seeded for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class TimerModel:
    """Timer-query noise model: gaussian noise, overhead, quantization, drift."""
    sigma: float             # relative gaussian noise per query
    overhead_ns: float       # profiling overhead added to each query
    quantum_ns: float        # timer resolution
    drift_sigma: float = 0.0  # slow per-frame drift (thermal, mobile)

    def measure(self, true_ns: float, rng: random.Random) -> float:
        drift = rng.gauss(0.0, self.drift_sigma) if self.drift_sigma else 0.0
        noisy = true_ns * (1.0 + rng.gauss(0.0, self.sigma) + drift)
        noisy += self.overhead_ns
        if self.quantum_ns > 0:
            noisy = round(noisy / self.quantum_ns) * self.quantum_ns
        return max(noisy, 0.0)

    def measure_many(self, true_ns: float, rng: random.Random,
                     count: int) -> List[float]:
        """*count* consecutive queries, bit-identical to calling
        :meth:`measure` *count* times on the same ``rng``.

        This is the timer-sampling inner loop (hundreds of queries per
        measurement protocol run): attribute lookups, the drift/quantum
        mode tests, and method dispatch are hoisted out of the loop, with
        every arithmetic expression and RNG-draw order kept exactly as in
        :meth:`measure` so the float stream — and the ``rng`` state left
        behind — are unchanged.
        """
        gauss = rng.gauss
        sigma, overhead = self.sigma, self.overhead_ns
        quantum, drift_sigma = self.quantum_ns, self.drift_sigma
        if drift_sigma:
            raw = [true_ns * _noise_factor(gauss(0.0, drift_sigma),
                                           gauss(0.0, sigma)) + overhead
                   for _ in range(count)]
        else:
            raw = [true_ns * (1.0 + gauss(0.0, sigma) + 0.0) + overhead
                   for _ in range(count)]
        if quantum > 0:
            raw = [round(value / quantum) * quantum for value in raw]
        return [max(value, 0.0) for value in raw]


def _noise_factor(drift: float, noise: float) -> float:
    """``1.0 + noise + drift`` with the drift sample drawn first.

    ``measure`` draws the drift before the noise but sums left-to-right as
    ``(1.0 + noise) + drift``; call arguments evaluate left-to-right, so
    this helper preserves both the RNG draw order and the float-addition
    association, keeping the batched stream bit-identical.
    """
    return 1.0 + noise + drift
