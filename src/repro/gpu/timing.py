"""GL_TIME_ELAPSED measurement noise model.

The paper notes timer queries "can be noisy and introduce profiling
overhead"; it fights that with 100 frames x 5 repeats per variant.  We model
measured draw time as

    measured = true * (1 + eps) + overhead,   eps ~ N(0, sigma)

with per-platform sigma (Intel least noisy per Section VI-D-7, mobile worst)
plus timer quantization.  All randomness is seeded for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class TimerModel:
    """Timer-query noise model: gaussian noise, overhead, quantization, drift."""
    sigma: float             # relative gaussian noise per query
    overhead_ns: float       # profiling overhead added to each query
    quantum_ns: float        # timer resolution
    drift_sigma: float = 0.0  # slow per-frame drift (thermal, mobile)

    def measure(self, true_ns: float, rng: random.Random) -> float:
        drift = rng.gauss(0.0, self.drift_sigma) if self.drift_sigma else 0.0
        noisy = true_ns * (1.0 + rng.gauss(0.0, self.sigma) + drift)
        noisy += self.overhead_ns
        if self.quantum_ns > 0:
            noisy = round(noisy / self.quantum_ns) * self.quantum_ns
        return max(noisy, 0.0)
