"""Cost model approximating NVIDIA's Pascal desktop architecture: the
GeForce GTX 1080 under the proprietary 375.39 driver, one of the five
platforms in the paper's experimental-setup table (Sec. III).  The
``GPUSpec`` issue costs and ``VendorJIT`` pass list are calibrated so the
simulated platform reproduces NVIDIA's row of Table I (best static flags)
and its Fig. 9 per-flag violins.

Scalar SIMT ISA; the most mature JIT of the five: its own aggressive
unrolling and global value numbering make the offline Unroll/GVN flags
near no-ops (paper: both "near-zero" on NVIDIA, unroll peak ~5% from loops
just past the driver's unroll budget).  No unsafe FP in the driver, so the
offline FP-Reassociate flag carries real gains.
"""

from repro.gpu.cost import GPUSpec
from repro.gpu.jit import VendorJIT
from repro.gpu.platform import Platform
from repro.gpu.timing import TimerModel

NVIDIA = Platform(
    name="NVIDIA",
    device="GeForce GTX 1080",
    spec=GPUSpec(
        name="GTX1080",
        isa="scalar",
        alu=1.0,
        mov=0.4,
        transcendental=2.0,
        texture_issue=1.5,
        texture_latency=120.0,
        interp=1.0,
        uniform_load=0.3,
        local_mem=2.0,
        export=2.0,
        branch=1.0,
        divergent_branch=3.0,
        reg_file=512,
        max_warps=16,
        warps_full_hiding=6,
        reg_overhead=8,
        icache_ops=16384,
        icache_penalty=1.15,
        throughput=4.0e12,  # 2560 lanes x ~1.6 GHz
    ),
    jit=VendorJIT(
        name="nvidia-375.39",
        passes=("gvn", "div_to_mul"),
        unroll_max_trips=48,
        unroll_max_growth=120,
    ),
    timer=TimerModel(sigma=0.010, overhead_ns=400.0, quantum_ns=160.0),
    is_mobile=False,
)
