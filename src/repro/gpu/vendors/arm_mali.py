"""Cost model approximating ARM's Midgard mobile architecture: the
Mali-T880 MP12 in the Samsung Galaxy S7 (Exynos 8890), one of the five
platforms in the paper's experimental-setup table (Sec. III).  The
``GPUSpec`` issue costs and ``VendorJIT`` pass list are calibrated so the
simulated platform reproduces ARM's row of Table I (best static flags)
and its Fig. 9 per-flag violins.

The odd one out: a *vector* (VLIW-ish) ISA.  A vec4 multiply costs one issue
— the same as a scalar multiply — so the offline FP-Reassociate pass's
scalar grouping (a win on every scalar ISA) *wastes lanes* here and shows up
as the paper's 20% FP-reassociation slow-down that ejects the pass from
ARM's best static flags.  Branches are expensive (hoisting often helps, and
is in ARM's best static set) but the small register file makes huge
flattened/unrolled blocks drop occupancy hard (the -35% hoist pathology).
The driver only unrolls tiny loops, leaving offline Unroll the best flag on
ARM (peak ~25%).
"""

from repro.gpu.cost import GPUSpec
from repro.gpu.jit import VendorJIT
from repro.gpu.platform import Platform
from repro.gpu.timing import TimerModel

ARM = Platform(
    name="ARM",
    device="Mali-T880 MP12 (Galaxy S7)",
    spec=GPUSpec(
        name="MaliT880",
        isa="vector",
        alu=1.0,            # per vec4 issue
        mov=1.0,
        transcendental=3.0,
        reduction=1.5,      # Midgard dot-product support
        texture_issue=2.5,
        texture_latency=180.0,
        interp=1.0,
        uniform_load=0.5,
        local_mem=3.0,
        export=2.5,
        branch=1.5,
        divergent_branch=8.0,  # divergent branching is costly on Midgard
        scalar_op_penalty=2.6,  # scalar ops waste vector lanes
        reg_file=256,       # small register budget drives the pathologies
        max_warps=8,
        warps_full_hiding=4,
        reg_overhead=6,
        icache_ops=1024,
        icache_penalty=1.4,
        throughput=1.0e10,  # 12 cores x ~0.85 GHz, per-issue accounting
    ),
    jit=VendorJIT(
        name="mali-r12p0",
        passes=("div_to_mul",),
        unroll_max_trips=4,
        unroll_max_growth=256,
    ),
    timer=TimerModel(sigma=0.030, overhead_ns=2000.0, quantum_ns=1000.0,
                     drift_sigma=0.008),
    is_mobile=True,
)
