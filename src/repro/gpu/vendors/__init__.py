"""The paper's five GPU platforms (Section IV-C)."""

from repro.gpu.vendors.nvidia import NVIDIA
from repro.gpu.vendors.amd import AMD
from repro.gpu.vendors.intel import INTEL
from repro.gpu.vendors.arm_mali import ARM
from repro.gpu.vendors.qualcomm import QUALCOMM

__all__ = ["NVIDIA", "AMD", "INTEL", "ARM", "QUALCOMM"]
