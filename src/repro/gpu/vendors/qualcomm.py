"""Cost model approximating Qualcomm's Adreno mobile architecture: the
Adreno 530 in the HTC 10 (Snapdragon 820), one of the five platforms in
the paper's experimental-setup table (Sec. III).  The ``GPUSpec`` issue
costs and ``VendorJIT`` pass list are calibrated so the simulated platform
reproduces Qualcomm's row of Table I (best static flags) and its Fig. 9
per-flag violins.

Scalar ISA with a weak-at-the-time driver optimizer: no global value
numbering (offline GVN gains ~15% in some shaders — the only platform where
it does) and no FP simplification, so FP-Reassociate has its biggest peak
(+25%) here — but the small register file and tiny instruction cache also
give it the deepest troughs (-15%), and offline Unroll past the driver's own
budget can dip 8% on instruction-cache pressure (why Unroll is missing from
Qualcomm's best static flags).
"""

from repro.gpu.cost import GPUSpec
from repro.gpu.jit import VendorJIT
from repro.gpu.platform import Platform
from repro.gpu.timing import TimerModel

QUALCOMM = Platform(
    name="Qualcomm",
    device="Adreno 530 (HTC 10)",
    spec=GPUSpec(
        name="Adreno530",
        isa="scalar",
        alu=1.0,
        mov=0.5,
        transcendental=3.0,
        texture_issue=2.0,
        texture_latency=200.0,
        interp=1.0,
        uniform_load=0.5,
        local_mem=3.0,
        export=2.5,
        branch=1.2,
        divergent_branch=6.0,
        reg_file=256,
        max_warps=16,
        warps_full_hiding=4,
        reg_overhead=8,
        icache_ops=120,
        icache_penalty=1.25,
        throughput=1.7e11,  # 256 lanes x ~0.65 GHz
    ),
    jit=VendorJIT(
        name="adreno-530-v415",
        passes=("div_to_mul",),
        unroll_max_trips=16,
        unroll_max_growth=768,
    ),
    timer=TimerModel(sigma=0.035, overhead_ns=2500.0, quantum_ns=1000.0,
                     drift_sigma=0.010),
    is_mobile=True,
)
