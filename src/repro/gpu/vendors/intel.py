"""Cost model approximating Intel's Skylake GT2 integrated architecture:
HD Graphics 530 under Mesa 17.0-devel's i965 backend, one of the five
platforms in the paper's experimental-setup table (Sec. III).  The
``GPUSpec`` issue costs and ``VendorJIT`` pass list are calibrated so the
simulated platform reproduces Intel's row of Table I (best static flags)
and its Fig. 9 per-flag violins.

Scalar (SIMD8/16) ISA with a comparatively large register file; Mesa's i965
backend unrolled loops and value-numbered, so offline Unroll is near-zero /
slightly negative (artifact cost only) and GVN ~0.  Intel is also the
quietest platform in the paper's measurements (Section VI-D-7: "Intel (which
has the least measurement noise)").
"""

from repro.gpu.cost import GPUSpec
from repro.gpu.jit import VendorJIT
from repro.gpu.platform import Platform
from repro.gpu.timing import TimerModel

INTEL = Platform(
    name="Intel",
    device="HD Graphics 530",
    spec=GPUSpec(
        name="HD530",
        isa="scalar",
        alu=1.0,
        mov=0.5,
        transcendental=4.0,
        texture_issue=2.5,
        texture_latency=160.0,
        interp=1.2,
        uniform_load=0.4,
        local_mem=2.5,
        export=2.5,
        branch=1.0,
        divergent_branch=4.0,
        reg_file=448,
        max_warps=10,
        warps_full_hiding=5,
        reg_overhead=10,
        icache_ops=8192,
        icache_penalty=1.2,
        throughput=2.2e11,  # 192 lanes x ~1.15 GHz
    ),
    jit=VendorJIT(
        name="mesa-17.0-i965",
        passes=("gvn", "div_to_mul"),
        unroll_max_trips=32,
        unroll_max_growth=2048,
    ),
    timer=TimerModel(sigma=0.004, overhead_ns=300.0, quantum_ns=80.0),
    is_mobile=False,
)
