"""Cost model approximating AMD's Polaris (GCN) desktop architecture: the
Radeon RX 480 under Mesa 17.0-devel radeonsi / LLVM 3.9, one of the five
platforms in the paper's experimental-setup table (Sec. III).  The
``GPUSpec`` issue costs and ``VendorJIT`` pass list are calibrated so the
simulated platform reproduces AMD's row of Table I (best static flags)
and its Fig. 9 per-flag violins.

Scalar (GCN) ISA.  The era's Mesa stack did global value numbering but NOT
loop unrolling of GLSL loops — which is why the paper finds "On AMD, loop
unrolling always improves performance, and can result in 35% gains" and why
the default LunarGlass flags (which include Unroll) sit close to the optimal
speed-ups on this platform.
"""

from repro.gpu.cost import GPUSpec
from repro.gpu.jit import VendorJIT
from repro.gpu.platform import Platform
from repro.gpu.timing import TimerModel

AMD = Platform(
    name="AMD",
    device="Radeon RX 480",
    spec=GPUSpec(
        name="RX480",
        isa="scalar",
        alu=1.0,
        mov=0.5,
        transcendental=3.0,
        texture_issue=2.0,
        texture_latency=140.0,
        interp=1.0,
        uniform_load=0.4,
        local_mem=2.5,
        export=2.0,
        branch=1.0,
        divergent_branch=4.0,
        reg_file=384,
        max_warps=12,
        warps_full_hiding=6,
        reg_overhead=8,
        icache_ops=8192,
        icache_penalty=1.2,
        throughput=2.7e12,  # 2304 lanes x ~1.2 GHz
    ),
    jit=VendorJIT(
        name="mesa-17.0-radeonsi",
        passes=("gvn", "div_to_mul"),
        unroll_max_trips=0,  # radeonsi-era Mesa: no GLSL loop unrolling
    ),
    timer=TimerModel(sigma=0.012, overhead_ns=500.0, quantum_ns=160.0),
    is_mobile=False,
)
