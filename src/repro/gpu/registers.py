"""Register pressure estimation via SSA liveness analysis.

``max_live_scalars`` computes the maximum number of simultaneously live
scalar register slots across all program points — the input to the occupancy
model.  Huge basic blocks with many live texture results (after unrolling or
conditional flattening) push this up, dropping warp counts and exposing
texture latency: the paper's "strain register allocation" pathology.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir.instructions import Instr, Phi
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Constant, Undef, Value


def max_live_scalars(function: Function) -> int:
    """Peak live scalar values (vec4 counts as 4 slots)."""
    live_in: Dict[BasicBlock, Set[Value]] = {b: set() for b in function.blocks}
    live_out: Dict[BasicBlock, Set[Value]] = {b: set() for b in function.blocks}
    preds = function.predecessors()

    def uses_defs(block: BasicBlock):
        uses: Set[Value] = set()
        defs: Set[Value] = set()
        for instr in block.instrs:
            if isinstance(instr, Phi):
                defs.add(instr)
                continue  # phi uses live at predecessor ends, handled below
            for operand in instr.operands:
                if isinstance(operand, (Constant, Undef)):
                    continue
                if operand not in defs:
                    uses.add(operand)
            defs.add(instr)
        return uses, defs

    block_uses = {}
    block_defs = {}
    for block in function.blocks:
        block_uses[block], block_defs[block] = uses_defs(block)

    # Iterative backward dataflow.
    changed = True
    while changed:
        changed = False
        for block in reversed(function.blocks):
            out: Set[Value] = set()
            for succ in block.successors():
                out |= live_in[succ]
                for phi in succ.phis():
                    for pred, value in phi.incoming:
                        if pred is block and isinstance(value, Instr):
                            out.add(value)
            new_in = block_uses[block] | (out - block_defs[block])
            # Phis defined here are live-in conceptually (they receive on the
            # edge); keep them out of live-in to avoid double counting.
            if out != live_out[block] or new_in != live_in[block]:
                live_out[block] = out
                live_in[block] = new_in
                changed = True

    peak = 0
    for block in function.blocks:
        live = set(live_out[block])
        peak = max(peak, _width_sum(live))
        for instr in reversed(block.instrs):
            if instr in live:
                live.discard(instr)
            if isinstance(instr, Phi):
                continue
            for operand in instr.operands:
                if not isinstance(operand, (Constant, Undef)):
                    live.add(operand)
            peak = max(peak, _width_sum(live))
    return peak


def _width_sum(values: Set[Value]) -> int:
    return sum(v.ty.width for v in values)
