"""Analytical per-fragment cycle model and draw-call time estimation.

``estimate_kernel(function, spec, profile)`` walks the compiled IR, costs
each basic block by ISA class (scalar ISAs pay per lane, the Mali-style
vector ISA pays per issue), weights blocks by the dynamic execution profile,
and applies the occupancy model: register pressure determines resident warp
count, which determines how much texture latency is hidden.

The absolute scale is calibrated to plausible `GL_TIME_ELAPSED` magnitudes
(hundreds of microseconds for a 500x500 full-screen draw), but the study
reports relative speed-ups, which only depend on the model's structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.gpu.isa import MachineOp, OpClass, classify
from repro.gpu.registers import max_live_scalars
from repro.ir.instructions import CondBr, Instr, LoadGlobal, Phi, Sample
from repro.ir.module import Function


@dataclass(frozen=True)
class GPUSpec:
    """Microarchitecture parameters for one platform's shader core."""

    name: str
    isa: str  # "scalar" | "vector"
    # Per-scalar-lane costs (scalar ISA) / per-issue costs (vector ISA).
    alu: float = 1.0
    mov: float = 0.5
    transcendental: float = 4.0
    reduction: float = 1.5       # vector-ISA dot-unit issue cost
    texture_issue: float = 2.0
    texture_latency: float = 100.0
    interp: float = 1.0
    uniform_load: float = 0.5
    local_mem: float = 2.0
    export: float = 2.0
    branch: float = 1.0            # uniform (non-divergent) branch
    divergent_branch: float = 4.0  # extra cost when the condition varies
                                   # per fragment (warp divergence)
    scalar_op_penalty: float = 1.0  # vector ISA: scalar ops waste lanes
    # Occupancy model.
    reg_file: int = 256          # scalar registers per thread-slot budget
    max_warps: int = 16
    warps_full_hiding: int = 8
    reg_overhead: int = 8        # regs consumed by fixed state
    # Instruction cache model (small on mobile).
    icache_ops: int = 4096
    icache_penalty: float = 1.3
    # Machine scale: effective scalar lanes * clock, for ns conversion.
    throughput: float = 1.0e12   # scalar-lane-cycles per second across chip


@dataclass
class CostBreakdown:
    """Cycle accounting for one compiled shader on one GPU."""

    cycles_per_fragment: float = 0.0
    alu_cycles: float = 0.0
    mov_cycles: float = 0.0
    transcendental_cycles: float = 0.0
    texture_cycles: float = 0.0
    memory_cycles: float = 0.0
    branch_cycles: float = 0.0
    registers: int = 0
    occupancy: float = 1.0
    static_ops: int = 0
    by_class: Dict[str, float] = field(default_factory=dict)


def _op_cost(op: MachineOp, spec: GPUSpec) -> float:
    scalar = spec.isa == "scalar"
    width = max(op.width, 1)
    # Vector ISAs pay one issue regardless of width, but scalar-width ops
    # waste the other lanes (and serialize against the vector pipeline).
    waste = spec.scalar_op_penalty if (not scalar and op.width == 1) else 1.0
    if op.op_class == OpClass.ALU:
        return spec.alu * (width if scalar else waste)
    if op.op_class == OpClass.MOV:
        return spec.mov * (width if scalar else waste)
    if op.op_class == OpClass.TRANSCENDENTAL:
        return spec.transcendental * (width if scalar else waste)
    if op.op_class == OpClass.REDUCTION:
        if scalar:
            return spec.alu * (2 * width - 1)
        return spec.reduction
    if op.op_class == OpClass.INTERP:
        return spec.interp * (width if scalar else 1)
    if op.op_class == OpClass.UNIFORM:
        return spec.uniform_load * (width if scalar else 1)
    if op.op_class == OpClass.LOCAL_MEM:
        return spec.local_mem * (width if scalar else 1)
    if op.op_class == OpClass.EXPORT:
        return spec.export
    if op.op_class == OpClass.BRANCH:
        return spec.branch if op.width else spec.branch * 0.25
    if op.op_class == OpClass.PHI:
        return 0.0
    if op.op_class == OpClass.TEXTURE:
        return spec.texture_issue  # latency handled separately
    raise AssertionError(op.op_class)


def estimate_kernel(function: Function, spec: GPUSpec,
                    profile: Optional[Dict[str, float]] = None) -> CostBreakdown:
    """Estimate per-fragment cost.

    *profile* maps block names to average dynamic visit counts per fragment
    (from the reference interpreter); unprofiled blocks default to 1 for
    blocks only reachable once and are weighted 0 when absent from a supplied
    profile (they did not execute).
    """
    result = CostBreakdown()
    result.registers = max_live_scalars(function) + spec.reg_overhead
    varying = _varying_values(function)

    warps = max(1, min(spec.max_warps,
                       spec.reg_file // max(result.registers, 1)))
    result.occupancy = min(1.0, warps / spec.warps_full_hiding)
    unhidden = spec.texture_latency * (1.0 - result.occupancy)

    total = 0.0
    for block in function.blocks:
        if profile is not None:
            weight = profile.get(block.name, 0.0)
        else:
            weight = 1.0
        if weight == 0.0:
            result.static_ops += len(block.instrs)
            continue
        block_cost = 0.0
        for instr in block.instrs:
            op = classify(instr)
            cost = _op_cost(op, spec)
            if isinstance(instr, CondBr) and id(instr.cond) in varying:
                # Per-fragment condition: warp divergence penalty.
                cost += spec.divergent_branch
            result.static_ops += 1
            cls = op.op_class
            if cls == OpClass.TEXTURE:
                cost += unhidden
                result.texture_cycles += cost * weight
            elif cls == OpClass.TRANSCENDENTAL:
                result.transcendental_cycles += cost * weight
            elif cls == OpClass.MOV:
                result.mov_cycles += cost * weight
            elif cls in (OpClass.LOCAL_MEM, OpClass.UNIFORM, OpClass.INTERP):
                result.memory_cycles += cost * weight
            elif cls == OpClass.BRANCH:
                result.branch_cycles += cost * weight
            else:
                result.alu_cycles += cost * weight
            result.by_class[cls.name] = result.by_class.get(cls.name, 0.0) + (
                cost * weight)
            block_cost += cost
        total += block_cost * weight

    if result.static_ops > spec.icache_ops:
        total *= spec.icache_penalty

    result.cycles_per_fragment = total
    return result


def _varying_values(function: Function) -> set:
    """ids of values that vary per fragment (taint from varyings/textures).

    Loop counters and uniform-derived values stay uniform across a warp, so
    branches on them do not diverge — this is what makes loop back-edges
    cheap while data-dependent branches pay the divergence penalty.
    """
    varying: set = set()
    changed = True
    while changed:
        changed = False
        for instr in function.instructions():
            if id(instr) in varying:
                continue
            tainted = False
            if isinstance(instr, LoadGlobal) and instr.kind == "input":
                tainted = True
            elif isinstance(instr, Sample):
                tainted = True
            elif isinstance(instr, Phi):
                tainted = any(id(v) in varying for _, v in instr.incoming)
            else:
                tainted = any(id(op) in varying for op in instr.operands)
            if tainted:
                varying.add(id(instr))
                changed = True
    return varying


def draw_time_ns(cost: CostBreakdown, spec: GPUSpec, fragments: int) -> float:
    """Convert a per-fragment cycle estimate into nanoseconds per draw call."""
    lane_cycles = cost.cycles_per_fragment * fragments
    return lane_cycles / spec.throughput * 1.0e9
