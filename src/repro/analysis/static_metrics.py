"""Static code-size statistics (paper Fig. 4a) and corpus composition."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.glsl.metrics import lines_of_code
from repro.harness.results import ShaderCase, StudyResult
from repro.reporting.spec import TableSpec


def loc_distribution(corpus: Sequence[ShaderCase]) -> List[int]:
    """Per-shader LoC after preprocessing, sorted descending (Fig. 4a)."""
    return sorted((lines_of_code(case.source) for case in corpus), reverse=True)


def corpus_composition_spec(study: StudyResult) -> TableSpec:
    """Per-family corpus composition: case counts, size, variant richness.

    Families named ``synth_*`` are the procedurally synthesized ones
    (:mod:`repro.corpus.synth`); the closing rows summarize the hand-written
    and synthesized partitions so a scaled-out study shows at a glance what
    its corpus was made of.
    """
    by_family: Dict[str, list] = {}
    for shader in study.shaders:
        by_family.setdefault(shader.family, []).append(shader)

    def summary(label: str, shaders: list) -> tuple:
        locs = sorted(s.loc for s in shaders)
        uniques = [s.unique_variant_count for s in shaders]
        return (label, len(shaders), min(locs), locs[len(locs) // 2],
                max(locs), f"{sum(uniques) / len(uniques):.1f}")

    rows = [summary(name, shaders)
            for name, shaders in sorted(by_family.items())]
    synth = [s for s in study.shaders if s.family.startswith("synth_")]
    hand = [s for s in study.shaders if not s.family.startswith("synth_")]
    if synth and hand:
        rows.append(summary("(all hand-written)", hand))
        rows.append(summary("(all synthesized)", synth))
    return TableSpec.make(
        ["family", "cases", "min LoC", "median LoC", "max LoC",
         "mean unique variants"],
        rows,
        caption=f"Corpus composition: {len(study.shaders)} cases across "
                f"{len(by_family)} families ({len(hand)} hand-written cases, "
                f"{len(synth)} synthesized)")


def loc_summary(corpus: Sequence[ShaderCase]) -> Dict[str, float]:
    """Count/min/median/max LoC and the under-50-line fraction (Fig. 4a)."""
    values = loc_distribution(corpus)
    under_50 = sum(1 for v in values if v < 50)
    return {
        "count": len(values),
        "max": max(values),
        "min": min(values),
        "median": values[len(values) // 2],
        "fraction_under_50": under_50 / len(values),
    }
