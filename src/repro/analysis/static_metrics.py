"""Static code-size statistics (paper Fig. 4a)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.glsl.metrics import lines_of_code
from repro.harness.results import ShaderCase


def loc_distribution(corpus: Sequence[ShaderCase]) -> List[int]:
    """Per-shader LoC after preprocessing, sorted descending (Fig. 4a)."""
    return sorted((lines_of_code(case.source) for case in corpus), reverse=True)


def loc_summary(corpus: Sequence[ShaderCase]) -> Dict[str, float]:
    values = loc_distribution(corpus)
    under_50 = sum(1 for v in values if v < 50)
    return {
        "count": len(values),
        "max": max(values),
        "min": min(values),
        "median": values[len(values) // 2],
        "fraction_under_50": under_50 / len(values),
    }
