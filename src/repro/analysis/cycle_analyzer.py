"""ARM static shader analysis (paper Fig. 4b).

The paper uses ARM's offline Mali compiler to report "the sum of all cycles
spent on Arithmetic, Load/Store, and Texture operations on the longest
execution path".  We reproduce that with the Mali cost model applied
statically: blocks are weighted by the longest-path execution count
(loops at their static trip count when analyzable, else a default), and only
the arithmetic / load-store / texture categories are summed (no occupancy or
latency modelling — it is a static analyser).
"""

from __future__ import annotations

from typing import Dict

from repro.gpu.isa import OpClass, classify
from repro.ir.cfg import find_natural_loops
from repro.ir.module import Function

_DEFAULT_TRIPS = 4.0

#: Static per-op cycle weights for the three categories ARM's tool reports.
_ARITH = {OpClass.ALU: 1.0, OpClass.MOV: 0.5, OpClass.TRANSCENDENTAL: 3.0,
          OpClass.REDUCTION: 1.5}
_LOAD_STORE = {OpClass.INTERP: 1.0, OpClass.UNIFORM: 0.5,
               OpClass.LOCAL_MEM: 2.0, OpClass.EXPORT: 1.0}
_TEXTURE = {OpClass.TEXTURE: 2.5}


def arm_static_cycles(source: str) -> float:
    """Run the simulated Mali offline analyser on raw GLSL source."""
    from repro.gpu.vendors.arm_mali import ARM

    module = ARM.jit.compile(source)
    return static_cycles(module.function)


def static_cycles(function: Function) -> float:
    """Estimated Mali cycle count of *function*: block costs weighted by loop depth."""
    weights = _block_weights(function)
    total = 0.0
    for block in function.blocks:
        weight = weights.get(block.name, 1.0)
        for instr in block.instrs:
            op = classify(instr)
            for table in (_ARITH, _LOAD_STORE, _TEXTURE):
                if op.op_class in table:
                    total += table[op.op_class] * weight
                    break
    return total


def _block_weights(function: Function) -> Dict[str, float]:
    """Longest-path weights: every block once, loop bodies multiplied by the
    loop's static trip count (nested loops multiply)."""
    weights: Dict[str, float] = {b.name: 1.0 for b in function.blocks}
    for loop in find_natural_loops(function):
        trips = _static_trip_count(function, loop)
        for block in loop.blocks:
            weights[block.name] *= trips
    return weights


def _static_trip_count(function: Function, loop) -> float:
    from repro.passes.unroll import _plan

    plan = _plan(function, loop, max_trips=1024, max_growth=10 ** 9)
    if plan is None:
        return _DEFAULT_TRIPS
    return float(plan[1])
