"""Analyses behind every table and figure in the paper's evaluation."""

from repro.analysis.static_metrics import loc_distribution
from repro.analysis.cycle_analyzer import arm_static_cycles
from repro.analysis.uniqueness import variant_count_distribution
from repro.analysis.speedups import (
    average_speedups, per_shader_distribution, top_shaders,
)
from repro.analysis.flags import (
    best_static_flags, flag_applicability, isolated_flag_impact,
)

__all__ = [
    "loc_distribution", "arm_static_cycles", "variant_count_distribution",
    "average_speedups", "per_shader_distribution", "top_shaders",
    "best_static_flags", "flag_applicability", "isolated_flag_impact",
]
