"""Unique-variant statistics (paper Fig. 4c)."""

from __future__ import annotations

from typing import Dict, List

from repro.harness.results import StudyResult
from repro.reporting.spec import HistogramSpec, Spec, TableSpec


def variant_count_distribution(study: StudyResult) -> List[int]:
    """Unique variants per shader, sorted descending (Fig. 4c's series)."""
    return sorted((s.unique_variant_count for s in study.shaders), reverse=True)


def uniqueness_summary(study: StudyResult) -> Dict[str, float]:
    """Count, max, median, and under-10 fraction of unique-variant counts."""
    counts = variant_count_distribution(study)
    return {
        "count": len(counts),
        "max": max(counts),
        "median": counts[len(counts) // 2],
        "fraction_under_10": sum(1 for c in counts if c < 10) / len(counts),
        "total_measured_variants": sum(counts),
    }


def uniqueness_specs(study: StudyResult) -> List[Spec]:
    """Fig. 4c as a histogram of unique-variant counts plus the headline
    statistics table."""
    counts = [float(c) for c in variant_count_distribution(study)]
    specs: List[Spec] = [HistogramSpec.make(
        counts, bins=min(12, max(len(set(counts)), 1)),
        caption="Unique variants per shader (of 256 flag combinations)",
        xlabel="unique variants")]
    if counts:
        summary = uniqueness_summary(study)
        specs.append(TableSpec.make(
            ["shaders", "max variants", "median variants",
             "shaders with < 10", "total measured variants"],
            [(summary["count"], summary["max"], summary["median"],
              f"{100.0 * summary['fraction_under_10']:.0f}%",
              summary["total_measured_variants"])],
            caption="Variant-uniqueness summary"))
    return specs
