"""Unique-variant statistics (paper Fig. 4c)."""

from __future__ import annotations

from typing import Dict, List

from repro.harness.results import StudyResult


def variant_count_distribution(study: StudyResult) -> List[int]:
    """Unique variants per shader, sorted descending (Fig. 4c's series)."""
    return sorted((s.unique_variant_count for s in study.shaders), reverse=True)


def uniqueness_summary(study: StudyResult) -> Dict[str, float]:
    counts = variant_count_distribution(study)
    return {
        "count": len(counts),
        "max": max(counts),
        "median": counts[len(counts) // 2],
        "fraction_under_10": sum(1 for c in counts if c < 10) / len(counts),
        "total_measured_variants": sum(counts),
    }
