"""Flag-level analyses: Table I (best static flags), Fig. 8 (applicability /
optimality), Fig. 9 (isolated per-flag impact)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.harness.results import ShaderResult, StudyResult
from repro.passes import ALL_FLAG_NAMES, OptimizationFlags
from repro.passes.flags import FLAG_LABELS
from repro.reporting.spec import Series, TableSpec, ViolinSpec


def best_static_flags(study: StudyResult, platform: str) -> OptimizationFlags:
    """The flag combination maximizing mean speed-up across all shaders
    (Table I).  Ties break toward the *minimal* flag set, matching the
    paper's note that no-op flags (ADCE) "can be safely omitted from the
    minimal optimal flag selection".

    The 256-combination scan is memoized per (study, platform) on the
    study instance — a full report evaluates it from four different
    artifacts.  Like ``ShaderResult.variant_for_flags``, the memo is
    refreshed when shaders have been appended since it was built."""
    cached = study.__dict__.get("_best_static_flags")
    if cached is None or cached[0] != len(study.shaders):
        cached = (len(study.shaders), {})
        study.__dict__["_best_static_flags"] = cached
    if platform in cached[1]:
        return cached[1][platform]
    best = _scan_best_static_flags(study, platform)
    cached[1][platform] = best
    return best


def _scan_best_static_flags(study: StudyResult,
                            platform: str) -> OptimizationFlags:
    best: Optional[OptimizationFlags] = None
    best_score = float("-inf")
    for index in range(256):
        flags = OptimizationFlags.from_index(index)
        score = _mean_speedup(study, platform, flags)
        better = score > best_score + 1e-9
        tie = abs(score - best_score) <= 1e-9
        if better or (tie and best is not None
                      and len(flags.enabled()) < len(best.enabled())):
            best = flags
            best_score = score
    assert best is not None
    return best


def _mean_speedup(study: StudyResult, platform: str,
                  flags: OptimizationFlags) -> float:
    total = 0.0
    for shader in study.shaders:
        total += shader.speedup_pct(platform, flags)
    return total / max(len(study.shaders), 1)


def mean_speedup(study: StudyResult, platform: str,
                 flags: OptimizationFlags) -> float:
    """Public wrapper for the Table I / Fig. 5 metric."""
    return _mean_speedup(study, platform, flags)


# ---------------------------------------------------------------------------
# Fig. 8: applicability and optimality
# ---------------------------------------------------------------------------


@dataclass
class FlagApplicability:
    """Counts for one flag across the corpus (one Fig. 8 subplot)."""

    flag: str
    total_shaders: int = 0          # blue
    changes_code: int = 0           # red: flag alters output for some combo
    in_optimal_set: int = 0         # green: flag on in >=half of best-10% variants

    @property
    def applicability(self) -> float:
        return self.changes_code / max(self.total_shaders, 1)


def flag_applicability(study: StudyResult,
                       platform: str) -> Dict[str, FlagApplicability]:
    """Fig. 8 for one platform."""
    results = {name: FlagApplicability(flag=name, total_shaders=len(study.shaders))
               for name in ALL_FLAG_NAMES}
    for shader in study.shaders:
        variant_of: Dict[int, int] = {}
        for variant in shader.variants:
            for index in variant.flag_indices:
                variant_of[index] = variant.variant_id
        for bit, name in enumerate(ALL_FLAG_NAMES):
            if _flag_changes_code(variant_of, bit):
                results[name].changes_code += 1
        optimal = _optimal_variant_flags(shader, platform)
        for name in optimal:
            results[name].in_optimal_set += 1
    return results


def _flag_changes_code(variant_of: Dict[int, int], bit: int) -> bool:
    mask = 1 << bit
    for index in range(256):
        if index & mask:
            continue
        if variant_of[index] != variant_of[index | mask]:
            return True
    return False


def _optimal_variant_flags(shader: ShaderResult, platform: str) -> List[str]:
    """Flags on in at least half of the best-10% variants (paper's green
    criterion: "included for at least half of the optimal 10% of variants")."""
    ranked = sorted(shader.variants,
                    key=lambda v: v.times_ns[platform])
    top_n = max(1, round(len(ranked) * 0.10))
    top = ranked[:top_n]
    winners: List[str] = []
    for bit, name in enumerate(ALL_FLAG_NAMES):
        mask = 1 << bit
        votes = 0
        for variant in top:
            # A variant corresponds to many combos; call the flag "on" when
            # at least one producing combo has it on AND turning it off would
            # leave this variant (i.e. the flag is materially involved).
            on = any(index & mask for index in variant.flag_indices)
            off = any(not (index & mask) for index in variant.flag_indices)
            if on and not off:
                votes += 1
        if votes * 2 >= len(top):
            winners.append(name)
    return winners


# ---------------------------------------------------------------------------
# Fig. 9: isolated flag impact
# ---------------------------------------------------------------------------


@dataclass
class IsolatedImpact:
    """Speed-up distribution of one flag alone vs the all-off baseline."""

    flag: str
    platform: str
    speedups_pct: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return sum(self.speedups_pct) / max(len(self.speedups_pct), 1)

    @property
    def peak(self) -> float:
        return max(self.speedups_pct) if self.speedups_pct else 0.0

    @property
    def trough(self) -> float:
        return min(self.speedups_pct) if self.speedups_pct else 0.0


def isolated_flag_impact(study: StudyResult, platform: str,
                         flag: str) -> IsolatedImpact:
    """Fig. 9: each flag alone, measured against the LunarGlass all-flags-off
    baseline (NOT the unaltered shader — Section VI-D explains this isolates
    the pass's effect from code-generation artifacts)."""
    result = IsolatedImpact(flag=flag, platform=platform)
    none_flags = OptimizationFlags.none()
    single = OptimizationFlags.single(flag)
    for shader in study.shaders:
        base = shader.variant_for_flags(none_flags).times_ns[platform]
        time = shader.variant_for_flags(single).times_ns[platform]
        result.speedups_pct.append((base / time - 1.0) * 100.0)
    return result


# ---------------------------------------------------------------------------
# Figure specs for the report registry
# ---------------------------------------------------------------------------


def best_flags_table_spec(study: StudyResult) -> TableSpec:
    """Table I: the best static flag selection per platform, as a flag
    matrix plus the mean speed-up it delivers."""
    headers = ["platform"] + [FLAG_LABELS[name] for name in ALL_FLAG_NAMES] \
        + ["mean %"]
    rows = []
    for platform in study.platforms:
        flags = best_static_flags(study, platform)
        rows.append(tuple([platform]
                          + ["x" if getattr(flags, name) else "-"
                             for name in ALL_FLAG_NAMES]
                          + [mean_speedup(study, platform, flags)]))
    return TableSpec.make(
        headers, rows,
        caption="Best static flag selection per platform "
                "(x = enabled, minimal tie-break)")


def applicability_spec(study: StudyResult) -> TableSpec:
    """Fig. 8 as one table: per flag, how many shaders it rewrites
    (platform-independent) and how often it appears in the optimal set on
    each platform."""
    per_platform = {platform: flag_applicability(study, platform)
                    for platform in study.platforms}
    headers = ["flag", "changes code", "applicability"] \
        + [f"optimal on {p}" for p in study.platforms]
    rows = []
    first = study.platforms[0] if study.platforms else None
    for name in ALL_FLAG_NAMES:
        base = per_platform[first][name] if first else None
        row = [FLAG_LABELS[name],
               base.changes_code if base else 0,
               f"{100.0 * base.applicability:.0f}%" if base else "-"]
        row += [per_platform[p][name].in_optimal_set for p in study.platforms]
        rows.append(tuple(row))
    return TableSpec.make(
        headers, rows,
        caption="Flag applicability (shaders whose code changes) and "
                "membership in the optimal 10% of variants")


def per_flag_impact_specs(study: StudyResult) -> List[ViolinSpec]:
    """Fig. 9: isolated per-flag speed-up violins, one panel per platform."""
    specs: List[ViolinSpec] = []
    for platform in study.platforms:
        series = []
        for name in ALL_FLAG_NAMES:
            impact = isolated_flag_impact(study, platform, name)
            series.append(Series.make(FLAG_LABELS[name], impact.speedups_pct))
        specs.append(ViolinSpec(
            series=tuple(series),
            caption=f"{platform}: each flag alone vs the all-off baseline"))
    return specs
