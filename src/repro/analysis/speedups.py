"""Speed-up aggregations: Fig. 5 (overall averages), Fig. 6 (top-30 shaders),
Fig. 7 (per-shader distributions), Fig. 3 (blanket-optimization distribution).

Each aggregation has a ``*_spec`` twin producing the declarative figure spec
the report registry (:mod:`repro.reporting.artifacts`) renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.flags import best_static_flags, mean_speedup
from repro.harness.results import StudyResult
from repro.passes import DEFAULT_LUNARGLASS, OptimizationFlags
from repro.reporting.spec import (
    BarSpec, ScatterSeries, ScatterSpec, Series, TableSpec, ViolinSpec,
)


@dataclass
class OverallSpeedups:
    """Fig. 5 rows for one platform."""

    platform: str
    best_possible: float      # per-shader best variant, averaged
    best_static: float        # single best flag set for the platform
    default_lunarglass: float


def average_speedups(study: StudyResult) -> List[OverallSpeedups]:
    """Fig. 5 rows: per-platform best-possible / best-static / default speed-ups."""
    out: List[OverallSpeedups] = []
    for platform in study.platforms:
        best_pct = sum(s.best_speedup_pct(platform) for s in study.shaders)
        best_pct /= max(len(study.shaders), 1)
        static = best_static_flags(study, platform)
        out.append(OverallSpeedups(
            platform=platform,
            best_possible=best_pct,
            best_static=mean_speedup(study, platform, static),
            default_lunarglass=mean_speedup(study, platform,
                                            DEFAULT_LUNARGLASS),
        ))
    return out


@dataclass
class PerShaderDistribution:
    """Fig. 7 series for one platform (green/red/blue in the paper)."""

    platform: str
    shaders: List[str] = field(default_factory=list)
    best_possible: List[float] = field(default_factory=list)   # green
    default_lunarglass: List[float] = field(default_factory=list)  # red
    best_static: List[float] = field(default_factory=list)     # blue


def per_shader_distribution(study: StudyResult,
                            platform: str) -> PerShaderDistribution:
    """Fig. 7 series: per-shader speed-ups under the three flag policies."""
    static = best_static_flags(study, platform)
    dist = PerShaderDistribution(platform=platform)
    rows = []
    for shader in study.shaders:
        rows.append((
            shader.best_speedup_pct(platform),
            shader.speedup_pct(platform, DEFAULT_LUNARGLASS),
            shader.speedup_pct(platform, static),
            shader.name,
        ))
    rows.sort(reverse=True)  # paper plots sorted by best possible
    for best, default, stat, name in rows:
        dist.shaders.append(name)
        dist.best_possible.append(best)
        dist.default_lunarglass.append(default)
        dist.best_static.append(stat)
    return dist


def top_shaders(study: StudyResult, platform: str,
                count: int = 30) -> Dict[str, float]:
    """Fig. 6: the `count` most-improved shaders (best-variant speed-up)."""
    scored = sorted(
        ((s.best_speedup_pct(platform), s.name) for s in study.shaders),
        reverse=True)
    return {name: pct for pct, name in scored[:count]}


def blanket_distribution(study: StudyResult, platform: str,
                         flags: OptimizationFlags) -> List[float]:
    """Fig. 3 (right): apply one flag set to every shader; the speed-up
    distribution that motivates per-shader adaptivity."""
    return sorted((s.speedup_pct(platform, flags) for s in study.shaders),
                  reverse=True)


# ---------------------------------------------------------------------------
# Figure specs for the report registry
# ---------------------------------------------------------------------------


def overall_speedups_spec(study: StudyResult) -> TableSpec:
    """Fig. 5 as one table: the three averages per platform."""
    rows = [(r.platform, r.best_possible, r.best_static, r.default_lunarglass)
            for r in average_speedups(study)]
    return TableSpec.make(
        ["platform", "best possible %", "best static %", "default %"], rows,
        caption="Average speed-up over the unaltered shader, per platform")


def per_shader_violin_specs(study: StudyResult) -> List[ViolinSpec]:
    """Fig. 7 as per-platform speed-up violins (best / default / static)."""
    specs: List[ViolinSpec] = []
    for platform in study.platforms:
        dist = per_shader_distribution(study, platform)
        specs.append(ViolinSpec(
            series=(Series.make("best possible", dist.best_possible),
                    Series.make("default LunarGlass",
                                dist.default_lunarglass),
                    Series.make("best static", dist.best_static)),
            caption=f"{platform}: per-shader speed-up distribution"))
    return specs


def top_shaders_specs(study: StudyResult, count: int = 30) -> List[BarSpec]:
    """Fig. 6: the most-improved shaders per platform."""
    specs: List[BarSpec] = []
    for platform in study.platforms:
        scored = top_shaders(study, platform, count=count)
        specs.append(BarSpec.make(
            list(scored), list(scored.values()),
            caption=f"{platform}: top {len(scored)} shaders "
                    "by best-variant speed-up"))
    return specs


def blanket_specs(study: StudyResult) -> List[BarSpec]:
    """Fig. 3 (right): the default LunarGlass flags applied blanket-style."""
    specs: List[BarSpec] = []
    for platform in study.platforms:
        values = blanket_distribution(study, platform, DEFAULT_LUNARGLASS)
        specs.append(BarSpec.make(
            [""] * len(values), values,
            caption=f"{platform}: blanket default-flag speed-up, "
                    "shaders sorted"))
    return specs


def loc_scatter_specs(study: StudyResult) -> List[ScatterSpec]:
    """Shader size vs headroom: LoC against best-variant speed-up
    (small multiples, one panel per platform)."""
    specs: List[ScatterSpec] = []
    for platform in study.platforms:
        points = [(float(s.loc), s.best_speedup_pct(platform))
                  for s in study.shaders]
        specs.append(ScatterSpec(
            series=(ScatterSeries.make(platform, points),),
            xlabel="lines of GLSL", ylabel="best speed-up %",
            caption=f"{platform}: shader size vs best available speed-up"))
    return specs
