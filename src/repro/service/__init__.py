"""repro.service — the long-running study service behind ``repro serve``.

Turns the one-shot CLI workflow into a daemon that faces traffic: tenants
submit studies over a local socket, a FIFO queue + worker pool executes
them on the existing search engine, and one process-wide content-addressed
:class:`~repro.search.cache.ResultCache` is shared across every job — so a
second tenant submitting already-measured work gets cache hits, not
recomputes.  The pieces:

- :mod:`repro.service.jobs` — :class:`JobSpec` (content-addressed work
  descriptions) and the ``pending → running → done/failed/cancelled``
  lifecycle;
- :mod:`repro.service.journal` — the torn-tail-safe ``jobs.jsonl`` queue
  journal a restarted daemon recovers from;
- :mod:`repro.service.queue` — the FIFO queue and thread worker pool;
- :mod:`repro.service.runner` — execution on the shared engine, with
  per-job cooperative timeout/cancellation;
- :mod:`repro.service.protocol` — the line-delimited-JSON wire format;
- :mod:`repro.service.server` — :class:`StudyService`, the orchestrator;
- :mod:`repro.service.client` — :class:`ServiceClient`, what
  ``repro client`` wraps.

See ``docs/service.md`` for the protocol reference and operational notes.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    CANCELLED, DISPATCH_STRATEGY, DONE, FAILED, Job, JobCancelled, JobSpec,
    PENDING, RUNNING, STUDY_STRATEGY, TERMINAL_STATES,
)
from repro.service.journal import JobJournal
from repro.service.queue import JobQueue, WorkerPool
from repro.service.runner import JobRunner
from repro.service.server import StudyService, socket_available

__all__ = [
    "ServiceClient", "ServiceError",
    "Job", "JobSpec", "JobCancelled", "STUDY_STRATEGY", "DISPATCH_STRATEGY",
    "PENDING", "RUNNING", "DONE", "FAILED", "CANCELLED", "TERMINAL_STATES",
    "JobJournal", "JobQueue", "WorkerPool", "JobRunner",
    "StudyService", "socket_available",
]
