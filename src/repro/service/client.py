"""Client for the study service: connect, speak line-JSON, return dicts.

:class:`ServiceClient` is what ``repro client`` wraps: one short-lived
connection per request (the protocol is single-turn), helpers for each
operation, and a polling :meth:`follow` that yields a job's progress
events as they land — the ``tail -f`` of study results.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.service.jobs import JobSpec
from repro.service.protocol import (
    ProtocolError, decode_line, encode_line, MAX_LINE_BYTES,
)


class ServiceError(Exception):
    """The service answered ``ok: false`` (its error message verbatim)."""


class ServiceClient:
    """Talk to a ``repro serve`` daemon over its Unix socket."""

    def __init__(self, socket_path: Union[str, Path],
                 timeout: float = 30.0):
        self.socket_path = str(socket_path)
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """One request/response turn; raises :class:`ServiceError` on
        ``ok: false`` and ``ConnectionError`` if the daemon is unreachable."""
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.socket_path)
            except OSError as exc:
                raise ConnectionError(
                    f"cannot reach repro serve at {self.socket_path}: "
                    f"{exc}") from None
            sock.sendall(encode_line(payload))
            sock.shutdown(socket.SHUT_WR)
            line = _recv_line(sock)
        response = decode_line(line)
        if not response.get("ok"):
            raise ServiceError(response.get("error") or "unknown error")
        return response

    def wait_ready(self, deadline: float = 10.0) -> dict:
        """Poll ``ping`` until the daemon answers (startup handshake)."""
        end = time.monotonic() + deadline
        while True:
            try:
                return self.ping()
            except (ConnectionError, ProtocolError):
                if time.monotonic() >= end:
                    raise
                time.sleep(0.05)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness check."""
        return self.request({"op": "ping"})

    def submit(self, spec: Union[JobSpec, dict]) -> dict:
        """Submit a job; returns ``{"id", "digest", "state", "position"}``."""
        spec_dict = spec.to_dict() if isinstance(spec, JobSpec) else spec
        return self.request({"op": "submit", "spec": spec_dict})

    def status(self, job_id: Optional[str] = None) -> dict:
        """One job's status, or every job's when *job_id* is omitted."""
        payload: dict = {"op": "status"}
        if job_id is not None:
            payload["id"] = job_id
        return self.request(payload)

    def tail(self, job_id: str, since: int = 0) -> dict:
        """One non-blocking poll: events from *since* plus current state."""
        return self.request({"op": "tail", "id": job_id, "since": since})

    def follow(self, job_id: str, since: int = 0,
               poll: float = 0.05) -> Iterator[dict]:
        """Yield a job's events as they land until it goes terminal.

        The final yielded event (``type: "state"``) carries the terminal
        state, so consumers need no separate status call.
        """
        cursor = since
        while True:
            response = self.tail(job_id, since=cursor)
            for event in response["events"]:
                yield event
            cursor = response["next"]
            if response["state"] in ("done", "failed", "cancelled"):
                return
            time.sleep(poll)

    def cancel(self, job_id: str) -> dict:
        """Request cancellation (immediate when pending, cooperative when
        running)."""
        return self.request({"op": "cancel", "id": job_id})

    def stats(self) -> dict:
        """Service-wide stats: jobs by state, cache counters, workers."""
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        """Ask the daemon to stop (in-flight jobs finish first)."""
        return self.request({"op": "shutdown"})


def _recv_line(sock: socket.socket) -> bytes:
    """Read one newline-terminated response off *sock*."""
    chunks = []
    total = 0
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        chunks.append(chunk)
        total += len(chunk)
        if chunk.endswith(b"\n") or total > MAX_LINE_BYTES:
            break
    line = b"".join(chunks)
    if not line.endswith(b"\n"):
        raise ProtocolError("connection closed mid-response")
    return line
