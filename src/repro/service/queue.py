"""FIFO job queue and the worker pool that drains it.

The queue is deliberately simple: strict submission order, an in-memory
registry of every job the daemon has seen this lifetime, and lazy
cancellation — a job cancelled while still pending is marked terminal
immediately and skipped when a worker would otherwise pick it up.

Workers are threads, not processes: jobs execute through one shared
:class:`~repro.search.engine.EvaluationEngine` whose memos and
:class:`~repro.search.cache.ResultCache` ARE the service's warm state, and
that state must live in one process to be shared.  The CPU-heavy inner
work can still fan out per job via the engine's process-pool scheduler
(``job_workers``), the same way one-shot ``repro study --jobs N`` runs do.
"""

from __future__ import annotations

import queue as _queue
import threading
from typing import Callable, Dict, List, Optional

from repro.service.jobs import CANCELLED, Job, PENDING


class JobQueue:
    """Thread-safe FIFO of :class:`Job` objects plus a registry of all jobs."""

    def __init__(self) -> None:
        self._fifo: "_queue.Queue[str]" = _queue.Queue()
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()

    def submit(self, job: Job) -> int:
        """Register and enqueue *job*; returns its 0-based queue position."""
        with self._lock:
            self._jobs[job.id] = job
        self._fifo.put(job.id)
        return self._fifo.qsize() - 1

    def next_job(self, timeout: float) -> Optional[Job]:
        """The next runnable job, or ``None`` after *timeout* seconds.

        Jobs that went terminal while queued (pending-state cancellation)
        are skipped, not returned.
        """
        deadline_hit = False
        while not deadline_hit:
            try:
                job_id = self._fifo.get(timeout=timeout)
            except _queue.Empty:
                return None
            job = self.get(job_id)
            if job is not None and job.state == PENDING:
                return job
        return None

    def get(self, job_id: str) -> Optional[Job]:
        """The registered job for *job_id*, if the daemon has seen it."""
        with self._lock:
            return self._jobs.get(job_id)

    def all_jobs(self) -> List[Job]:
        """Every registered job, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def pending_count(self) -> int:
        """How many registered jobs are still pending."""
        with self._lock:
            return sum(1 for job in self._jobs.values()
                       if job.state == PENDING)

    def cancel_pending(self, job: Job) -> bool:
        """Mark a still-pending *job* cancelled; False if it already ran."""
        with self._lock:
            if job.state != PENDING:
                return False
            job.state = CANCELLED
            job.error = "cancelled before start"
            return True


class WorkerPool:
    """N daemon threads executing queued jobs through one callable.

    ``execute`` receives each claimed :class:`Job` and owns its full
    lifecycle (state transitions, journalling, error capture) — the pool
    only guarantees that a raised exception kills neither the worker nor
    its siblings.
    """

    def __init__(self, queue: JobQueue, execute: Callable[[Job], None],
                 workers: int = 1):
        self.queue = queue
        self.execute = execute
        self.workers = max(1, int(workers))
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    def start(self) -> None:
        """Spin up the worker threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(target=self._loop, daemon=True,
                                      name=f"repro-worker-{index}")
            thread.start()
            self._threads.append(thread)

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.next_job(timeout=0.1)
            if job is None:
                continue
            try:
                self.execute(job)
            except Exception:       # noqa: BLE001 — a job must never
                pass                # take its worker down with it

    def stop(self, join_timeout: float = 10.0) -> None:
        """Ask workers to exit after their current job, then join them."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=join_timeout)
        self._threads = []
