"""Torn-tail-safe job journal: the daemon's durable queue state.

One append-only ``.jsonl`` file records every job submission and every
lifecycle transition as a single JSON line, written through a line-buffered
handle so each record hits the OS the moment it is appended (the same
durability recipe as the PR 4 streaming result store).  A killed daemon
therefore loses at most the one line it was writing — and
:meth:`JobJournal.replay` tolerates that torn tail, so a restarted daemon
reconstructs its queue exactly: jobs whose last recorded state is
non-terminal (``pending`` or ``running`` — i.e. interrupted) are
re-queued in their original submission order.

Record shapes::

    {"version": 1, "kind": "repro-service-journal"}      # header, line 1
    {"t": "submit", "id": "...", "spec": {...}}
    {"t": "state", "id": "...", "state": "running"}
    {"t": "state", "id": "...", "state": "failed", "error": "..."}
"""

from __future__ import annotations

import json
import logging
import os
import threading
from pathlib import Path
from typing import Dict, IO, List, Optional, Union

logger = logging.getLogger("repro.service.journal")

#: Bump when the record layout changes incompatibly.
JOURNAL_VERSION = 1

_HEADER = {"version": JOURNAL_VERSION, "kind": "repro-service-journal"}


class JobJournal:
    """Append-only journal with torn-tail-tolerant replay.

    Thread-safe: the worker pool and the accept loop both write through
    one lock.  A missing/empty file is a fresh journal; a corrupt or
    version-skewed header discards the file on the next append (the jobs
    it described are unrecoverable anyway under a layout change).
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle: Optional[IO[str]] = None
        self._rewrite = False

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def record_submit(self, job_id: str, spec_dict: dict) -> None:
        """Journal a new submission (spec travels in full, for recovery)."""
        self._append({"t": "submit", "id": job_id, "spec": spec_dict})

    def record_state(self, job_id: str, state: str,
                     error: Optional[str] = None) -> None:
        """Journal a lifecycle transition."""
        record: dict = {"t": "state", "id": job_id, "state": state}
        if error:
            record["error"] = error
        self._append(record)

    def _append(self, record: dict) -> None:
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fresh = (self._rewrite or not self.path.exists()
                         or self.path.stat().st_size == 0)
                torn_tail = False
                if not fresh:
                    # Terminate a torn final line before appending after it
                    # (replay already ignores the fragment itself).
                    with open(self.path, "rb") as existing:
                        existing.seek(-1, os.SEEK_END)
                        torn_tail = existing.read(1) != b"\n"
                self._handle = open(self.path,
                                    "w" if self._rewrite else "a",
                                    buffering=1)
                self._rewrite = False
                if torn_tail:
                    self._handle.write("\n")
                if fresh:
                    self._handle.write(json.dumps(_HEADER) + "\n")
            self._handle.write(json.dumps(record) + "\n")

    def flush(self) -> None:
        """Push buffered records to the OS (checkpoint boundary)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying handle (daemon shutdown)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def replay(self) -> List[dict]:
        """Every intact record, in order (torn tail and garbage skipped).

        A torn *final* line is the expected trace of a killed daemon and
        is skipped silently; a corrupt line anywhere else is real damage,
        so it is skipped with a logged warning — the intact records around
        it still replay.  A bad header marks the file for rewrite-on-next-
        append and replays nothing, mirroring the result cache's
        version-skew behaviour.
        """
        try:
            text = self.path.read_text()
        except OSError:
            return []
        lines = text.splitlines()
        if not lines:
            return []
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
        if (not isinstance(header, dict)
                or header.get("version") != JOURNAL_VERSION):
            self._rewrite = True
            return []
        records = []
        last = len(lines) - 1
        torn_tail = not text.endswith("\n")
        for index, line in enumerate(lines[1:], start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if not (index == last and torn_tail):
                    logger.warning(
                        "%s: skipping corrupt record on line %d: %r",
                        self.path, index + 1, line[:80])
                continue
            if isinstance(record, dict) and "t" in record and "id" in record:
                records.append(record)
        return records

    def replay_jobs(self) -> "Dict[str, dict]":
        """Fold :meth:`replay` into ``id -> {"spec", "state", "error"}``.

        Insertion order is submission order, which is what FIFO recovery
        needs.  State records for unknown ids (their submit line was torn)
        are dropped.
        """
        jobs: Dict[str, dict] = {}
        for record in self.replay():
            if record["t"] == "submit" and isinstance(record.get("spec"), dict):
                jobs[record["id"]] = {"spec": record["spec"],
                                      "state": "pending", "error": None}
            elif record["t"] == "state" and record["id"] in jobs:
                jobs[record["id"]]["state"] = record.get("state")
                jobs[record["id"]]["error"] = record.get("error")
        return jobs
