"""The wire protocol: one line-delimited JSON request/response per turn.

Deliberately minimal so the service is scriptable without importing the
package — ``nc -U service.sock`` plus a JSON line is a complete client.
Every request is a single JSON object on one line carrying an ``"op"``
key; every response is a single JSON object on one line carrying
``"ok": true/false`` (and ``"error"`` when false).  Connections serve one
request each: clients that poll (``tail``) reconnect per poll, which keeps
the server handler stateless and restart-tolerant.

Operations (see ``docs/service.md`` for the full schemas)::

    {"op": "ping"}
    {"op": "submit", "spec": {...JobSpec...}}
    {"op": "status", "id": "..."}          # omit id -> all jobs
    {"op": "tail", "id": "...", "since": N}
    {"op": "cancel", "id": "..."}
    {"op": "stats"}
    {"op": "shutdown"}
"""

from __future__ import annotations

import json
from typing import BinaryIO, Optional

#: Requests and responses above this size are refused, not buffered —
#: a submitted shader text has no business being this large.
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed, oversized, or truncated protocol line."""


def encode_line(payload: dict) -> bytes:
    """Serialize one message to its wire form (JSON + newline)."""
    blob = json.dumps(payload, separators=(",", ":")).encode()
    if len(blob) > MAX_LINE_BYTES:
        raise ProtocolError(f"message of {len(blob)} bytes exceeds the "
                            f"{MAX_LINE_BYTES}-byte line limit")
    return blob + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one wire line into a message dict (ProtocolError otherwise)."""
    try:
        payload = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"protocol line must be a JSON object, got "
            f"{type(payload).__name__}")
    return payload


def read_message(stream: BinaryIO) -> Optional[dict]:
    """Read one message from a socket file; ``None`` on clean EOF."""
    line = stream.readline(MAX_LINE_BYTES + 2)
    if not line:
        return None
    if not line.endswith(b"\n"):
        raise ProtocolError("truncated or oversized protocol line")
    return decode_line(line)


def ok_response(**fields: object) -> dict:
    """A success response (``ok: true`` plus *fields*)."""
    return dict({"ok": True}, **fields)


def error_response(message: str) -> dict:
    """A failure response carrying a human-readable error."""
    return {"ok": False, "error": message}
