"""The long-running study service: ``repro serve``.

One :class:`StudyService` binds the whole subsystem together:

- a :class:`~repro.service.journal.JobJournal` (``jobs.jsonl``) that makes
  the queue durable — on start, jobs whose last journalled state is
  non-terminal are re-queued in submission order;
- a :class:`~repro.service.queue.JobQueue` + :class:`WorkerPool` draining
  it through the shared :class:`~repro.service.runner.JobRunner`, whose
  process-wide :class:`~repro.search.cache.ResultCache` (``cache.jsonl``,
  the PR 4 streaming store) turns any cross-job/cross-tenant overlap into
  cache hits;
- a threaded Unix-socket server speaking the line-JSON protocol
  (:mod:`repro.service.protocol`), one request per connection.

File layout under the service directory::

    service.sock     the client socket (removed on clean shutdown)
    jobs.jsonl       the job journal
    cache.jsonl      the shared result cache (streaming store)
    events/<id>.jsonl   per-job progress stream (tail -f friendly)
    results/<id>.study.json   saved StudyResult of each study job
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.service.jobs import (
    CANCELLED, DONE, FAILED, Job, JobCancelled, JobSpec, PENDING, RUNNING,
    TERMINAL_STATES,
)
from repro.service.journal import JobJournal
from repro.service.protocol import (
    ProtocolError, encode_line, error_response, ok_response, read_message,
)
from repro.service.queue import JobQueue, WorkerPool
from repro.service.runner import JobRunner, write_event_line
from repro.search.cache import ResultCache


class _SocketServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    """Threaded Unix-stream server; one handler thread per connection."""

    daemon_threads = True
    allow_reuse_address = True


class _Handler(socketserver.StreamRequestHandler):
    """Read one request line, dispatch to the service, write one response."""

    def handle(self) -> None:  # noqa: D102 — socketserver hook
        service: "StudyService" = self.server.service  # type: ignore[attr-defined]
        try:
            request = read_message(self.rfile)
        except ProtocolError as exc:
            self.wfile.write(encode_line(error_response(str(exc))))
            return
        if request is None:
            return
        response = service.handle(request)
        self.wfile.write(encode_line(response))


class StudyService:
    """The orchestrator behind ``repro serve`` (see the module docstring)."""

    def __init__(self, root: Union[str, Path],
                 workers: int = 1,
                 socket_path: Optional[Union[str, Path]] = None,
                 cache_path: Optional[Union[str, Path]] = None,
                 job_workers: int = 1,
                 platforms: Optional[Sequence[str]] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.socket_path = Path(socket_path) if socket_path \
            else self.root / "service.sock"
        self.journal = JobJournal(self.root / "jobs.jsonl")
        self.cache = ResultCache(cache_path or self.root / "cache.jsonl")
        self.runner = JobRunner(cache=self.cache,
                                results_dir=self.root / "results")
        if job_workers > 1:
            self.runner.job_workers = int(job_workers)
        self.queue = JobQueue()
        self.pool = WorkerPool(self.queue, self._execute, workers=workers)
        self.platforms = tuple(platforms or ())
        self.recovered_jobs = 0
        self._seq = 0
        self._lock = threading.Lock()
        self._server: Optional[_SocketServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._shutdown = threading.Event()
        self._draining = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Recover the journal, start workers, bind and serve the socket."""
        if self._started:
            return
        self._started = True
        self._recover()
        self.pool.start()
        if self.socket_path.exists():
            # A stale socket from a killed daemon; this directory is ours.
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        self._server = _SocketServer(str(self.socket_path), _Handler)
        self._server.service = self  # type: ignore[attr-defined]
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.1},
            daemon=True, name="repro-serve-accept")
        self._server_thread.start()

    def wait(self) -> None:
        """Block until a client ``shutdown`` (or KeyboardInterrupt)."""
        while not self._shutdown.wait(timeout=0.2):
            pass

    def request_stop(self) -> None:
        """Ask the service to stop (async-signal safe: only sets an event).

        This is what the ``repro serve`` SIGTERM handler calls — the
        blocked :meth:`wait` returns and the CLI's ``finally`` performs
        the actual :meth:`stop`, flushing journal and cache and exiting 0.
        """
        self._shutdown.set()

    def stop(self, requeue_running: bool = True) -> None:
        """Graceful stop: drain workers, checkpoint, unbind.

        With ``requeue_running`` (the default), jobs still running are
        cooperatively aborted at their next compile/measure boundary and
        journalled back to ``pending`` — explicitly re-queueable, so a
        restarted daemon resumes them warm instead of recording a spurious
        ``cancelled``/``failed`` terminal state for work nobody cancelled.
        """
        self._shutdown.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._server_thread is not None:
            self._server_thread.join(timeout=5.0)
            self._server_thread = None
        if requeue_running:
            self._draining = True
            for job in self.queue.all_jobs():
                if job.state == RUNNING:
                    job.cancel_event.set()
        self.pool.stop()
        self._draining = False
        self.cache.flush()
        self.journal.flush()
        self.journal.close()
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._started = False

    def serve_forever(self) -> None:
        """``start()`` + ``wait()`` + ``stop()`` — the ``repro serve`` loop."""
        self.start()
        try:
            self.wait()
        finally:
            self.stop()

    def _recover(self) -> None:
        """Re-queue every journalled job whose last state is non-terminal.

        Interrupted ``running`` jobs restart from scratch — their partial
        work is all in the shared cache, so the redo is warm, not wasted.
        Terminal jobs are registered (state only) so ``status`` still
        answers for them after a restart.
        """
        replayed = self.journal.replay_jobs()
        self._seq = len(replayed)
        for job_id, info in replayed.items():
            try:
                spec = JobSpec.from_dict(info["spec"])
            except ValueError as exc:
                self.journal.record_state(job_id, FAILED,
                                          error=f"unrecoverable spec: {exc}")
                continue
            if info["state"] in TERMINAL_STATES:
                job = Job(id=job_id, spec=spec, state=info["state"],
                          error=info["error"])
                self.queue.submit(job)      # registry only; next_job skips it
                continue
            job = Job(id=job_id, spec=spec, created=time.time())
            self.journal.record_state(job_id, PENDING)
            self.queue.submit(job)
            self.recovered_jobs += 1

    # ------------------------------------------------------------------
    # Job execution (worker-pool callback)
    # ------------------------------------------------------------------

    def _publish(self, job: Job, event: dict) -> None:
        job.events.append(event)
        write_event_line(self.root / "events" / f"{job.id}.jsonl", event)

    def _execute(self, job: Job) -> None:
        job.state = RUNNING
        job.started = time.time()
        self.journal.record_state(job.id, RUNNING)
        before = self.runner.work_snapshot()
        try:
            summary = self.runner.run(job, lambda e: self._publish(job, e))
        except JobCancelled as exc:
            if exc.timed_out:
                state = FAILED
                job.error = exc.reason
            elif self._draining:
                # A graceful shutdown aborted this job, not a client: it
                # goes back to pending (re-queueable), and its partial
                # work is already in the shared cache for the redo.
                state = PENDING
            else:
                state = CANCELLED
                job.error = exc.reason
        except Exception as exc:  # noqa: BLE001 — job errors are data
            state = FAILED
            job.error = f"{type(exc).__name__}: {exc}"
        else:
            state = DONE
            job.summary = summary
        after = self.runner.work_snapshot()
        job.work = {key: after[key] - before[key] for key in after}
        job.finished = time.time()
        job.state = state
        self.journal.record_state(job.id, state, error=job.error)
        self.journal.flush()
        self.cache.flush()
        self._publish(job, {"type": "state", "state": state,
                            "error": job.error, "work": job.work})

    # ------------------------------------------------------------------
    # Protocol dispatch
    # ------------------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Dispatch one decoded protocol request to its operation."""
        op = request.get("op")
        handlers = {"ping": self._op_ping, "submit": self._op_submit,
                    "status": self._op_status, "tail": self._op_tail,
                    "cancel": self._op_cancel, "stats": self._op_stats,
                    "shutdown": self._op_shutdown}
        handler = handlers.get(op)
        if handler is None:
            return error_response(
                f"unknown op {op!r}; expected one of {sorted(handlers)}")
        try:
            return handler(request)
        except Exception as exc:  # noqa: BLE001 — protocol must answer
            return error_response(f"{type(exc).__name__}: {exc}")

    def _op_ping(self, request: dict) -> dict:
        return ok_response(service="repro-serve", pid=_pid())

    def _op_submit(self, request: dict) -> dict:
        try:
            spec = JobSpec.from_dict(request.get("spec"))
        except ValueError as exc:
            return error_response(f"invalid job spec: {exc}")
        with self._lock:
            self._seq += 1
            job_id = f"{spec.digest()[:12]}-{self._seq:04d}"
        job = Job(id=job_id, spec=spec, created=time.time())
        self.journal.record_submit(job_id, spec.to_dict())
        self.journal.flush()
        position = self.queue.submit(job)
        return ok_response(id=job_id, digest=spec.digest(),
                           state=job.state, position=position)

    def _job_or_error(self, request: dict):
        job_id = request.get("id")
        if not isinstance(job_id, str) or not job_id:
            return None, error_response("missing job 'id'")
        job = self.queue.get(job_id)
        if job is None:
            return None, error_response(f"unknown job {job_id!r}")
        return job, None

    def _op_status(self, request: dict) -> dict:
        if "id" not in request:
            return ok_response(jobs=[job.status()
                                     for job in self.queue.all_jobs()])
        job, failure = self._job_or_error(request)
        if failure is not None:
            return failure
        return ok_response(job=job.status())

    def _op_tail(self, request: dict) -> dict:
        job, failure = self._job_or_error(request)
        if failure is not None:
            return failure
        since = max(0, int(request.get("since") or 0))
        events = job.events[since:]
        return ok_response(id=job.id, state=job.state, error=job.error,
                           events=events, next=since + len(events))

    def _op_cancel(self, request: dict) -> dict:
        job, failure = self._job_or_error(request)
        if failure is not None:
            return failure
        if job.terminal:
            return ok_response(id=job.id, state=job.state,
                               note="already terminal")
        # Set the cooperative flag first: if a worker claims the job in
        # the same instant, its first cancel check still fires.
        job.cancel_event.set()
        if self.queue.cancel_pending(job):
            self.journal.record_state(job.id, CANCELLED,
                                      error="cancelled before start")
            self.journal.flush()
            return ok_response(id=job.id, state=CANCELLED)
        return ok_response(id=job.id, state=job.state, note="cancelling")

    def _op_stats(self, request: dict) -> dict:
        states: Dict[str, int] = {}
        for job in self.queue.all_jobs():
            states[job.state] = states.get(job.state, 0) + 1
        return ok_response(
            jobs=states, pending=self.queue.pending_count(),
            workers=self.pool.workers, recovered=self.recovered_jobs,
            work=self.runner.work_snapshot(),
            cache={"entries": len(self.cache), "hits": self.cache.hits,
                   "misses": self.cache.misses,
                   "path": str(self.cache.path)})

    def _op_shutdown(self, request: dict) -> dict:
        pending = self.queue.pending_count()
        # Flip the event from a helper thread so this handler can finish
        # writing its response before the accept loop is torn down.
        threading.Thread(target=self._shutdown.set, daemon=True).start()
        return ok_response(stopping=True, pending=pending)


def _pid() -> int:
    import os
    return os.getpid()


def socket_available() -> bool:
    """Whether this platform supports the service's Unix-socket transport."""
    return hasattr(socket, "AF_UNIX")
