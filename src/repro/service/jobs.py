"""Job model for the study service: specs, identity, and lifecycle.

A :class:`JobSpec` is everything a tenant submits — one shader text *or* a
:class:`~repro.corpus.CorpusSpec`, plus a strategy (``"study"`` for the
paper's exhaustive sweep, or any ``repro.search`` strategy name), the
target platforms, the measurement seed, and an optional wall-clock
timeout.  Specs are **content-addressed**: :meth:`JobSpec.digest` hashes a
canonical form built from the existing source/corpus digests, so two
tenants submitting the same work produce the same digest — and the second
submission rides the process-wide warm cache instead of recomputing.

A :class:`Job` is one submission's runtime record.  Its lifecycle is::

    pending -> running -> done
                       -> failed      (error, or --timeout exceeded)
                       -> cancelled   (client request)

Every transition is journalled (:mod:`repro.service.journal`) so a
restarted daemon recovers its queue.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.corpus import CorpusSpec
from repro.gpu.platform import Platform, all_platforms, platform_by_name
from repro.harness.results import ShaderCase
from repro.search.cache import source_digest
from repro.search.strategies import STRATEGIES

#: The strategy name selecting the exhaustive per-variant study (the paper
#: protocol); every other valid name comes from ``repro.search.STRATEGIES``.
STUDY_STRATEGY = "study"

#: The strategy name selecting a fault-tolerant sharded study: the job
#: fans out over ``shards`` dispatch workers (``repro.dispatch``) and
#: auto-merges, instead of running the corpus as one serial sweep.
DISPATCH_STRATEGY = "dispatch"

#: Lifecycle states, in submission order of appearance.
PENDING, RUNNING, DONE, FAILED, CANCELLED = (
    "pending", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


class JobCancelled(Exception):
    """Raised inside a worker to abort a job cooperatively.

    ``timed_out`` distinguishes a ``--timeout`` deadline (the job *fails*)
    from a client cancel request (the job lands in ``cancelled``).
    """

    def __init__(self, reason: str, timed_out: bool = False):
        super().__init__(reason)
        self.reason = reason
        self.timed_out = timed_out


@dataclass(frozen=True)
class JobSpec:
    """One unit of submittable work (see the module docstring).

    Exactly one of ``source`` (a shader text) and ``corpus`` must be set.
    ``timeout`` is operational, not content: it is excluded from
    :meth:`digest`, so the same work under a different deadline still
    shares its cache entries and its content address.
    """

    source: Optional[str] = None
    corpus: Optional[CorpusSpec] = None
    strategy: str = STUDY_STRATEGY
    budget: int = 64
    platforms: Tuple[str, ...] = ()
    seed: int = 2018
    timeout: Optional[float] = None
    #: shard fan-out for ``dispatch`` jobs (must be 0 for anything else).
    shards: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on any inconsistency a client could send."""
        if (self.source is None) == (self.corpus is None):
            raise ValueError(
                "a JobSpec needs exactly one of source= and corpus=")
        builtin = (STUDY_STRATEGY, DISPATCH_STRATEGY)
        if self.strategy not in builtin and self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; choose one of "
                f"{sorted(builtin)} or {sorted(STRATEGIES)}")
        if self.strategy not in builtin and self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.strategy == DISPATCH_STRATEGY:
            if self.shards < 1:
                raise ValueError(
                    f"dispatch jobs need shards >= 1, got {self.shards}")
        elif self.shards:
            raise ValueError(
                f"shards only applies to {DISPATCH_STRATEGY!r} jobs")
        for name in self.platforms:
            try:
                platform_by_name(name)
            except KeyError as exc:
                raise ValueError(str(exc.args[0])) from None
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    def resolve_platforms(self) -> List[Platform]:
        """The platform objects this job measures on (empty = all)."""
        if not self.platforms:
            return all_platforms()
        return [platform_by_name(name) for name in self.platforms]

    def cases(self) -> List[ShaderCase]:
        """The shader cases this job covers.

        A submitted shader text becomes a one-case corpus named after its
        content digest, so results stay content-addressed end to end.
        """
        if self.source is not None:
            return [ShaderCase(name=f"submitted-{source_digest(self.source)[:12]}",
                               family="submitted", source=self.source)]
        assert self.corpus is not None
        return self.corpus.build()

    # ------------------------------------------------------------------
    # Identity and serialization
    # ------------------------------------------------------------------

    def digest(self) -> str:
        """Content address of the *work*: sha256 over a canonical form.

        Shader text enters via its existing :func:`source_digest`; a corpus
        via its canonical parameter dict (the corpus content itself is a
        pure function of those parameters).  ``timeout`` is excluded — see
        the class docstring.
        """
        canonical = {
            "source": (None if self.source is None
                       else source_digest(self.source)),
            "corpus": None if self.corpus is None else self.corpus.to_dict(),
            "strategy": self.strategy,
            "budget": (self.budget
                       if self.strategy not in (STUDY_STRATEGY,
                                                DISPATCH_STRATEGY)
                       else None),
            "platforms": sorted(self.platforms),
            "seed": self.seed,
        }
        if self.strategy == DISPATCH_STRATEGY:
            # Shard fan-out changes how the work is *executed*, not what it
            # measures, but a dispatch job's artifacts (per-shard results,
            # manifest) depend on it — include it for dispatch jobs only so
            # every pre-existing study/search digest is unchanged.
            canonical["shards"] = self.shards
        blob = json.dumps(canonical, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form for the journal and the wire protocol."""
        return {
            "source": self.source,
            "corpus": None if self.corpus is None else self.corpus.to_dict(),
            "strategy": self.strategy,
            "budget": self.budget,
            "platforms": list(self.platforms),
            "seed": self.seed,
            "timeout": self.timeout,
            "shards": self.shards,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "JobSpec":
        """Rebuild (and validate) a spec from :meth:`to_dict` output."""
        if not isinstance(payload, dict):
            raise ValueError(f"job spec must be an object, got "
                             f"{type(payload).__name__}")
        known = {"source", "corpus", "strategy", "budget", "platforms",
                 "seed", "timeout", "shards"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown JobSpec fields: {sorted(unknown)}")
        corpus = payload.get("corpus")
        timeout = payload.get("timeout")
        spec = cls(
            source=payload.get("source"),
            corpus=None if corpus is None else CorpusSpec.from_dict(corpus),
            strategy=str(payload.get("strategy") or STUDY_STRATEGY),
            budget=int(payload.get("budget") or 64),
            platforms=tuple(payload.get("platforms") or ()),
            seed=int(payload.get("seed", 2018)),
            timeout=None if timeout is None else float(timeout),
            shards=int(payload.get("shards") or 0),
        )
        spec.validate()
        return spec


@dataclass
class Job:
    """The runtime record of one submission (server-side only)."""

    id: str
    spec: JobSpec
    state: str = PENDING
    error: Optional[str] = None
    created: float = 0.0
    started: float = 0.0
    finished: float = 0.0
    #: per-case / per-platform progress events, streamed to ``tail``.
    events: List[dict] = field(default_factory=list)
    #: engine-counter deltas attributed to this job (set at completion).
    work: Dict[str, int] = field(default_factory=dict)
    summary: Optional[dict] = None
    result_path: Optional[str] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)

    @property
    def terminal(self) -> bool:
        """True once the job has reached done/failed/cancelled."""
        return self.state in TERMINAL_STATES

    def status(self) -> dict:
        """The JSON-safe status payload served to clients."""
        return {
            "id": self.id,
            "digest": self.spec.digest(),
            "strategy": self.spec.strategy,
            "state": self.state,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "events": len(self.events),
            "work": dict(self.work),
            "summary": self.summary,
            "result_path": self.result_path,
        }
